"""Legacy setuptools entry point.

Exists so fully offline environments without the ``wheel`` package can
still do an editable install via ``python setup.py develop`` (the PEP
660 path ``pip install -e .`` requires wheel).  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
