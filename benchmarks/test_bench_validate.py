"""Validation-layer benchmarks: conformance oracle vs legacy replay.

The headline number (tracked in BENCH_validate.json) is events/sec
through :meth:`TransitionOracle.validate_buffer` on a columnar shard
buffer — the streaming fidelity gate's hot path — against the legacy
one-machine-per-stream :func:`~repro.statemachine.replay.replay_dataset`
on the same traffic.  A second pair benches the materialized-dataset
path (:meth:`TransitionOracle.replay_dataset`), whose floor is the
per-event Python attribute access of the object model.

The traffic deliberately mixes clean streams with corrupted ones so the
violation-tally paths are exercised, and every bench asserts parity
with the legacy engine's rates.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.statemachine import LTE_SPEC
from repro.statemachine.replay import replay_dataset
from repro.trace import SyntheticTraceConfig, generate_trace
from repro.validate import TransitionOracle

from conftest import run_once

#: ~2000 UEs / ~100k events: big enough to measure line rate, small
#: enough that the legacy baseline stays benchable in CI.
NUM_UES = 2000


@pytest.fixture(scope="module")
def violating_trace():
    """A phone trace with ~1 in 7 streams corrupted by random events."""
    trace = generate_trace(
        SyntheticTraceConfig(num_ues=NUM_UES, device_type="phone", hour=20, seed=5)
    )
    rng = np.random.default_rng(1)
    names = list(trace.vocabulary)
    for stream in trace.streams[::7]:
        count = max(1, len(stream.events) // 10)
        for index in rng.integers(0, len(stream.events), size=count):
            event = stream.events[int(index)]
            stream.events[int(index)] = type(event)(
                event.timestamp, names[int(rng.integers(len(names)))]
            )
    return trace


@pytest.fixture(scope="module")
def legacy_tally(violating_trace):
    replay = replay_dataset(violating_trace.replay_pairs(), LTE_SPEC)
    return replay


@pytest.fixture(scope="module")
def shard_buffer(violating_trace):
    """The trace flattened to one columnar shard buffer (times, ues, codes)."""
    names = list(violating_trace.vocabulary)
    local = {name: code for code, name in enumerate(names)}
    lengths = np.array([len(s) for s in violating_trace.streams])
    total = int(lengths.sum())
    ue_codes = np.repeat(np.arange(lengths.size), lengths)
    event_codes = np.fromiter(
        (local[e.event] for s in violating_trace for e in s.events),
        dtype=np.int16,
        count=total,
    )
    times = np.fromiter(
        (e.timestamp for s in violating_trace for e in s.events),
        dtype=np.float64,
        count=total,
    )
    return times, ue_codes, event_codes, names, lengths.size


def test_bench_oracle_buffer(benchmark, shard_buffer, legacy_tally):
    """Headline: vectorized oracle on a columnar shard buffer."""
    times, ues, codes, names, num_ues = shard_buffer
    oracle = TransitionOracle.for_spec(LTE_SPEC)

    tally = run_once(
        benchmark,
        lambda: oracle.validate_buffer(times, ues, codes, names, num_ues=num_ues),
    )
    assert tally.counted_events == legacy_tally.counted_events
    assert tally.violating_events == legacy_tally.violating_events
    assert tally.event_violation_rate == legacy_tally.event_violation_rate


def test_bench_oracle_dataset(benchmark, violating_trace, legacy_tally):
    """Oracle over the materialized object-model dataset."""
    oracle = TransitionOracle.for_spec(LTE_SPEC)

    tally = run_once(benchmark, lambda: oracle.replay_dataset(violating_trace))
    assert tally.event_violation_rate == legacy_tally.event_violation_rate
    assert tally.stream_violation_rate == legacy_tally.stream_violation_rate
    assert oracle.top_patterns(tally, 100) == legacy_tally.top_violation_patterns(100)


def test_bench_legacy_replay(benchmark, violating_trace, legacy_tally):
    """The deprecated per-event Python replay (the 1x baseline)."""
    replay = run_once(
        benchmark,
        lambda: replay_dataset(violating_trace.replay_pairs(), LTE_SPEC),
    )
    assert replay.violating_events == legacy_tally.violating_events
