"""Benchmark fixtures: a session-scoped SMOKE-scale workbench.

Model training happens once here (untimed fixture setup); each benchmark
then measures its experiment's compute phase.  ``pytest benchmarks/
--benchmark-only`` regenerates every paper table/figure at smoke scale;
run the experiments CLI at ``--scale medium`` for the EXPERIMENTS.md
numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import SMOKE, Workbench
from repro.trace import DeviceType


@pytest.fixture(scope="session")
def bench_workbench() -> Workbench:
    return Workbench(SMOKE)


@pytest.fixture(scope="session")
def trained_workbench(bench_workbench: Workbench) -> Workbench:
    """Workbench with all generators pre-trained and traces pre-generated.

    Forces every (generator, device) cell so that individual benchmarks
    measure evaluation, not shared training.
    """
    for device in DeviceType.ALL:
        for generator in ("SMM-1", "SMM-20k", "NetShare", "CPT-GPT"):
            bench_workbench.generated(generator, device)
    return bench_workbench


@pytest.fixture
def bench_rng() -> np.random.Generator:
    return np.random.default_rng(2024)


def run_once(benchmark, fn):
    """Benchmark a heavyweight function with a single round."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
