"""Benchmarks for the training-centric experiments (Tables 8, 9, 10).

These train models inside the measured region (the experiments *are*
training-time measurements), so they run a single round each.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import table8, table9, table10


def test_bench_table8_ablation(benchmark, bench_workbench):
    result = run_once(benchmark, lambda: table8.compute(bench_workbench))
    print("\n" + _render_cached(table8, bench_workbench, result))
    assert set(result) == {name for name, _, _ in table8.VARIANTS}
    # Shape: removing the distribution head collapses generation
    # stochasticity, so flow-length fidelity must not *improve* over the
    # default (paper: it degrades 15x, 3.8% -> 69.9%).
    default = result["1:1:1"]
    ablated = result["no-dist"]
    assert ablated["flow_length_all"] >= default["flow_length_all"] * 0.8


def test_bench_table9_transfer_time(benchmark, bench_workbench):
    result = run_once(benchmark, lambda: table9.compute(bench_workbench))
    print("\n" + _render_cached(table9, bench_workbench, result))
    # The rank-based checkpoint selector sees only 4 checkpoints per run
    # at smoke scale, so which checkpoint "wins" is noise-dominated; the
    # assertable content here is structural (the protocol produced valid
    # positive times and ratios).  The paper-shape discussion — CPT-GPT's
    # supervised fine-tuning converging earlier than GAN fine-tuning —
    # is evaluated at medium scale in EXPERIMENTS.md.
    for model in ("CPT-GPT", "NetShare"):
        for key in ("no_transfer", "first_hour", "finetune_avg", "transfer_total"):
            assert result[model][key] > 0, (model, key)
    assert result["ratio"]["finetune_speedup"] > 0


def test_bench_table10_transfer_fidelity(benchmark, bench_workbench):
    result = run_once(benchmark, lambda: table10.compute(bench_workbench))
    print("\n" + _render_cached(table10, bench_workbench, result))
    for model in ("CPT-GPT", "NetShare"):
        for regime in ("scratch", "transfer"):
            metrics = result[model][regime]
            assert 0.0 <= metrics["violation_streams"] <= 1.0


def _render_cached(module, bench, result):
    """Render a module's table from an existing compute() result.

    The run() helpers call compute() again; monkey-patching here avoids
    paying for a second full training pass just to print.
    """
    original = module.compute
    module.compute = lambda *_args, **_kwargs: result
    try:
        return module.run(bench)
    finally:
        module.compute = original
