"""Benchmarks for training: the fused engine, and Tables 8, 9, 10.

The ``train_engine`` benches track the fused flat-buffer trainer
(``BENCH_training.json``): steps/s of the pre-engine per-parameter loop
(re-created verbatim below, so the baseline stays measurable forever)
vs the fused engine's float64 exact mode and its float32+bucketing fast
mode.  The table benches train models inside the measured region (the
experiments *are* training-time measurements); everything runs a single
round.
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import run_once

from repro.core import CPTGPT, CPTGPTConfig, TrainingConfig, train
from repro.core.train import (
    _batch_loss,
    bucketed_batches,
    encode_training_set,
    iterate_batches,
)
from repro.experiments import table8, table9, table10
from repro.statemachine import LTE_EVENTS
from repro.tokenization import StreamTokenizer
from repro.trace import SyntheticTraceConfig, generate_trace

# ---------------------------------------------------------------------------
# Fused training engine (steps/s, tracked in BENCH_training.json)
# ---------------------------------------------------------------------------
ENGINE_MODEL = CPTGPTConfig(
    d_model=32, num_layers=2, num_heads=4, d_ff=64, head_hidden=64, max_len=128
)
ENGINE_TRAINING = TrainingConfig(epochs=2, batch_size=32, seed=0)


@pytest.fixture(scope="module")
def engine_trace():
    return generate_trace(
        SyntheticTraceConfig(num_ues=300, device_type="phone", hour=20, seed=7)
    )


@pytest.fixture(scope="module")
def engine_tokenizer(engine_trace):
    return StreamTokenizer(LTE_EVENTS).fit(engine_trace)


def _legacy_train(model, dataset, tokenizer, config):
    """The pre-engine training loop: per-parameter Adam and clipping."""
    rng = np.random.default_rng(config.seed)
    encoded = encode_training_set(dataset, tokenizer, model.config.max_len)
    params = model.parameters()
    moments_m = [np.zeros_like(p.data) for p in params]
    moments_v = [np.zeros_like(p.data) for p in params]
    step_count = 0
    steps = 0
    lr = config.learning_rate
    beta1, beta2, eps = 0.9, 0.999, 1e-8
    cached = (
        bucketed_batches(encoded, tokenizer, config.batch_size)
        if config.length_bucketing
        else None
    )
    model.train()
    for epoch in range(config.epochs):
        if config.lr_schedule == "cosine" and config.epochs > 1:
            progress = epoch / (config.epochs - 1)
            floor = config.final_lr_fraction
            lr = config.learning_rate * (
                floor + (1.0 - floor) * 0.5 * (1.0 + np.cos(np.pi * progress))
            )
        if cached is None:
            batches = iterate_batches(
                encoded, tokenizer, config.batch_size, rng, config.shuffle
            )
        else:
            batches = (cached[i] for i in rng.permutation(len(cached)))
        for batch in batches:
            for param in params:
                param.grad = None
            total, *_ = _batch_loss(model, batch, config.loss_weights)
            total.backward()
            norm_sq = 0.0
            for param in params:
                if param.grad is not None:
                    norm_sq += float((param.grad**2).sum())
            norm = float(np.sqrt(norm_sq))
            if norm > config.grad_clip and norm > 0:
                scale = config.grad_clip / norm
                for param in params:
                    if param.grad is not None:
                        param.grad *= scale
            step_count += 1
            bias1 = 1.0 - beta1**step_count
            bias2 = 1.0 - beta2**step_count
            for param, m, v in zip(params, moments_m, moments_v):
                if param.grad is None:
                    continue
                grad = param.grad
                m *= beta1
                m += (1 - beta1) * grad
                v *= beta2
                v += (1 - beta2) * grad * grad
                param.data = param.data - lr * (m / bias1) / (
                    np.sqrt(v / bias2) + eps
                )
            steps += 1
    model.eval()
    return steps


def test_bench_train_engine_legacy_baseline(benchmark, engine_trace, engine_tokenizer):
    """Pre-PR ``train()``: per-parameter loop, float64, random batching."""

    def run():
        model = CPTGPT(ENGINE_MODEL, np.random.default_rng(0))
        return _legacy_train(model, engine_trace, engine_tokenizer, ENGINE_TRAINING)

    steps = run_once(benchmark, run)
    assert steps == ENGINE_TRAINING.epochs * 10  # 300 streams / batch 32


def test_bench_train_engine_fused_exact(benchmark, engine_trace, engine_tokenizer):
    """Fused engine, float64 exact mode (bit-equivalent to the baseline)."""

    def run():
        model = CPTGPT(ENGINE_MODEL, np.random.default_rng(0))
        return train(model, engine_trace, engine_tokenizer, ENGINE_TRAINING).steps

    steps = run_once(benchmark, run)
    assert steps == ENGINE_TRAINING.epochs * 10


def test_bench_train_engine_fused_fast(benchmark, engine_trace, engine_tokenizer):
    """Fused engine fast mode: float32 arena + cached length bucketing."""
    config = ENGINE_TRAINING.replace(length_bucketing=True)

    def run():
        model = CPTGPT(ENGINE_MODEL, np.random.default_rng(0))
        return train(
            model, engine_trace, engine_tokenizer, config, float32=True
        ).steps

    steps = run_once(benchmark, run)
    assert steps == ENGINE_TRAINING.epochs * 10


def test_bench_table8_ablation(benchmark, bench_workbench):
    result = run_once(benchmark, lambda: table8.compute(bench_workbench))
    print("\n" + _render_cached(table8, bench_workbench, result))
    assert set(result) == {name for name, _, _ in table8.VARIANTS}
    # Shape: removing the distribution head collapses generation
    # stochasticity, so flow-length fidelity must not *improve* over the
    # default (paper: it degrades 15x, 3.8% -> 69.9%).
    default = result["1:1:1"]
    ablated = result["no-dist"]
    assert ablated["flow_length_all"] >= default["flow_length_all"] * 0.8


def test_bench_table9_transfer_time(benchmark, bench_workbench):
    result = run_once(benchmark, lambda: table9.compute(bench_workbench))
    print("\n" + _render_cached(table9, bench_workbench, result))
    # The rank-based checkpoint selector sees only 4 checkpoints per run
    # at smoke scale, so which checkpoint "wins" is noise-dominated; the
    # assertable content here is structural (the protocol produced valid
    # positive times and ratios).  The paper-shape discussion — CPT-GPT's
    # supervised fine-tuning converging earlier than GAN fine-tuning —
    # is evaluated at medium scale in EXPERIMENTS.md.
    for model in ("CPT-GPT", "NetShare"):
        for key in ("no_transfer", "first_hour", "finetune_avg", "transfer_total"):
            assert result[model][key] > 0, (model, key)
    assert result["ratio"]["finetune_speedup"] > 0


def test_bench_table10_transfer_fidelity(benchmark, bench_workbench):
    result = run_once(benchmark, lambda: table10.compute(bench_workbench))
    print("\n" + _render_cached(table10, bench_workbench, result))
    for model in ("CPT-GPT", "NetShare"):
        for regime in ("scratch", "transfer"):
            metrics = result[model][regime]
            assert 0.0 <= metrics["violation_streams"] <= 1.0


def _render_cached(module, bench, result):
    """Render a module's table from an existing compute() result.

    The run() helpers call compute() again; monkey-patching here avoids
    paying for a second full training pass just to print.
    """
    original = module.compute
    module.compute = lambda *_args, **_kwargs: result
    try:
        return module.run(bench)
    finally:
        module.compute = original
