"""Micro-benchmarks: core-path throughput (multi-round, statistical).

These complement the per-table benches with stable timing signals for
the hot paths: training steps, batched KV-cache generation, replay, SMM
fitting and the MCN simulator.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CPTGPT, CPTGPTConfig, TrainingConfig, train
from repro.core.train import _build_batch, encode_training_set
from repro.mcn import MCNSimulator
from repro.baselines import SemiMarkovModel
from repro.statemachine import LTE_EVENTS, LTE_SPEC, replay_dataset
from repro.tokenization import StreamTokenizer
from repro.trace import SyntheticTraceConfig, generate_trace


@pytest.fixture(scope="module")
def trace():
    return generate_trace(SyntheticTraceConfig(num_ues=200, seed=77))


@pytest.fixture(scope="module")
def tokenizer(trace):
    return StreamTokenizer(LTE_EVENTS).fit(trace)


def test_bench_trace_synthesis(benchmark):
    result = benchmark(
        lambda: generate_trace(SyntheticTraceConfig(num_ues=100, seed=5))
    )
    assert len(result) == 100


def test_bench_replay_throughput(benchmark, trace):
    pairs = trace.replay_pairs()
    replay = benchmark(lambda: replay_dataset(pairs, LTE_SPEC))
    assert replay.violating_events == 0


def test_bench_tokenize_encode(benchmark, trace, tokenizer):
    streams = trace.drop_singletons().streams[:100]
    encoded = benchmark(lambda: [tokenizer.encode(s) for s in streams])
    assert len(encoded) == 100


def test_bench_training_step(benchmark, trace, tokenizer):
    config = CPTGPTConfig(
        d_model=32, num_layers=2, num_heads=4, d_ff=64, head_hidden=64, max_len=128
    )
    model = CPTGPT(config, np.random.default_rng(0))
    encoded = encode_training_set(trace, tokenizer, config.max_len)
    batch = _build_batch(encoded[:32], tokenizer)

    from repro.core.train import _batch_loss
    from repro.nn import Adam, clip_grad_norm

    optimizer = Adam(model.parameters(), lr=1e-3)

    def step():
        optimizer.zero_grad()
        total, *_ = _batch_loss(model, batch, (1.0, 1.0, 1.0))
        total.backward()
        clip_grad_norm(model.parameters(), 1.0)
        optimizer.step()
        return float(total.item())

    loss = benchmark(step)
    assert np.isfinite(loss)


@pytest.fixture(scope="module")
def trained_package(trace, tokenizer):
    """One trained package shared by the generation benchmarks."""
    from repro.core import GeneratorPackage

    config = CPTGPTConfig(
        d_model=32, num_layers=2, num_heads=4, d_ff=64, head_hidden=64, max_len=128
    )
    model = CPTGPT(config, np.random.default_rng(0))
    train(model, trace, tokenizer, TrainingConfig(epochs=1, batch_size=48, seed=0))
    return GeneratorPackage(
        model, tokenizer, trace.initial_event_distribution(), "phone"
    )


def test_bench_generation_throughput(benchmark, trained_package):
    """Headline number: continuous batching at batch 128 / max_len 128.

    The pre-PR static float64 engine measured ~1339 streams/sec on this
    workload (see BENCH_throughput.json); the acceptance bar is >= 3x.
    """
    rng = np.random.default_rng(1)
    generated = benchmark(
        lambda: trained_package.generate(512, rng, batch_size=128)
    )
    assert len(generated) == 512


def test_bench_generation_throughput_float32(benchmark, trained_package):
    """The reduced-precision fast path on the same workload."""
    rng = np.random.default_rng(1)
    generated = benchmark(
        lambda: trained_package.generate(512, rng, batch_size=128, float32=True)
    )
    assert len(generated) == 512


def test_bench_generation_static(benchmark, trained_package):
    """Static batching kept for comparison (the pre-PR strategy)."""
    rng = np.random.default_rng(1)
    generated = benchmark(
        lambda: trained_package.generate(
            512, rng, batch_size=128, continuous=False
        )
    )
    assert len(generated) == 512


def test_bench_smm_fit(benchmark, trace):
    model = benchmark(lambda: SemiMarkovModel.fit(trace, LTE_SPEC))
    assert model.num_cdfs > 0


def test_bench_mcn_simulator(benchmark, trace):
    simulator = MCNSimulator(workers=8, seed=0)
    report = benchmark(lambda: simulator.run(trace))
    assert report.num_events == trace.total_events
