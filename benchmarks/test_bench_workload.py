"""Workload-engine benchmarks: merged-timeline throughput into the MCN.

The headline number is events/sec through the k-way heap merge into
``MCNSimulator`` at a 100k-UE fan-in (tracked in BENCH_workload.json).
The merge input is synthesized directly as per-shard sorted event
arrays so the bench isolates the timeline + simulator path from
generator speed; a second bench measures the full engine (generation →
shaping → merge) on the stadium preset at reduced scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mcn import MCNSimulator
from repro.workload import TimelineEvent, Workload, get_workload, merge_timelines

from conftest import run_once

#: 100k UEs spread over 128 shard sources, ~5 events each ≈ 500k events.
NUM_SOURCES = 128
UES_PER_SOURCE = 800
EVENTS_PER_UE = 5
TOTAL_EVENTS = NUM_SOURCES * UES_PER_SOURCE * EVENTS_PER_UE


def _shard_events(shard: int, rng: np.random.Generator) -> list[TimelineEvent]:
    """One shard's sorted events: per-UE SRV_REQ/S1_CONN_REL exchanges."""
    num_events = UES_PER_SOURCE * EVENTS_PER_UE
    times = np.sort(rng.uniform(0.0, 3600.0, size=num_events))
    ue_ids = [f"s{shard:03d}-u{u:05d}" for u in range(UES_PER_SOURCE)]
    cohort = f"c{shard:03d}"
    events = []
    for i, t in enumerate(times):
        ue = ue_ids[i // EVENTS_PER_UE]
        name = "SRV_REQ" if i % 2 == 0 else "S1_CONN_REL"
        events.append(TimelineEvent(float(t), cohort, ue, name))
    events.sort(key=lambda e: (e.timestamp, e.ue_id))
    return events


@pytest.fixture(scope="module")
def shard_buffers() -> list[list[TimelineEvent]]:
    rng = np.random.default_rng(42)
    return [_shard_events(shard, rng) for shard in range(NUM_SOURCES)]


def test_bench_merge_into_simulator_100k_ues(benchmark, shard_buffers):
    """Headline: merged-timeline events/sec into MCNSimulator (100k UEs)."""

    def run():
        merged = merge_timelines([iter(buffer) for buffer in shard_buffers])
        return MCNSimulator(workers=16, seed=0).run(merged)

    report = run_once(benchmark, run)
    assert report.num_events == TOTAL_EVENTS


def test_bench_merge_only_100k_ues(benchmark, shard_buffers):
    """The k-way heap merge alone, without the queueing simulation."""

    def run():
        merged = merge_timelines([iter(buffer) for buffer in shard_buffers])
        return sum(1 for _ in merged)

    count = run_once(benchmark, run)
    assert count == TOTAL_EVENTS


def test_bench_workload_engine_stadium(benchmark):
    """Full engine: generation → flash-crowd shaping → merge (stadium 10%)."""
    engine = Workload(get_workload("stadium-flash-crowd").scaled(0.1), seed=3)
    # Fit the per-cohort generators outside the timed region.
    for cohort in engine.population.cohorts:
        engine.generator(cohort)

    count = run_once(benchmark, lambda: sum(1 for _ in engine.events()))
    assert count > 0
