"""Observability overhead: instrumented vs disabled engine throughput.

The pinned bound (BENCH_obs.json): full instrumentation — eager shard
build, per-shard generate/shape spans, 1-in-16 sampled merge pulls —
costs < 10% end-to-end throughput on the stadium flash-crowd engine;
the disabled path is bounded separately (< 2%) by
``tests/obs/test_overhead.py``, where it is structural (the wrapper
returns the iterable unchanged).
"""

from __future__ import annotations

from time import perf_counter

import pytest

from repro import obs
from repro.workload import Workload, get_workload

from conftest import run_once


@pytest.fixture(scope="module")
def stadium_engine() -> Workload:
    engine = Workload(get_workload("stadium-flash-crowd").scaled(0.1), seed=3)
    # Fit the per-cohort generators outside every timed region.
    for cohort in engine.population.cohorts:
        engine.generator(cohort)
    return engine


def _drain(engine: Workload) -> tuple:
    t0 = perf_counter()
    count = sum(1 for _ in engine.events())
    return count, perf_counter() - t0


def test_bench_obs_instrumented_vs_disabled_stadium(benchmark, stadium_engine):
    """Headline: instrumented events/sec; pinned at >= 90% of disabled."""
    obs.disable()
    disabled: list[float] = []
    enabled: list[float] = []

    total, dt = _drain(stadium_engine)  # warm run doubles as a sample
    disabled.append(dt)

    obs.REGISTRY.reset()
    obs.enable()
    try:
        t0 = perf_counter()
        count = run_once(
            benchmark, lambda: sum(1 for _ in stadium_engine.events())
        )
        enabled.append(perf_counter() - t0)
        assert count == total

        # the instrumented run attributed the pipeline it just measured
        agg = obs.REGISTRY.get("merge.pull")
        assert agg.events >= total
        assert agg.total_s > 0
    finally:
        obs.disable()

    # one more alternating pair so each mode gets a min over two runs
    count, dt = _drain(stadium_engine)
    assert count == total
    disabled.append(dt)
    obs.REGISTRY.reset()
    obs.enable()
    try:
        count, dt = _drain(stadium_engine)
        assert count == total
        enabled.append(dt)
    finally:
        obs.disable()
        obs.REGISTRY.reset()

    best_off, best_on = min(disabled), min(enabled)
    print(
        f"\nobs overhead: disabled {total / best_off:,.0f} ev/s, "
        f"instrumented {total / best_on:,.0f} ev/s "
        f"({best_on / best_off - 1:+.2%})"
    )
    assert best_on <= best_off * 1.10, (
        f"instrumentation costs {best_on / best_off - 1:+.2%} "
        f"(> 10%) on the stadium engine"
    )
