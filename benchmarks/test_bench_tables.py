"""Benchmarks regenerating the paper's tables (3, 5, 6, 7, 11).

Each benchmark runs the corresponding experiment module against the
shared SMOKE-scale workbench and prints the paper-style table, so
``pytest benchmarks/ --benchmark-only -s`` shows every reproduced row.
Assertions pin the reproduction *shape* (orderings), not absolute
values.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import table3, table5, table6, table7, table11
from repro.trace import DeviceType


def test_bench_table3_netshare_violations(benchmark, trained_workbench):
    result = run_once(benchmark, lambda: table3.compute(trained_workbench))
    print("\n" + table3.run(trained_workbench))
    # Shape: NetShare produces substantial semantic violations (paper:
    # 2.61% of events / 22.1% of streams).  The event rate is the robust
    # assertion: when the GAN collapses to near-empty streams, most
    # streams carry no counted events at all and the stream rate can dip
    # below the event rate.
    assert result["event_rate"] > 0.01


def test_bench_table5_violation_gap(benchmark, trained_workbench):
    result = run_once(benchmark, lambda: table5.compute(trained_workbench))
    print("\n" + table5.run(trained_workbench))
    # Shape: CPT-GPT violates far less than NetShare on every device type
    # (paper: two orders of magnitude).  Compared on the *event* rate:
    # degenerate NetShare collapse modes (1-2 event streams) make the
    # stream rate meaningless while the event rate stays robust.
    for device in DeviceType.ALL:
        assert (
            result[device]["CPT-GPT/events"] < result[device]["NetShare/events"]
        ), device


def test_bench_table6_distribution_distances(benchmark, trained_workbench):
    result = run_once(benchmark, lambda: table6.compute(trained_workbench))
    print("\n" + table6.run(trained_workbench))
    # Shape: the clustered SMM dominates SMM-1 on flow length (the paper's
    # core argument for why 20k models were needed).
    wins = sum(
        1
        for device in DeviceType.ALL
        if result["flow/all"][device]["SMM-20k"] <= result["flow/all"][device]["SMM-1"]
    )
    assert wins >= 2


def test_bench_table7_event_breakdown(benchmark, trained_workbench):
    result = run_once(benchmark, lambda: table7.compute(trained_workbench))
    print("\n" + table7.run(trained_workbench))
    # Shape: CPT-GPT's dominant-event discrepancies stay within a few
    # percent of real (paper: within 0.66-3.62%).
    for device in DeviceType.ALL:
        assert abs(result[device]["CPT-GPT"]["SRV_REQ"]) < 0.15, device


def test_bench_table11_memorization(benchmark, trained_workbench):
    result = run_once(
        benchmark, lambda: table11.compute(trained_workbench, max_ngrams=2000)
    )
    print("\n" + table11.run(trained_workbench))
    # Shape (paper Table 11): repeats vanish as n grows; n=20 is zero.
    for eps in table11.EPSILONS:
        assert result[(20, eps)] == 0.0
        assert result[(5, eps)] >= result[(10, eps)]
