"""Topology-layer benchmarks: annotation overhead and regional routing.

The headline number is events/sec through ``TopologyRuntime.annotate``
on synthetic state-machine-legal streams (tracked in
BENCH_topology.json) — the pure injection/annotation cost, isolated
from generation.  Companion benches measure the full engine on the
topology-driven ``handover-storm`` preset and the per-region simulator
path on a pre-annotated timeline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mcn import MCNSimulator
from repro.topology import get_topology
from repro.topology.runtime import TopologyRuntime
from repro.workload import CellTimelineEvent, Workload, get_workload

from conftest import run_once

#: Annotate bench: 2000 UEs x 51 events = 102k events through the runtime.
NUM_UES = 2000
EXCHANGES = 25


@pytest.fixture(scope="module")
def annotate_inputs():
    """Runtime + per-UE legal LTE streams (ATCH, then SRV_REQ/REL pairs)."""
    scenario = get_topology("motorway")
    population = get_workload("handover-storm").scaled(1.0)
    runtime = TopologyRuntime(scenario, population, seed=7)
    convoy = population.cohort("convoy")
    rng = np.random.default_rng(99)
    names = ["ATCH"] + ["SRV_REQ", "S1_CONN_REL"] * EXCHANGES
    streams = []
    for u in range(NUM_UES):
        times = np.sort(rng.uniform(8 * 3600.0, 10 * 3600.0, size=len(names)))
        streams.append((f"u{u:05d}", times, list(names)))
    return runtime, convoy, streams


def test_bench_annotate_throughput(benchmark, annotate_inputs):
    """Headline: TopologyRuntime.annotate events/sec (mobility + placement)."""
    runtime, convoy, streams = annotate_inputs

    def run():
        total = 0
        for ue_id, times, names in streams:
            out_times, out_names, _ = runtime.annotate(
                convoy, ue_id, times, names
            )
            total += len(out_names)
        return total

    total = run_once(benchmark, run)
    assert total >= NUM_UES * len(streams[0][2])


def test_bench_workload_engine_handover_topology(benchmark):
    """Full engine on the topology-driven handover-storm preset (10%)."""
    engine = Workload(get_workload("handover-storm").scaled(0.1), seed=3)
    for cohort in engine.population.cohorts:
        engine.generator(cohort)  # fit outside the timed region

    count = run_once(benchmark, lambda: sum(1 for _ in engine.events()))
    assert count > 0


@pytest.fixture(scope="module")
def annotated_timeline():
    """A pre-built cell-annotated timeline over the motorway corridor."""
    topology = get_topology("motorway").topology
    rng = np.random.default_rng(17)
    num_events = 200_000
    times = np.sort(rng.uniform(0.0, 3600.0, size=num_events))
    cells = rng.integers(0, topology.num_cells, size=num_events)
    events = [
        CellTimelineEvent(
            float(t),
            "bench",
            f"u{i % 20000:05d}",
            "SRV_REQ" if i % 2 == 0 else "S1_CONN_REL",
            topology.cell_names[c],
        )
        for i, (t, c) in enumerate(zip(times, cells))
    ]
    return topology, events


def test_bench_regional_simulator_200k_events(benchmark, annotated_timeline):
    """Per-region NF-pool routing vs. the flat single-pool path."""
    topology, events = annotated_timeline

    def run():
        return MCNSimulator(workers=16, seed=0, topology=topology).run(events)

    report = run_once(benchmark, run)
    assert report.num_events == len(events)
    assert set(report.per_region) == set(topology.regions)
