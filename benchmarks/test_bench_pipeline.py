"""Columnar merge pipeline benchmarks: chunk merge vs per-event heap merge.

The tracked numbers (BENCH_pipeline.json) are merge events/sec on the
SAME shard buffers through both paths — the vectorized
:func:`merge_buffers` lexsort the hot path now runs, and the
``heapq.merge`` over per-event decoded objects it replaced — plus the
end-to-end generate → merge → simulate pipeline wall time.  The
acceptance bar (asserted here and re-checked in CI): the chunked merge
is at least 10x the per-event heap merge.

    PIPELINE_BENCH_SCALE=1.0 PYTHONPATH=src \
        python -m pytest benchmarks/test_bench_pipeline.py \
        --benchmark-only -s
"""

from __future__ import annotations

import os
import time

import pytest

from repro.workload import Workload, get_workload, merge_buffers
from repro.workload.timeline import decode_buffer, merge_timelines

from conftest import run_once

#: city-day has 2000 UEs at scale 1.0; the in-suite default is 200.
SCALE = float(os.environ.get("PIPELINE_BENCH_SCALE", "0.1"))

#: CI floor: chunked merge must beat the per-event heap merge by this.
SPEEDUP_FLOOR = 10.0


def _engine() -> Workload:
    return Workload(get_workload("city-day").scaled(SCALE), seed=1)


@pytest.fixture(scope="module")
def shard_buffers():
    """The same shard buffers both merge paths consume (built untimed)."""
    engine = _engine()
    plan = engine.planned_shards()
    buffers = [engine._shard_buffer(*entry) for entry in plan]
    cohorts = [entry[1].name for entry in plan]
    total = sum(int(b[0].size) for b in buffers)
    return buffers, cohorts, engine._cell_names(), total


def _best_of(fn, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_chunk_merge_speedup(benchmark, shard_buffers):
    """Headline: vectorized columnar merge vs the heap merge it replaced."""
    buffers, cohorts, cell_names, total = shard_buffers

    def chunked():
        return merge_buffers(buffers, cohorts, cell_names=cell_names)

    def heap():
        count = 0
        for _ in merge_timelines(
            [
                decode_buffer(buffer, cohort, cell_names)
                for buffer, cohort in zip(buffers, cohorts)
            ]
        ):
            count += 1
        return count

    chunks = run_once(benchmark, chunked)
    assert sum(c.num_events for c in chunks) == total
    chunk_s = _best_of(chunked)
    heap_s = _best_of(heap, rounds=2)
    speedup = heap_s / chunk_s
    print(
        f"\nchunk merge: {total} events in {chunk_s * 1e3:.1f}ms = "
        f"{total / chunk_s:,.0f} ev/s | heap merge: {heap_s * 1e3:.1f}ms = "
        f"{total / heap_s:,.0f} ev/s | speedup {speedup:.1f}x"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"chunked merge is only {speedup:.1f}x the per-event heap merge "
        f"(floor: {SPEEDUP_FLOOR}x)"
    )


def test_bench_pipeline_end_to_end(benchmark):
    """Generate → columnar merge → chunk-native simulate, one wall number."""

    def pipeline():
        return _engine().simulate(sim_seed=0)

    report = run_once(benchmark, pipeline)
    assert report.num_events > 0
    print(
        f"\nend-to-end pipeline: {report.num_events} events simulated "
        f"(scale {SCALE})"
    )
