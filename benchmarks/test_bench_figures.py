"""Benchmarks regenerating the paper's figures (2, 5, 6, 7)."""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.experiments import fig2, fig5, fig6, fig7
from repro.trace import DeviceType


def test_bench_fig2_sojourn_cdf(benchmark, trained_workbench):
    result = run_once(benchmark, lambda: fig2.compute(trained_workbench))
    print("\n" + fig2.run(trained_workbench))
    assert set(result["max_y_distance"]) == {"NetShare", "CPT-GPT"}
    for series in result["series"].values():
        assert np.all(np.diff(series["cdf"]) >= -1e-12)


def test_bench_fig5_cdf_grid(benchmark, trained_workbench):
    result = run_once(benchmark, lambda: fig5.compute(trained_workbench))
    print("\n" + fig5.run(trained_workbench))
    assert set(result) == set(DeviceType.ALL)
    for device in DeviceType.ALL:
        for column in fig5.COLUMNS:
            assert set(result[device][column]["series"]) == {
                "Real", "SMM-1", "SMM-20k", "NetShare", "CPT-GPT",
            }


def test_bench_fig6_scalability(benchmark, trained_workbench):
    result = run_once(benchmark, lambda: fig6.compute(trained_workbench))
    print("\n" + fig6.run(trained_workbench))
    counts = sorted(result)
    assert len(counts) >= 3
    # Shape: fidelity stays flat with population size — the largest sweep
    # point must not be drastically worse than the smallest.
    small, large = result[counts[0]], result[counts[-1]]
    assert large["flow_length_all"] <= small["flow_length_all"] + 0.25


def test_bench_fig7_interarrival_distribution(benchmark, trained_workbench):
    result = run_once(benchmark, lambda: fig7.compute(trained_workbench))
    print("\n" + fig7.run(trained_workbench))
    stats = result["stats"]
    # Shape (Figure 7): raw distribution long-tailed; log scaling evens it.
    assert stats["skew_ratio"] > 1.5
    assert stats["log_skew_ratio"] < 1.5
