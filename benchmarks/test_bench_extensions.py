"""Benchmarks for the Table 4 view and the 5G extension experiment."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import exp5g, table4


def test_bench_table4_netshare_transfer_cost(benchmark, bench_workbench):
    result = run_once(
        benchmark, lambda: table4.compute(bench_workbench, hours=(10, 11, 12, 13))
    )
    print("\nTable 4 cells (seconds):", {k: round(v, 2) for k, v in result.items()})
    assert result["six_hourly_models_transfer_total"] >= result["one_hour_scratch"]


def test_bench_exp5g_future_work(benchmark, bench_workbench):
    result = run_once(benchmark, lambda: exp5g.compute(bench_workbench))
    print("\n" + exp5g.run.__module__ + ": d_token =", result["d_token"])
    metrics = result["metrics"]
    print({k: round(v, 4) for k, v in metrics.items()})
    # Shape: the domain-knowledge-free pipeline works unchanged on 5G.
    assert result["d_token"] == 8
    assert metrics["violation_streams"] < 1.0
