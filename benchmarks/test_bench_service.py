"""Always-on service benchmarks: faulted soak throughput + accounting.

The tracked number (BENCH_service.json) is delivered+shed events/sec
through the full service stack — supervised forked producers, the
incremental merge, the bounded ring, the rolling fidelity gate tee —
while surviving a worker kill and a consumer stall.  The run must end
with exact accounting and a passing final scorecard or the bench fails.

The in-suite default runs city-day at ``SCALE=0.1`` (200 UEs) so tier-1
stays fast; the tracked soak (BENCH_service.json) is the same bench in
loop mode — each cycle replays the timeline with fresh cycle-tagged UE
ids, so ``SERVICE_SOAK_CYCLES`` multiplies the distinct UE streams the
service carries:

    SERVICE_SOAK_SCALE=1.0 SERVICE_SOAK_CYCLES=2 PYTHONPATH=src \
        python -m pytest benchmarks/test_bench_service.py \
        --benchmark-only -s

(2000 UEs x 2 cycles on the tracked run; ``SERVICE_SOAK_SCALE=50``
reaches a 100k-UE population per cycle on hardware with cores to spare.)
"""

from __future__ import annotations

import os
import resource

from repro.service import (
    DegradationPolicy,
    FaultPlan,
    KillWorker,
    StallConsumer,
    TrafficService,
)
from repro.validate import RollingGate
from repro.workload import Workload, get_workload

from conftest import run_once

#: city-day has 2000 UEs at scale 1.0; 50 → a 100k-UE population.
SCALE = float(os.environ.get("SERVICE_SOAK_SCALE", "0.1"))
#: Loop-mode cycles; each cycle is a fresh set of cycle-tagged UEs.
CYCLES = int(os.environ.get("SERVICE_SOAK_CYCLES", "1"))


def _faulted_soak():
    population = get_workload("city-day").scaled(SCALE)
    engine = Workload(population, seed=3)
    gate = RollingGate(population, seed=3)
    service = TrafficService(
        engine,
        speed=float("inf"),
        loop=CYCLES > 1,
        num_workers=2,
        chunk_events=4096,
        ring_events=65536,
        gate=gate,
        degradation=DegradationPolicy(degrade_after=0.5),
        faults=FaultPlan(
            faults=(
                KillWorker(at=1.0, worker=0),
                StallConsumer(at=5.0, duration=2.0),
            )
        ),
    )
    if CYCLES > 1:
        # Stop at the cycle boundary so the gate judges whole cycles.
        def stop_at_cycle(event) -> None:
            if service.cycle >= CYCLES:
                service.stop()

        service.sink = stop_at_cycle
    return service.run(status_every=10.0)


def test_bench_service_faulted_soak(benchmark):
    """Headline: service events/sec under a worker kill + consumer stall."""
    report = run_once(benchmark, _faulted_soak)
    status = report.status

    # The robustness contract, asserted on the benchmarked run itself:
    assert status.accounted, "merged != delivered + shed + pending"
    if CYCLES == 1:  # loop soaks stop at a boundary with a primed ring
        assert status.pending == 0
        assert status.merged_total == status.delivered + status.shed_total
    assert report.scorecard is not None and report.scorecard.passed
    assert any("killed worker" in line for line in status.incidents)

    rss_mib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024
    rate = status.merged_total / max(status.elapsed, 1e-9)
    print(
        f"\nservice soak: {status.merged_total} events in "
        f"{status.elapsed:.1f}s = {rate:,.0f} ev/s | "
        f"delivered {status.delivered} shed {status.shed_total} | "
        f"peak RSS {rss_mib:,.0f} MiB | restarts "
        f"{[w['restarts'] for w in status.workers]}"
    )
