"""Table 5 — violations: NetShare vs CPT-GPT across device types.

Paper values: NetShare 2.614% / 3.915% / 3.572% event violations
(phone / connected car / tablet) against CPT-GPT's 0.004% / 0.034% /
0.079% — a two-order-of-magnitude gap; SMM variants are omitted as they
produce zero violations by construction.
"""

from __future__ import annotations

from ..metrics import violation_stats
from ..trace import DeviceType
from .common import Workbench, format_table

__all__ = ["compute", "run"]


def compute(bench: Workbench) -> dict:
    """Event/stream violation rates per device type for both models."""
    out: dict[str, dict[str, float]] = {}
    for device in DeviceType.ALL:
        row: dict[str, float] = {}
        for generator in ("NetShare", "CPT-GPT"):
            stats = violation_stats(bench.generated(generator, device), bench.spec)
            row[f"{generator}/events"] = stats.event_rate
            row[f"{generator}/streams"] = stats.stream_rate
        out[device] = row
    return out


def run(bench: Workbench) -> str:
    result = compute(bench)
    headers = ["metric"]
    for device in DeviceType.ALL:
        headers += [f"{device}/NetShare", f"{device}/CPT-GPT"]
    event_row = ["Event violations (%)"]
    stream_row = ["Streams w/ violation (%)"]
    for device in DeviceType.ALL:
        event_row += [
            f"{result[device]['NetShare/events']:.3%}",
            f"{result[device]['CPT-GPT/events']:.3%}",
        ]
        stream_row += [
            f"{result[device]['NetShare/streams']:.1%}",
            f"{result[device]['CPT-GPT/streams']:.1%}",
        ]
    return format_table(
        "Table 5: Stateful-semantics violations (SMM rows omitted: zero by construction)",
        headers,
        [event_row, stream_row],
    )
