"""Table 7 — event-type breakdown vs the real dataset.

For each device type: the real trace's event shares, and each
generator's breakdown expressed as a signed difference from real (lower
magnitude = more accurate).  Paper headline: CPT-GPT within 0.66% /
2.15% / 3.62% across the three device types without domain knowledge.
"""

from __future__ import annotations

from ..metrics import breakdown_difference
from ..trace import DeviceType
from .common import GENERATOR_NAMES, Workbench, format_table

__all__ = ["compute", "run"]


def compute(bench: Workbench) -> dict:
    """device -> {"real": shares, generator: diffs}."""
    out: dict[str, dict] = {}
    for device in DeviceType.ALL:
        real = bench.test_trace(device)
        entry: dict = {"real": real.event_breakdown()}
        for generator in GENERATOR_NAMES:
            entry[generator] = breakdown_difference(real, bench.generated(generator, device))
        out[device] = entry
    return out


def run(bench: Workbench) -> str:
    result = compute(bench)
    events = list(bench.vocabulary)
    blocks = []
    for device in DeviceType.ALL:
        headers = [f"{device}: event", "Real"] + list(GENERATOR_NAMES)
        rows = []
        for event in events:
            row = [event, f"{result[device]['real'].get(event, 0.0):.2%}"]
            row += [
                f"{result[device][generator].get(event, 0.0):+.2%}"
                for generator in GENERATOR_NAMES
            ]
            rows.append(row)
        blocks.append(
            format_table(
                f"Table 7 ({device}): breakdown of event types (diffs vs real)",
                headers,
                rows,
            )
        )
    return "\n\n".join(blocks)
