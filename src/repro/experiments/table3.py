"""Table 3 — semantic violations in NetShare-synthesized traffic.

Paper values (phones): 2.61% of events violate, 22.10% of streams have
at least one violation; top patterns are (S1_REL_S, S1_CONN_REL),
(S1_REL_S, HO) and (CONNECTED, SRV_REQ).
"""

from __future__ import annotations

from ..metrics import violation_stats
from ..trace import DeviceType
from .common import Workbench, format_table

__all__ = ["compute", "run"]


def compute(bench: Workbench) -> dict:
    """Violation statistics of the NetShare phone trace."""
    trace = bench.generated("NetShare", DeviceType.PHONE)
    stats = violation_stats(trace, bench.spec, top_k=3)
    return {
        "event_rate": stats.event_rate,
        "stream_rate": stats.stream_rate,
        "top_patterns": [
            {"state": state, "event": event, "share": share}
            for (state, event), share in stats.top_patterns
        ],
    }


def run(bench: Workbench) -> str:
    result = compute(bench)
    rows = [
        ["Perc. event violations", f"{result['event_rate']:.2%}"],
        ["Perc. streams w/ at least one violating event", f"{result['stream_rate']:.2%}"],
    ]
    for pattern in result["top_patterns"]:
        rows.append(
            [f"  {pattern['state']}, {pattern['event']}", f"{pattern['share']:.2%}"]
        )
    return format_table(
        "Table 3: Semantic violations in control-plane traffic synthesized by NetShare",
        ["metric", "value"],
        rows,
    )
