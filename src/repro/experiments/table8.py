"""Table 8 — sensitivity & ablation: loss weights and distribution head.

Five CPT-GPT variants on phones: loss weights 1:1:1 (default), 3:1:1,
1:3:1, 1:1:3, and the no-distribution-head ablation (a single scalar
interarrival prediction, no sampling).  Paper headline: weights barely
matter; removing the distribution head explodes the flow-length max
y-distance ~15× (3.8% → 69.9%) and wrecks sojourn fidelity.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..core import CPTGPT, GeneratorPackage, TrainingConfig, train
from ..metrics import fidelity_report
from ..trace import DeviceType
from .common import Workbench, format_table

__all__ = ["VARIANTS", "compute", "run"]

VARIANTS: tuple[tuple[str, tuple[float, float, float], bool], ...] = (
    ("1:1:1", (1.0, 1.0, 1.0), True),
    ("3:1:1", (3.0, 1.0, 1.0), True),
    ("1:3:1", (1.0, 3.0, 1.0), True),
    ("1:1:3", (1.0, 1.0, 3.0), True),
    ("no-dist", (1.0, 1.0, 1.0), False),
)


def compute(bench: Workbench) -> dict:
    """variant name -> flat fidelity metrics dict."""
    scale = bench.scale
    training = bench.train_trace(DeviceType.PHONE)
    test = bench.test_trace(DeviceType.PHONE)
    tokenizer = bench.tokenizer
    out: dict[str, dict[str, float]] = {}
    for name, weights, dist_head in VARIANTS:
        config = replace(scale.cpt_config, distribution_head=dist_head)
        model = CPTGPT(config, np.random.default_rng(scale.seed))
        train(
            model,
            training,
            tokenizer,
            TrainingConfig(
                epochs=scale.cpt_epochs,
                batch_size=scale.cpt_batch_size,
                learning_rate=scale.cpt_lr,
                loss_weights=weights,
                seed=scale.seed,
                length_bucketing=scale.cpt_length_bucketing,
            ),
        )
        package = GeneratorPackage(
            model, tokenizer, training.initial_event_distribution(), DeviceType.PHONE
        )
        generated = package.generate(
            scale.generated_streams,
            np.random.default_rng(scale.seed + 13),
            start_time=scale.hour * 3600.0,
        )
        out[name] = fidelity_report(test, generated, bench.spec).as_flat_dict()
    return out


_ROWS = (
    ("Violation events", "violation_events", "{:.3%}"),
    ("Violation streams", "violation_streams", "{:.1%}"),
    ("Sojourn (CONN)", "sojourn_connected", "{:.1%}"),
    ("Sojourn (IDLE)", "sojourn_idle", "{:.1%}"),
    ("Flow length", "flow_length_all", "{:.1%}"),
    ("Avg breakdown diff", "avg_breakdown_diff", "{:.2%}"),
)


def run(bench: Workbench) -> str:
    result = compute(bench)
    names = [name for name, _, _ in VARIANTS]
    headers = ["metric"] + names
    rows = []
    for label, key, fmt in _ROWS:
        rows.append([label] + [fmt.format(result[name][key]) for name in names])
    return format_table(
        "Table 8: CPT-GPT fidelity varying loss weights, and without the "
        "distribution head",
        headers,
        rows,
    )
