"""Table 11 — data memorization: n-gram repeats from the training set.

For n in {5, 10, 20} and relative tolerance eps in {10%, 20%}: the
fraction of generated n-grams (event sequence + interarrival vector)
repeated from CPT-GPT's training trace.  Paper values (phones):
n=5 repeats are common (57.9% / 80.3% — protocol-constrained short
patterns), n=10 almost never repeats (0.003% / 0.287%), n=20 never.
"""

from __future__ import annotations

from ..metrics import ngram_repeat_fraction
from ..trace import DeviceType
from .common import Workbench, format_table

__all__ = ["compute", "run", "N_VALUES", "EPSILONS"]

N_VALUES = (5, 10, 20)
EPSILONS = (0.10, 0.20)


def compute(bench: Workbench, max_ngrams: int | None = 4000) -> dict:
    """(n, eps) -> repeat fraction for the CPT-GPT phone trace."""
    training = bench.train_trace(DeviceType.PHONE)
    generated = bench.generated("CPT-GPT", DeviceType.PHONE)
    out: dict[tuple[int, float], float] = {}
    for n in N_VALUES:
        for eps in EPSILONS:
            out[(n, eps)] = ngram_repeat_fraction(
                training, generated, n=n, epsilon=eps, max_ngrams=max_ngrams,
                seed=bench.scale.seed,
            )
    return out


def run(bench: Workbench) -> str:
    result = compute(bench)
    headers = ["n"] + [f"eps={eps:.0%}" for eps in EPSILONS]
    rows = []
    for n in N_VALUES:
        rows.append([f"n={n}"] + [f"{result[(n, eps)]:.3%}" for eps in EPSILONS])
    return format_table(
        "Table 11: percentage of generated n-grams repeated from training",
        headers,
        rows,
    )
