"""Table 4 — NetShare training time with and without transfer learning.

Table 4 is the NetShare-only half of the Table 9 measurement (the paper
presents it first, in §4.2.1, to motivate limitation L3: GAN fine-tuning
saves little, so deriving six hourly models via transfer costs ~2× a
single 6-hour model).  The computation is shared with
:mod:`repro.experiments.table9`; this module re-reports its NetShare
column in Table 4's row layout.
"""

from __future__ import annotations

from . import table9
from .common import Workbench, format_table

__all__ = ["compute", "run"]


def compute(bench: Workbench, hours: tuple[int, ...] = table9.HOURS) -> dict:
    """NetShare's Table 4 rows (seconds at reproduction scale)."""
    full = table9.compute(bench, hours)
    netshare = full["NetShare"]
    return {
        "six_hour_scratch": netshare["no_transfer"],
        "one_hour_scratch": netshare["first_hour"],
        "one_hour_finetune": netshare["finetune_avg"],
        "six_hourly_models_transfer_total": netshare["transfer_total"],
    }


def run(bench: Workbench) -> str:
    result = compute(bench)
    rows = [
        ["6-hour model from scratch", f"{result['six_hour_scratch']:.1f}s"],
        ["1-hour model from scratch", f"{result['one_hour_scratch']:.1f}s"],
        [
            "1-hour model from finetuning from another hour",
            f"{result['one_hour_finetune']:.1f}s",
        ],
        [
            "6 1-hour models total from transfer learning",
            f"{result['six_hourly_models_transfer_total']:.1f}s",
        ],
    ]
    return format_table(
        "Table 4: NetShare training time, from scratch vs transfer learning",
        ["setup", "time"],
        rows,
    )
