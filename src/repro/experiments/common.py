"""Shared experiment infrastructure: scales, the workbench, table output.

Every table/figure module builds on :class:`Workbench`, which lazily
trains and caches the four generators the paper compares — SMM-1, SMM-k
(the SMM-20k analogue), NetShare and CPT-GPT — per device type, against
synthetic operator traces.  Mirroring §5.1, CPT-GPT and NetShare are
trained from scratch on phones and adapted to connected cars and tablets
with transfer learning.

Two preset scales are provided:

* ``SMOKE`` — seconds-per-experiment; used by the pytest benchmarks.
* ``MEDIUM`` — minutes-per-experiment; used to produce EXPERIMENTS.md.

Both run the identical code path; only sizes differ.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..baselines import NetShare, NetShareConfig, SMM1Generator, SMMClusteredGenerator
from ..core import (
    CPTGPT,
    CPTGPTConfig,
    GeneratorPackage,
    TrainingConfig,
    fine_tune,
    train,
)
from ..statemachine import LTE_EVENTS, LTE_SPEC
from ..tokenization import StreamTokenizer
from ..trace import DeviceType, SyntheticTraceConfig, TraceDataset, generate_trace

__all__ = ["ExperimentScale", "SMOKE", "MEDIUM", "Workbench", "format_table", "GENERATOR_NAMES"]

GENERATOR_NAMES = ("SMM-1", "SMM-20k", "NetShare", "CPT-GPT")


@dataclass(frozen=True)
class ExperimentScale:
    """All knobs that trade fidelity for wall-clock."""

    name: str
    train_ues: int = 300
    eval_ues: int = 300
    generated_streams: int = 300
    hour: int = 20
    seed: int = 7
    # CPT-GPT
    cpt_config: CPTGPTConfig = field(
        default_factory=lambda: CPTGPTConfig(
            d_model=32, num_layers=2, num_heads=4, d_ff=64, head_hidden=64, max_len=128
        )
    )
    cpt_epochs: int = 10
    cpt_transfer_epochs: int = 4
    cpt_batch_size: int = 48
    cpt_lr: float = 3e-3
    cpt_transfer_lr: float = 1e-3
    #: Length-bucketed batching is ~4x faster but biases the stop-flag
    #: hazard (see TrainingConfig.length_bucketing).  The smoke scale
    #: trades that bias for wall-clock; medium uses unbiased batching.
    cpt_length_bucketing: bool = False
    # NetShare
    ns_config: NetShareConfig = field(
        default_factory=lambda: NetShareConfig(max_len=130, batch_generation=5)
    )
    ns_epochs: int = 15
    ns_transfer_epochs: int = 8
    ns_batch_size: int = 32
    # SMM
    smm_clusters: int = 12

    def with_overrides(self, **kwargs) -> "ExperimentScale":
        return replace(self, **kwargs)


SMOKE = ExperimentScale(
    name="smoke",
    train_ues=300,
    eval_ues=250,
    generated_streams=250,
    cpt_config=CPTGPTConfig(
        d_model=48, num_layers=2, num_heads=4, d_ff=96, head_hidden=96, max_len=160
    ),
    cpt_epochs=16,
    cpt_transfer_epochs=6,
    cpt_length_bucketing=True,
    ns_epochs=20,
    ns_transfer_epochs=8,
    smm_clusters=10,
)

MEDIUM = ExperimentScale(
    name="medium",
    train_ues=700,
    eval_ues=700,
    generated_streams=700,
    cpt_config=CPTGPTConfig(
        d_model=64, num_layers=2, num_heads=4, d_ff=160, head_hidden=128, max_len=192
    ),
    cpt_epochs=22,
    cpt_transfer_epochs=8,
    cpt_batch_size=64,
    cpt_length_bucketing=False,
    ns_config=NetShareConfig(max_len=190, batch_generation=5, hidden_size=96),
    ns_epochs=30,
    ns_transfer_epochs=12,
    smm_clusters=16,
)


class Workbench:
    """Lazily-built, cached pipeline shared by all experiments.

    The cache keys are device types; training happens at most once per
    (generator, device type).  All experiments read generated traces of
    ``scale.generated_streams`` streams, evaluated against a held-out
    test trace generated with a different seed (the paper's train/test
    split across different days).
    """

    def __init__(self, scale: ExperimentScale) -> None:
        self.scale = scale
        self.spec = LTE_SPEC
        self.vocabulary = LTE_EVENTS
        self._train: dict[str, TraceDataset] = {}
        self._test: dict[str, TraceDataset] = {}
        self._tokenizer: StreamTokenizer | None = None
        self._cpt: dict[str, GeneratorPackage] = {}
        self._netshare: dict[str, NetShare] = {}
        self._smm1: dict[str, SMM1Generator] = {}
        self._smmk: dict[str, SMMClusteredGenerator] = {}
        self._generated: dict[tuple[str, str], TraceDataset] = {}
        self.training_times: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Data
    # ------------------------------------------------------------------
    def train_trace(self, device: str = DeviceType.PHONE) -> TraceDataset:
        if device not in self._train:
            self._train[device] = generate_trace(
                SyntheticTraceConfig(
                    num_ues=self.scale.train_ues,
                    device_type=device,
                    hour=self.scale.hour,
                    seed=self.scale.seed,
                )
            )
        return self._train[device]

    def test_trace(self, device: str = DeviceType.PHONE) -> TraceDataset:
        if device not in self._test:
            self._test[device] = generate_trace(
                SyntheticTraceConfig(
                    num_ues=self.scale.eval_ues,
                    device_type=device,
                    hour=self.scale.hour,
                    seed=self.scale.seed + 104729,  # a different capture day
                )
            )
        return self._test[device]

    @property
    def tokenizer(self) -> StreamTokenizer:
        """Tokenizer fitted on the phone training trace (shared, §5.1)."""
        if self._tokenizer is None:
            self._tokenizer = StreamTokenizer(self.vocabulary).fit(
                self.train_trace(DeviceType.PHONE)
            )
        return self._tokenizer

    # ------------------------------------------------------------------
    # Generators
    # ------------------------------------------------------------------
    def cptgpt(self, device: str = DeviceType.PHONE) -> GeneratorPackage:
        """CPT-GPT for ``device``: phones from scratch, others transferred."""
        if device in self._cpt:
            return self._cpt[device]
        scale = self.scale
        phone = DeviceType.PHONE
        if phone not in self._cpt:
            model = CPTGPT(scale.cpt_config, np.random.default_rng(scale.seed))
            result = train(
                model,
                self.train_trace(phone),
                self.tokenizer,
                TrainingConfig(
                    epochs=scale.cpt_epochs,
                    batch_size=scale.cpt_batch_size,
                    learning_rate=scale.cpt_lr,
                    seed=scale.seed,
                    length_bucketing=scale.cpt_length_bucketing,
                ),
            )
            self.training_times["cptgpt/phone"] = result.wall_time_seconds
            self._cpt[phone] = GeneratorPackage(
                model,
                self.tokenizer,
                self.train_trace(phone).initial_event_distribution(),
                phone,
            )
        if device != phone and device not in self._cpt:
            adapted, result = fine_tune(
                self._cpt[phone].model,
                self.train_trace(device),
                self.tokenizer,
                TrainingConfig(
                    epochs=scale.cpt_transfer_epochs,
                    batch_size=scale.cpt_batch_size,
                    learning_rate=scale.cpt_transfer_lr,
                    seed=scale.seed,
                    length_bucketing=scale.cpt_length_bucketing,
                ),
            )
            self.training_times[f"cptgpt/{device}"] = result.wall_time_seconds
            self._cpt[device] = GeneratorPackage(
                adapted,
                self.tokenizer,
                self.train_trace(device).initial_event_distribution(),
                device,
            )
        return self._cpt[device]

    def netshare(self, device: str = DeviceType.PHONE) -> NetShare:
        """NetShare for ``device`` (phone scratch, others fine-tuned)."""
        if device in self._netshare:
            return self._netshare[device]
        scale = self.scale
        phone = DeviceType.PHONE
        if phone not in self._netshare:
            model = NetShare(
                scale.ns_config, self.tokenizer, np.random.default_rng(scale.seed + 1)
            )
            result = model.train(
                self.train_trace(phone), epochs=scale.ns_epochs,
                batch_size=scale.ns_batch_size, seed=scale.seed,
            )
            self.training_times["netshare/phone"] = result.wall_time_seconds
            self._netshare[phone] = model
        if device != phone and device not in self._netshare:
            import copy

            adapted = copy.deepcopy(self._netshare[phone])
            result = adapted.fine_tune(
                self.train_trace(device),
                epochs=scale.ns_transfer_epochs,
                batch_size=scale.ns_batch_size,
                seed=scale.seed,
            )
            self.training_times[f"netshare/{device}"] = result.wall_time_seconds
            self._netshare[device] = adapted
        return self._netshare[device]

    def smm1(self, device: str = DeviceType.PHONE) -> SMM1Generator:
        if device not in self._smm1:
            self._smm1[device] = SMM1Generator.fit(self.train_trace(device), device)
        return self._smm1[device]

    def smmk(self, device: str = DeviceType.PHONE) -> SMMClusteredGenerator:
        if device not in self._smmk:
            self._smmk[device] = SMMClusteredGenerator.fit(
                self.train_trace(device),
                device,
                num_clusters=self.scale.smm_clusters,
                seed=self.scale.seed,
            )
        return self._smmk[device]

    # ------------------------------------------------------------------
    # Generated traces (the evaluation inputs)
    # ------------------------------------------------------------------
    def generated(self, generator: str, device: str = DeviceType.PHONE) -> TraceDataset:
        """Synthesized trace from ``generator`` for ``device`` (cached).

        ``generator`` is one of :data:`GENERATOR_NAMES`.
        """
        key = (generator, device)
        if key in self._generated:
            return self._generated[key]
        count = self.scale.generated_streams
        start_time = self.scale.hour * 3600.0
        rng = np.random.default_rng(self.scale.seed + 31337)
        if generator == "SMM-1":
            trace = self.smm1(device).generate(count, rng, start_time)
        elif generator == "SMM-20k":
            trace = self.smmk(device).generate(count, rng, start_time)
        elif generator == "NetShare":
            trace = self.netshare(device).generate(count, rng, device, start_time)
        elif generator == "CPT-GPT":
            trace = self.cptgpt(device).generate(count, rng, start_time)
        else:
            raise ValueError(
                f"unknown generator {generator!r}; expected one of {GENERATOR_NAMES}"
            )
        self._generated[key] = trace
        return trace


def format_table(title: str, headers: list[str], rows: list[list[str]]) -> str:
    """Fixed-width text table (the harness's paper-style output)."""
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
