"""Shared experiment infrastructure: scales, the workbench, table output.

Every table/figure module builds on :class:`Workbench`, which lazily
trains and caches the four generators the paper compares — SMM-1, SMM-k
(the SMM-20k analogue), NetShare and CPT-GPT — per device type, against
synthetic operator traces.  Mirroring §5.1, CPT-GPT and NetShare are
trained from scratch on phones and adapted to connected cars and tablets
with transfer learning.

Two preset scales are provided:

* ``SMOKE`` — seconds-per-experiment; used by the pytest benchmarks.
* ``MEDIUM`` — minutes-per-experiment; used to produce EXPERIMENTS.md.

Both run the identical code path; only sizes differ.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..api import GENERATORS, ScenarioSpec, TrafficGenerator
from ..baselines import NetShare, NetShareConfig, SMM1Generator, SMMClusteredGenerator
from ..core import CPTGPTConfig, GeneratorPackage, TrainingConfig
from ..statemachine import LTE_EVENTS, LTE_SPEC
from ..tokenization import StreamTokenizer
from ..trace import DeviceType, TraceDataset, generate_trace

__all__ = ["ExperimentScale", "SMOKE", "MEDIUM", "Workbench", "format_table", "GENERATOR_NAMES"]

#: Paper display names of the compared generators — registry aliases,
#: so ``Workbench.generated`` accepts them as-is.
GENERATOR_NAMES = ("SMM-1", "SMM-20k", "NetShare", "CPT-GPT")


@dataclass(frozen=True)
class ExperimentScale:
    """All knobs that trade fidelity for wall-clock."""

    name: str
    train_ues: int = 300
    eval_ues: int = 300
    generated_streams: int = 300
    hour: int = 20
    seed: int = 7
    # CPT-GPT
    cpt_config: CPTGPTConfig = field(
        default_factory=lambda: CPTGPTConfig(
            d_model=32, num_layers=2, num_heads=4, d_ff=64, head_hidden=64, max_len=128
        )
    )
    cpt_epochs: int = 10
    cpt_transfer_epochs: int = 4
    cpt_batch_size: int = 48
    cpt_lr: float = 3e-3
    cpt_transfer_lr: float = 1e-3
    #: Length-bucketed batching is ~4x faster but biases the stop-flag
    #: hazard (see TrainingConfig.length_bucketing).  The smoke scale
    #: trades that bias for wall-clock; medium uses unbiased batching.
    cpt_length_bucketing: bool = False
    # NetShare
    ns_config: NetShareConfig = field(
        default_factory=lambda: NetShareConfig(max_len=130, batch_generation=5)
    )
    ns_epochs: int = 15
    ns_transfer_epochs: int = 8
    ns_batch_size: int = 32
    # SMM
    smm_clusters: int = 12

    def with_overrides(self, **kwargs) -> "ExperimentScale":
        return replace(self, **kwargs)

    def generator_options(self) -> dict[str, dict]:
        """Constructor options per registered backend at this scale.

        Keyed by canonical registry name; the workbench instantiates
        every backend through the registry with these options, so a
        newly registered backend runs with its own defaults until a
        scale declares options for it.
        """
        return {
            "cpt-gpt": dict(
                config=self.cpt_config,
                training=TrainingConfig(
                    epochs=self.cpt_epochs,
                    batch_size=self.cpt_batch_size,
                    learning_rate=self.cpt_lr,
                    seed=self.seed,
                    length_bucketing=self.cpt_length_bucketing,
                ),
                transfer=TrainingConfig(
                    epochs=self.cpt_transfer_epochs,
                    batch_size=self.cpt_batch_size,
                    learning_rate=self.cpt_transfer_lr,
                    seed=self.seed,
                    length_bucketing=self.cpt_length_bucketing,
                ),
                init_seed=self.seed,
            ),
            "netshare": dict(
                config=self.ns_config,
                epochs=self.ns_epochs,
                transfer_epochs=self.ns_transfer_epochs,
                batch_size=self.ns_batch_size,
                seed=self.seed,
                init_seed=self.seed + 1,
            ),
            "smm-1": {},
            "smm-k": dict(num_clusters=self.smm_clusters, seed=self.seed),
        }


SMOKE = ExperimentScale(
    name="smoke",
    train_ues=300,
    eval_ues=250,
    generated_streams=250,
    cpt_config=CPTGPTConfig(
        d_model=48, num_layers=2, num_heads=4, d_ff=96, head_hidden=96, max_len=160
    ),
    cpt_epochs=16,
    cpt_transfer_epochs=6,
    cpt_length_bucketing=True,
    ns_epochs=20,
    ns_transfer_epochs=8,
    smm_clusters=10,
)

MEDIUM = ExperimentScale(
    name="medium",
    train_ues=700,
    eval_ues=700,
    generated_streams=700,
    cpt_config=CPTGPTConfig(
        d_model=64, num_layers=2, num_heads=4, d_ff=160, head_hidden=128, max_len=192
    ),
    cpt_epochs=22,
    cpt_transfer_epochs=8,
    cpt_batch_size=64,
    cpt_length_bucketing=False,
    ns_config=NetShareConfig(max_len=190, batch_generation=5, hidden_size=96),
    ns_epochs=30,
    ns_transfer_epochs=12,
    smm_clusters=16,
)


class Workbench:
    """Lazily-built, cached pipeline shared by all experiments.

    Generators are resolved through the :data:`repro.api.GENERATORS`
    registry — any registered backend works, with per-scale options
    from :meth:`ExperimentScale.generator_options`.  The cache keys are
    (canonical name, device type); training happens at most once per
    key.  Backends with ``transfers = True`` are trained from scratch
    on phones and adapted to the other device types (§5.1).  All
    experiments read generated traces of ``scale.generated_streams``
    streams, evaluated against a held-out test trace generated with a
    different seed (the paper's train/test split across different
    days).
    """

    def __init__(self, scale: ExperimentScale) -> None:
        self.scale = scale
        self.spec = LTE_SPEC
        self.vocabulary = LTE_EVENTS
        self._train: dict[str, TraceDataset] = {}
        self._test: dict[str, TraceDataset] = {}
        self._tokenizer: StreamTokenizer | None = None
        self._generators: dict[tuple[str, str], TrafficGenerator] = {}
        self._generated: dict[tuple[str, str], TraceDataset] = {}
        self.training_times: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Data
    # ------------------------------------------------------------------
    def train_trace(self, device: str = DeviceType.PHONE) -> TraceDataset:
        if device not in self._train:
            self._train[device] = generate_trace(self.scenario(device).trace_config())
        return self._train[device]

    def test_trace(self, device: str = DeviceType.PHONE) -> TraceDataset:
        if device not in self._test:
            self._test[device] = generate_trace(
                self.scenario(device).trace_config(
                    num_ues=self.scale.eval_ues,
                    seed_offset=104729,  # a different capture day
                )
            )
        return self._test[device]

    @property
    def tokenizer(self) -> StreamTokenizer:
        """Tokenizer fitted on the phone training trace (shared, §5.1)."""
        if self._tokenizer is None:
            self._tokenizer = StreamTokenizer(self.vocabulary).fit(
                self.train_trace(DeviceType.PHONE)
            )
        return self._tokenizer

    def scenario(self, device: str = DeviceType.PHONE) -> ScenarioSpec:
        """The workbench's workload for ``device`` as a scenario spec."""
        return ScenarioSpec(
            name=f"workbench-{device}",
            device_type=device,
            technology="4G",
            hour=self.scale.hour,
            num_ues=self.scale.train_ues,
            seed=self.scale.seed,
        )

    # ------------------------------------------------------------------
    # Generators (registry-driven)
    # ------------------------------------------------------------------
    def generator(
        self, name: str, device: str = DeviceType.PHONE
    ) -> TrafficGenerator:
        """The fitted backend for (``name``, ``device``), trained lazily.

        ``name`` is any registry name or alias.  Backends that support
        transfer learning are trained from scratch on phones and
        adapted to the requested device; the rest fit per device.
        """
        canonical = GENERATORS.canonical(name)
        key = (canonical, device)
        if key in self._generators:
            return self._generators[key]
        cls = GENERATORS.get(canonical)
        options = self.scale.generator_options().get(canonical, {})
        phone = DeviceType.PHONE
        if getattr(cls, "transfers", False) and device != phone:
            base = self.generator(canonical, phone)
            fitted = base.adapt(self.train_trace(device), self.scenario(device))
        else:
            if getattr(cls, "uses_tokenizer", False):
                options = {**options, "tokenizer": self.tokenizer}
            fitted = cls(**options).fit(
                self.train_trace(device), self.scenario(device)
            )
        self._generators[key] = fitted
        slug = canonical.replace("-", "")
        self.training_times[f"{slug}/{device}"] = fitted.fit_seconds
        return fitted

    # Backward-compatible accessors returning the backend-native objects.
    def cptgpt(self, device: str = DeviceType.PHONE) -> GeneratorPackage:
        """CPT-GPT for ``device``: phones from scratch, others transferred."""
        return self.generator("cpt-gpt", device).unwrap()

    def netshare(self, device: str = DeviceType.PHONE) -> NetShare:
        """NetShare for ``device`` (phone scratch, others fine-tuned)."""
        return self.generator("netshare", device).unwrap()

    def smm1(self, device: str = DeviceType.PHONE) -> SMM1Generator:
        return self.generator("smm-1", device).unwrap()

    def smmk(self, device: str = DeviceType.PHONE) -> SMMClusteredGenerator:
        return self.generator("smm-k", device).unwrap()

    # ------------------------------------------------------------------
    # Generated traces (the evaluation inputs)
    # ------------------------------------------------------------------
    def generated(self, generator: str, device: str = DeviceType.PHONE) -> TraceDataset:
        """Synthesized trace from ``generator`` for ``device`` (cached).

        ``generator`` is any name the registry resolves — the paper
        display names in :data:`GENERATOR_NAMES` included.
        """
        key = (GENERATORS.canonical(generator), device)
        if key in self._generated:
            return self._generated[key]
        count = self.scale.generated_streams
        rng = np.random.default_rng(self.scale.seed + 31337)
        trace = self.generator(generator, device).generate(
            count, rng, start_time=self.scale.hour * 3600.0
        )
        self._generated[key] = trace
        return trace


def format_table(title: str, headers: list[str], rows: list[list[str]]) -> str:
    """Fixed-width text table (the harness's paper-style output)."""
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
