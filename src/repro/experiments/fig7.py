"""Figure 7 (Appendix B) — interarrival-time distribution and log scaling.

The raw interarrival distribution of phone UEs is long-tailed (mass at
small values); after ``log(t + 1)`` it is far closer to uniform — the
rationale for CPT-GPT's log scaling (Design 1, footnote 3).  The
harness reports both CDFs plus a tail-skew summary.
"""

from __future__ import annotations

import numpy as np

from ..metrics import cdf_points
from ..trace import DeviceType
from .common import Workbench, format_table

__all__ = ["compute", "run"]


def compute(bench: Workbench) -> dict:
    """Raw and log-scaled interarrival CDF series + summary statistics."""
    pool = bench.train_trace(DeviceType.PHONE).interarrival_pool()
    pool = pool[pool > 0]
    logged = np.log1p(pool)
    raw_grid, raw_cdf = cdf_points(pool)
    log_grid = np.linspace(logged.min(), logged.max(), 64)
    log_cdf = np.searchsorted(np.sort(logged), log_grid, side="right") / logged.size
    return {
        "raw": {"grid": raw_grid, "cdf": raw_cdf},
        "log": {"grid": log_grid, "cdf": log_cdf},
        "stats": {
            "mean": float(pool.mean()),
            "median": float(np.median(pool)),
            "p99": float(np.percentile(pool, 99)),
            "skew_ratio": float(pool.mean() / np.median(pool)),
            "log_skew_ratio": float(logged.mean() / np.median(logged)),
        },
    }


def run(bench: Workbench) -> str:
    result = compute(bench)
    stats = result["stats"]
    rows = [
        ["mean (s)", f"{stats['mean']:.1f}"],
        ["median (s)", f"{stats['median']:.1f}"],
        ["p99 (s)", f"{stats['p99']:.1f}"],
        ["mean/median (raw; >>1 = long tail)", f"{stats['skew_ratio']:.2f}"],
        ["mean/median (log-scaled; ~1 = balanced)", f"{stats['log_skew_ratio']:.2f}"],
    ]
    return format_table(
        "Figure 7: interarrival-time distribution, raw vs log(t+1) (phones)",
        ["statistic", "value"],
        rows,
    )
