"""Figure 6 — scalability: fidelity vs synthesized population size.

CPT-GPT inference is run for increasing UE counts; each synthesized
dataset is compared against an equal-size random subset of the real
test trace.  Paper headline: all eight fidelity panels stay flat from
10k to 160k UEs — dataset size does not degrade fidelity.  At
reproduction scale the sweep covers proportionally smaller counts.
"""

from __future__ import annotations

import numpy as np

from ..metrics import fidelity_report
from ..trace import DeviceType
from .common import Workbench, format_table

__all__ = ["compute", "run", "sweep_counts"]


def sweep_counts(bench: Workbench) -> tuple[int, ...]:
    """Doubling population sweep bounded by the available test trace."""
    base = max(bench.scale.generated_streams // 8, 25)
    counts = [base * (2**i) for i in range(5)]
    limit = len(bench.test_trace(DeviceType.PHONE))
    return tuple(min(c, limit) for c in counts)


def compute(bench: Workbench) -> dict:
    """UE count -> flat fidelity metrics (the 8 panels of Figure 6)."""
    device = DeviceType.PHONE
    package = bench.cptgpt(device)
    test = bench.test_trace(device)
    rng = np.random.default_rng(bench.scale.seed + 99)
    out: dict[int, dict[str, float]] = {}
    for count in sweep_counts(bench):
        generated = package.generate(
            count, rng, start_time=bench.scale.hour * 3600.0
        )
        reference = test.sample(min(count, len(test)), rng)
        out[count] = fidelity_report(reference, generated, bench.spec).as_flat_dict()
    return out


def run(bench: Workbench) -> str:
    result = compute(bench)
    counts = sorted(result)
    headers = ["metric"] + [str(c) for c in counts]
    metric_keys = [
        ("violation_events", "{:.3%}"),
        ("violation_streams", "{:.1%}"),
        ("sojourn_connected", "{:.1%}"),
        ("sojourn_idle", "{:.1%}"),
        ("flow_length_all", "{:.1%}"),
        ("avg_breakdown_diff", "{:.2%}"),
    ]
    rows = []
    for key, fmt in metric_keys:
        rows.append([key] + [fmt.format(result[c][key]) for c in counts])
    return format_table(
        "Figure 6: fidelity vs synthesized UE population size (CPT-GPT, phones)",
        headers,
        rows,
    )
