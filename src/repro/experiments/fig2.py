"""Figure 2 — CONNECTED-state sojourn CDFs for phones.

Real vs NetShare vs CPT-GPT distributions of the per-UE average sojourn
time in CONNECTED.  Paper headline: max y-distance 27.9% (NetShare) vs
6.4% (CPT-GPT); NetShare smears sojourns across 2-100 s while the real
mass sits in 5-50 s.
"""

from __future__ import annotations

import numpy as np

from ..metrics import cdf_points, max_y_distance, per_ue_sojourns
from ..trace import DeviceType
from .common import Workbench, format_table

__all__ = ["compute", "run"]


def compute(bench: Workbench) -> dict:
    """CDF series + max y-distances for the Figure 2 panel."""
    device = DeviceType.PHONE
    state = bench.spec.connected_state
    real = per_ue_sojourns(bench.test_trace(device), bench.spec)[state]
    series: dict[str, dict[str, np.ndarray]] = {}
    distances: dict[str, float] = {}
    grid = np.geomspace(max(real.min(), 0.5), real.max() * 1.5, 48)
    grid_points, real_cdf = cdf_points(real, grid)
    series["Real"] = {"grid": grid_points, "cdf": real_cdf}
    for generator in ("NetShare", "CPT-GPT"):
        sample = per_ue_sojourns(bench.generated(generator, device), bench.spec)[state]
        _, cdf = cdf_points(sample, grid)
        series[generator] = {"grid": grid, "cdf": cdf}
        distances[generator] = max_y_distance(real, sample)
    return {"series": series, "max_y_distance": distances}


def run(bench: Workbench) -> str:
    result = compute(bench)
    rows = [
        [name, f"{distance:.1%}"]
        for name, distance in result["max_y_distance"].items()
    ]
    table = format_table(
        "Figure 2: CONNECTED sojourn-time CDF (phones) — max y-distance vs real",
        ["generator", "max y-distance"],
        rows,
    )
    # A coarse ASCII rendering of the CDFs at decade points (deduplicated
    # when the grid is too narrow to resolve adjacent probe values).
    series = result["series"]
    grid = series["Real"]["grid"]
    marks = sorted(
        {int(np.argmin(np.abs(grid - value))) for value in (1, 5, 10, 20, 50, 100)}
    )
    lines = ["", "CDF at sojourn seconds:", "generator  " + "".join(f"{grid[m]:>8.0f}s" for m in marks)]
    for name in ("Real", "NetShare", "CPT-GPT"):
        cdf = series[name]["cdf"]
        lines.append(f"{name:<10} " + "".join(f"{cdf[m]:>9.2f}" for m in marks))
    return table + "\n" + "\n".join(lines)
