"""Table 6 — max CDF y-distances: sojourn times and flow lengths.

Five metric rows (sojourn CONNECTED / IDLE; flow length all events /
SRV_REQ / S1_CONN_REL) × four generators × three device types.  The
paper's headline shapes: SMM-1 worst everywhere; CPT-GPT ≈ SMM-20k on
sojourns and both ≈ NetShare on flow lengths; NetShare poor on
CONNECTED sojourns.
"""

from __future__ import annotations

from ..metrics import compare_flow_lengths, compare_sojourns
from ..trace import DeviceType
from .common import GENERATOR_NAMES, Workbench, format_table

__all__ = ["compute", "run", "METRIC_ROWS"]

METRIC_ROWS = (
    "sojourn/CONNECTED",
    "sojourn/IDLE",
    "flow/all",
    "flow/SRV_REQ",
    "flow/S1_CONN_REL",
)


def compute(bench: Workbench) -> dict:
    """metric -> device -> generator -> max y-distance."""
    out: dict[str, dict[str, dict[str, float]]] = {
        metric: {device: {} for device in DeviceType.ALL} for metric in METRIC_ROWS
    }
    for device in DeviceType.ALL:
        real = bench.test_trace(device)
        for generator in GENERATOR_NAMES:
            synth = bench.generated(generator, device)
            sojourn = compare_sojourns(real, synth, bench.spec)
            flow = compare_flow_lengths(real, synth)
            out["sojourn/CONNECTED"][device][generator] = sojourn.connected
            out["sojourn/IDLE"][device][generator] = sojourn.idle
            out["flow/all"][device][generator] = flow.all_events
            out["flow/SRV_REQ"][device][generator] = flow.for_event("SRV_REQ")
            out["flow/S1_CONN_REL"][device][generator] = flow.for_event("S1_CONN_REL")
    return out


def run(bench: Workbench) -> str:
    result = compute(bench)
    headers = ["metric", "device"] + list(GENERATOR_NAMES)
    rows = []
    for metric in METRIC_ROWS:
        for device in DeviceType.ALL:
            cells = [metric, device]
            cells += [
                f"{result[metric][device][generator]:.1%}"
                for generator in GENERATOR_NAMES
            ]
            rows.append(cells)
    return format_table(
        "Table 6: Maximum y-distance between real and synthesized CDFs",
        headers,
        rows,
    )
