"""Tables 4 & 9 — training time with and without transfer learning.

Protocol of §5.5 on six consecutive hourly traces, using the paper's
fidelity-based stopping rule ("training stops when fidelity metrics show
diminishing returns"):

* models are checkpointed every few epochs;
* each checkpoint synthesizes a small trace and is scored on the
  fidelity metrics against a validation trace;
* checkpoints are ranked per metric, rank-sums computed, the best 20%
  kept and the earliest of those defines the training time
  (:func:`repro.metrics.select_checkpoint`).

Two training regimes per model: *no transfer* (one model on six pooled
hours) and *transfer* (hour 1 from scratch, hours 2-6 fine-tuned
recursively).  Paper headline (A100 minutes): NetShare 108.36 scratch
vs 195.12 transfer-total — transfer is a net loss; CPT-GPT 104.40 vs
67.12, with per-hour fine-tuning 3.36× faster than NetShare's
(9.06 vs 30.41).  Table 4 is the NetShare half of this measurement.
Absolute numbers here are CPU seconds at reduced scale; the reproduction
targets are the ratios and orderings.
"""

from __future__ import annotations

import copy

import numpy as np

from ..baselines import NetShare
from ..core import CPTGPT, GeneratorPackage, TrainingConfig, train
from ..metrics import Checkpoint, fidelity_report, select_checkpoint
from ..trace import DeviceType, TraceDataset, generate_hourly_traces
from .common import Workbench, format_table

__all__ = ["compute", "run", "HOURS"]

HOURS = (10, 11, 12, 13, 14, 15)

#: Fidelity metrics used to rank checkpoints (all lower-is-better).
_RANK_KEYS = (
    "violation_events",
    "violation_streams",
    "sojourn_connected",
    "sojourn_idle",
    "flow_length_all",
)


def _pooled(hourly: dict[int, TraceDataset]) -> TraceDataset:
    pooled = TraceDataset(streams=[], vocabulary=hourly[min(hourly)].vocabulary)
    for hour in sorted(hourly):
        for stream in hourly[hour]:
            pooled.add(stream)
    return pooled


def _score(bench: Workbench, generated: TraceDataset, validation: TraceDataset) -> dict:
    report = fidelity_report(validation, generated, bench.spec)
    flat = report.as_flat_dict()
    return {key: flat[key] for key in _RANK_KEYS}


def _select_time(checkpoints: list[Checkpoint]) -> float:
    return select_checkpoint(checkpoints).wall_time_seconds


def _train_cpt_selected(
    bench: Workbench,
    model: CPTGPT,
    dataset: TraceDataset,
    validation: TraceDataset,
    epochs: int,
    learning_rate: float,
    checkpoint_every: int,
    eval_streams: int,
    seed: int,
) -> float:
    """Train in segments; return train-time to the selected checkpoint."""
    scale = bench.scale
    tokenizer = bench.tokenizer
    elapsed = 0.0
    checkpoints: list[Checkpoint] = []
    config = TrainingConfig(
        epochs=checkpoint_every,
        batch_size=scale.cpt_batch_size,
        learning_rate=learning_rate,
        seed=seed,
        lr_schedule="constant",
        length_bucketing=scale.cpt_length_bucketing,
    )
    from ..nn import Adam

    optimizer = Adam(model.parameters(), lr=learning_rate)
    for epoch in range(checkpoint_every, epochs + 1, checkpoint_every):
        result = train(model, dataset, tokenizer, config, optimizer=optimizer)
        elapsed += result.wall_time_seconds
        package = GeneratorPackage(
            model, tokenizer, dataset.initial_event_distribution(), DeviceType.PHONE
        )
        generated = package.generate(
            eval_streams, np.random.default_rng(seed + epoch), start_time=0.0
        )
        checkpoints.append(
            Checkpoint(
                index=epoch,
                wall_time_seconds=elapsed,
                metrics=_score(bench, generated, validation),
            )
        )
    return _select_time(checkpoints)


def _train_netshare_selected(
    bench: Workbench,
    model: NetShare,
    dataset: TraceDataset,
    validation: TraceDataset,
    epochs: int,
    checkpoint_every: int,
    eval_streams: int,
    seed: int,
) -> float:
    scale = bench.scale
    elapsed = 0.0
    checkpoints: list[Checkpoint] = []
    for epoch in range(checkpoint_every, epochs + 1, checkpoint_every):
        result = model.train(
            dataset, epochs=checkpoint_every, batch_size=scale.ns_batch_size, seed=seed + epoch
        )
        elapsed += result.wall_time_seconds
        generated = model.generate(
            eval_streams,
            np.random.default_rng(seed + epoch),
            DeviceType.PHONE,
            start_time=0.0,
        )
        checkpoints.append(
            Checkpoint(
                index=epoch,
                wall_time_seconds=elapsed,
                metrics=_score(bench, generated, validation),
            )
        )
    return _select_time(checkpoints)


def compute(bench: Workbench, hours: tuple[int, ...] = HOURS) -> dict:
    """Wall-clock seconds for each Table 9 cell (Table 4 = NetShare half)."""
    scale = bench.scale
    per_hour_ues = max(scale.train_ues // len(hours), 40)
    hourly = generate_hourly_traces(
        per_hour_ues, list(hours), device_type=DeviceType.PHONE, seed=scale.seed
    )
    ordered = sorted(hourly)
    first = ordered[0]
    validation = bench.test_trace(DeviceType.PHONE)
    eval_streams = max(scale.generated_streams // 4, 40)
    every_cpt = max(scale.cpt_epochs // 4, 1)
    every_ns = max(scale.ns_epochs // 4, 1)

    out: dict[str, dict[str, float]] = {"CPT-GPT": {}, "NetShare": {}}

    # ---------------- CPT-GPT ----------------
    model = CPTGPT(scale.cpt_config, np.random.default_rng(scale.seed))
    out["CPT-GPT"]["no_transfer"] = _train_cpt_selected(
        bench, model, _pooled(hourly), validation,
        scale.cpt_epochs, scale.cpt_lr, every_cpt, eval_streams, scale.seed,
    )

    base = CPTGPT(scale.cpt_config, np.random.default_rng(scale.seed))
    out["CPT-GPT"]["first_hour"] = _train_cpt_selected(
        bench, base, hourly[first], validation,
        scale.cpt_epochs, scale.cpt_lr, every_cpt, eval_streams, scale.seed,
    )
    finetune_times = []
    previous = base
    for hour in ordered[1:]:
        adapted = copy.deepcopy(previous)
        finetune_times.append(
            _train_cpt_selected(
                bench, adapted, hourly[hour], validation,
                scale.cpt_epochs, scale.cpt_transfer_lr, every_cpt, eval_streams,
                scale.seed + hour,
            )
        )
        previous = adapted
    out["CPT-GPT"]["finetune_avg"] = float(np.mean(finetune_times))
    out["CPT-GPT"]["transfer_total"] = out["CPT-GPT"]["first_hour"] + float(
        np.sum(finetune_times)
    )

    # ---------------- NetShare ----------------
    pooled_ns = NetShare(scale.ns_config, bench.tokenizer, np.random.default_rng(scale.seed))
    out["NetShare"]["no_transfer"] = _train_netshare_selected(
        bench, pooled_ns, _pooled(hourly), validation,
        scale.ns_epochs, every_ns, eval_streams, scale.seed,
    )

    base_ns = NetShare(scale.ns_config, bench.tokenizer, np.random.default_rng(scale.seed))
    out["NetShare"]["first_hour"] = _train_netshare_selected(
        bench, base_ns, hourly[first], validation,
        scale.ns_epochs, every_ns, eval_streams, scale.seed,
    )
    finetune_times = []
    previous_ns = base_ns
    for hour in ordered[1:]:
        adapted_ns = copy.deepcopy(previous_ns)
        finetune_times.append(
            _train_netshare_selected(
                bench, adapted_ns, hourly[hour], validation,
                scale.ns_epochs, every_ns, eval_streams, scale.seed + hour,
            )
        )
        previous_ns = adapted_ns
    out["NetShare"]["finetune_avg"] = float(np.mean(finetune_times))
    out["NetShare"]["transfer_total"] = out["NetShare"]["first_hour"] + float(
        np.sum(finetune_times)
    )

    out["ratio"] = {
        "finetune_speedup": out["NetShare"]["finetune_avg"]
        / max(out["CPT-GPT"]["finetune_avg"], 1e-9),
        "ensemble_speedup": out["NetShare"]["transfer_total"]
        / max(out["CPT-GPT"]["transfer_total"], 1e-9),
        "cpt_transfer_vs_scratch": out["CPT-GPT"]["transfer_total"]
        / max(out["CPT-GPT"]["no_transfer"], 1e-9),
        "ns_transfer_vs_scratch": out["NetShare"]["transfer_total"]
        / max(out["NetShare"]["no_transfer"], 1e-9),
    }
    return out


def run(bench: Workbench) -> str:
    result = compute(bench)
    rows = []
    for label, key in (
        ("No transfer learning (6h pooled)", "no_transfer"),
        ("Transfer: first hour from scratch", "first_hour"),
        ("Transfer: finetune per subsequent hour (avg)", "finetune_avg"),
        ("Transfer: total (6 hourly models)", "transfer_total"),
    ):
        rows.append(
            [label, f"{result['NetShare'][key]:.1f}s", f"{result['CPT-GPT'][key]:.1f}s"]
        )
    rows.append(
        [
            "Per-hour finetune ratio (NetShare / CPT-GPT; paper 3.36x)",
            "",
            f"{result['ratio']['finetune_speedup']:.2f}x",
        ]
    )
    return format_table(
        "Tables 4 & 9: training time to the fidelity-selected checkpoint "
        "(CPU seconds at reproduction scale)",
        ["setup", "NetShare", "CPT-GPT"],
        rows,
    )
