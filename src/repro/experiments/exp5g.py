"""Extension experiment — CPT-GPT on 5G control-plane traffic.

The paper's conclusion lists 5G evaluation as future work: the authors
could only collect LTE traces, but argue CPT-GPT's domain-knowledge-free
design transfers unchanged.  The synthetic substrate *can* produce 5G
traffic (Figure 1b machine, REGISTER/DEREGISTER/AN_REL vocabulary, no
TAU), so this module runs that experiment: train CPT-GPT on a 5G trace
with zero code changes — only the vocabulary differs (d_token 8 instead
of 9) — and report the same fidelity metrics.

The reproduction claim being exercised: nothing in `repro.core` knows
which generation of cellular technology it is modelling.
"""

from __future__ import annotations

import numpy as np

from ..core import CPTGPT, CPTGPTConfig, GeneratorPackage, TrainingConfig, train
from ..metrics import fidelity_report
from ..statemachine import NR_EVENTS, NR_SPEC
from ..tokenization import StreamTokenizer
from ..trace import DeviceType, SyntheticTraceConfig, generate_trace
from .common import Workbench, format_table

__all__ = ["compute", "run"]


def compute(bench: Workbench) -> dict:
    """Train on 5G, generate, and score against a held-out 5G capture."""
    scale = bench.scale
    training = generate_trace(
        SyntheticTraceConfig(
            num_ues=scale.train_ues,
            device_type=DeviceType.PHONE,
            hour=scale.hour,
            technology="5G",
            seed=scale.seed,
        )
    )
    test = generate_trace(
        SyntheticTraceConfig(
            num_ues=scale.eval_ues,
            device_type=DeviceType.PHONE,
            hour=scale.hour,
            technology="5G",
            seed=scale.seed + 104729,
        )
    )
    tokenizer = StreamTokenizer(NR_EVENTS).fit(training)
    config = CPTGPTConfig(
        num_event_types=len(NR_EVENTS),
        d_model=scale.cpt_config.d_model,
        num_layers=scale.cpt_config.num_layers,
        num_heads=scale.cpt_config.num_heads,
        d_ff=scale.cpt_config.d_ff,
        head_hidden=scale.cpt_config.head_hidden,
        max_len=scale.cpt_config.max_len,
    )
    model = CPTGPT(config, np.random.default_rng(scale.seed))
    train(
        model,
        training,
        tokenizer,
        TrainingConfig(
            epochs=scale.cpt_epochs,
            batch_size=scale.cpt_batch_size,
            learning_rate=scale.cpt_lr,
            seed=scale.seed,
        ),
    )
    package = GeneratorPackage(
        model, tokenizer, training.initial_event_distribution(), DeviceType.PHONE
    )
    generated = package.generate(
        scale.generated_streams,
        np.random.default_rng(scale.seed + 5),
        start_time=scale.hour * 3600.0,
    )
    report = fidelity_report(
        test, generated, NR_SPEC, dominant_events=("SRV_REQ", "AN_REL")
    )
    return {
        "d_token": tokenizer.d_token,
        "metrics": report.as_flat_dict(),
        "breakdown_diff": report.breakdown_diff,
    }


def run(bench: Workbench) -> str:
    result = compute(bench)
    metrics = result["metrics"]
    rows = [
        ["token width (4G is 9)", str(result["d_token"])],
        ["violation events", f"{metrics['violation_events']:.3%}"],
        ["violation streams", f"{metrics['violation_streams']:.1%}"],
        ["sojourn CONN max-y", f"{metrics['sojourn_connected']:.1%}"],
        ["sojourn IDLE max-y", f"{metrics['sojourn_idle']:.1%}"],
        ["flow length max-y", f"{metrics['flow_length_all']:.1%}"],
        ["avg breakdown diff", f"{metrics['avg_breakdown_diff']:.2%}"],
    ]
    return format_table(
        "Extension: CPT-GPT on 5G traffic (the paper's future-work experiment)",
        ["metric", "value"],
        rows,
    )
