"""Figure 5 — the full CDF grid: 3 device types × 5 metrics × 5 sources.

Rows: phone / connected car / tablet.  Columns: sojourn time CONNECTED,
sojourn time IDLE, flow length (all events), flow length (SRV_REQ),
flow length (S1_CONN_REL).  Sources: Real, SMM-1, SMM-20k, NetShare,
CPT-GPT.  The harness emits per-cell CDF series (for plotting) and the
max y-distance of each generator from Real (the scalar the paper's
Table 6 summarizes).
"""

from __future__ import annotations

import numpy as np

from ..metrics import cdf_points, max_y_distance, per_ue_sojourns
from ..trace import DeviceType, TraceDataset
from .common import GENERATOR_NAMES, Workbench, format_table

__all__ = ["compute", "run", "COLUMNS"]

COLUMNS = (
    "sojourn/CONNECTED",
    "sojourn/IDLE",
    "flow/all",
    "flow/SRV_REQ",
    "flow/S1_CONN_REL",
)


def _column_sample(bench: Workbench, trace: TraceDataset, column: str) -> np.ndarray:
    kind, _, detail = column.partition("/")
    if kind == "sojourn":
        state = (
            bench.spec.connected_state if detail == "CONNECTED" else bench.spec.idle_state
        )
        return per_ue_sojourns(trace, bench.spec)[state]
    if detail == "all":
        return trace.flow_lengths().astype(float)
    return trace.flow_lengths(detail).astype(float)


def compute(bench: Workbench) -> dict:
    """device -> column -> {"series": {source: (grid, cdf)}, "max_y": {...}}."""
    out: dict[str, dict[str, dict]] = {}
    for device in DeviceType.ALL:
        real = bench.test_trace(device)
        out[device] = {}
        for column in COLUMNS:
            real_sample = _column_sample(bench, real, column)
            grid = np.geomspace(
                max(real_sample.min(), 0.5), max(real_sample.max(), 1.0) * 1.5, 48
            )
            cell = {"series": {}, "max_y": {}}
            cell["series"]["Real"] = cdf_points(real_sample, grid)
            for generator in GENERATOR_NAMES:
                sample = _column_sample(bench, bench.generated(generator, device), column)
                if sample.size == 0:
                    cell["max_y"][generator] = 1.0
                    cell["series"][generator] = (grid, np.zeros_like(grid))
                    continue
                cell["series"][generator] = cdf_points(sample, grid)
                cell["max_y"][generator] = max_y_distance(real_sample, sample)
            out[device][column] = cell
    return out


def run(bench: Workbench) -> str:
    result = compute(bench)
    headers = ["device", "column"] + list(GENERATOR_NAMES)
    rows = []
    for device in DeviceType.ALL:
        for column in COLUMNS:
            cell = result[device][column]
            rows.append(
                [device, column]
                + [f"{cell['max_y'][generator]:.1%}" for generator in GENERATOR_NAMES]
            )
    return format_table(
        "Figure 5: per-panel max y-distance from the real CDF "
        "(series available via compute())",
        headers,
        rows,
    )
