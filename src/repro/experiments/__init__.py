"""``repro.experiments`` — one module per paper table/figure.

Each module exposes ``compute(bench)`` (structured results) and
``run(bench)`` (a formatted paper-style table).  ``run_all`` executes
the full suite; the ``cpt-gpt experiments`` CLI is the entry point.

Index (see DESIGN.md §4):

=========  ==================================================
table3     NetShare semantic violations
table4     NetShare training time (the NetShare half of table9)
table5     violations: NetShare vs CPT-GPT × device types
table6     max CDF y-distances (sojourn + flow length)
table7     event-type breakdowns
table8     loss-weight sweep + no-distribution-head ablation
table9     Tables 4 & 9 — training time w/ and w/o transfer
table10    fidelity at the 4th hour w/ and w/o transfer
table11    n-gram memorization
fig2       CONNECTED sojourn CDFs (phones)
fig5       full CDF grid (3 devices × 5 metrics × 5 sources)
fig6       fidelity vs synthesized population size
fig7       interarrival distribution, raw vs log
exp5g      extension: CPT-GPT on 5G traffic (paper future work)
=========  ==================================================
"""

from . import exp5g, fig2, fig5, fig6, fig7, table3, table4, table5, table6, table7, table8, table9, table10, table11
from .common import MEDIUM, SMOKE, ExperimentScale, Workbench, format_table

__all__ = [
    "ExperimentScale",
    "SMOKE",
    "MEDIUM",
    "Workbench",
    "format_table",
    "run_all",
    "ALL_EXPERIMENTS",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "table9",
    "table10",
    "table11",
    "fig2",
    "fig5",
    "fig6",
    "fig7",
    "exp5g",
]

ALL_EXPERIMENTS = {
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "table6": table6,
    "table7": table7,
    "table8": table8,
    "table9": table9,
    "table10": table10,
    "table11": table11,
    "fig2": fig2,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "exp5g": exp5g,
}


def run_all(bench: Workbench, names: list[str] | None = None) -> str:
    """Run the selected experiments (all by default); returns the report."""
    selected = names if names is not None else list(ALL_EXPERIMENTS)
    unknown = [n for n in selected if n not in ALL_EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiments {unknown}; have {sorted(ALL_EXPERIMENTS)}")
    sections = []
    for name in selected:
        sections.append(ALL_EXPERIMENTS[name].run(bench))
    return "\n\n".join(sections)
