"""Table 10 — fidelity at the 4th hour, with vs without transfer learning.

Both models are evaluated on the 4th of six hourly traces, trained two
ways: from scratch on that hour ("w/o xfer") and by recursive
fine-tuning from the first hour ("w/ xfer").  Paper headline: transfer
learning has no systematic fidelity cost for either model — some metrics
improve, others degrade slightly.
"""

from __future__ import annotations

import copy

import numpy as np

from ..baselines import NetShare
from ..core import CPTGPT, GeneratorPackage, TrainingConfig, train
from ..metrics import fidelity_report
from ..trace import DeviceType, SyntheticTraceConfig, generate_hourly_traces, generate_trace
from .common import Workbench, format_table
from .table9 import HOURS

__all__ = ["compute", "run"]


def compute(bench: Workbench, hours: tuple[int, ...] = HOURS) -> dict:
    """{"CPT-GPT"|"NetShare"} -> {"scratch"|"transfer"} -> metrics."""
    scale = bench.scale
    per_hour_ues = max(scale.train_ues // len(hours), 40)
    hourly = generate_hourly_traces(
        per_hour_ues, list(hours), device_type=DeviceType.PHONE, seed=scale.seed
    )
    ordered = sorted(hourly)
    target_hour = ordered[3]  # the 4th hour
    tokenizer = bench.tokenizer
    test = generate_trace(
        SyntheticTraceConfig(
            num_ues=scale.eval_ues,
            device_type=DeviceType.PHONE,
            hour=target_hour,
            seed=scale.seed + 555,
        )
    )
    gen_count = scale.generated_streams
    start_time = target_hour * 3600.0

    scratch_cfg = TrainingConfig(
        epochs=scale.cpt_epochs,
        batch_size=scale.cpt_batch_size,
        learning_rate=scale.cpt_lr,
        seed=scale.seed,
        length_bucketing=scale.cpt_length_bucketing,
    )
    transfer_cfg = scratch_cfg.replace(
        epochs=scale.cpt_transfer_epochs, learning_rate=scale.cpt_transfer_lr
    )

    out: dict[str, dict[str, dict[str, float]]] = {"CPT-GPT": {}, "NetShare": {}}

    # CPT-GPT from scratch on the target hour.
    model = CPTGPT(scale.cpt_config, np.random.default_rng(scale.seed))
    train(model, hourly[target_hour], tokenizer, scratch_cfg)
    package = GeneratorPackage(
        model, tokenizer, hourly[target_hour].initial_event_distribution(),
        DeviceType.PHONE,
    )
    generated = package.generate(
        gen_count, np.random.default_rng(scale.seed + 1), start_time
    )
    out["CPT-GPT"]["scratch"] = fidelity_report(test, generated, bench.spec).as_flat_dict()

    # CPT-GPT via recursive transfer from the first hour.
    model = CPTGPT(scale.cpt_config, np.random.default_rng(scale.seed))
    train(model, hourly[ordered[0]], tokenizer, scratch_cfg)
    for hour in ordered[1:4]:
        adapted = copy.deepcopy(model)
        train(adapted, hourly[hour], tokenizer, transfer_cfg)
        model = adapted
    package = GeneratorPackage(
        model, tokenizer, hourly[target_hour].initial_event_distribution(),
        DeviceType.PHONE,
    )
    generated = package.generate(
        gen_count, np.random.default_rng(scale.seed + 2), start_time
    )
    out["CPT-GPT"]["transfer"] = fidelity_report(test, generated, bench.spec).as_flat_dict()

    # NetShare from scratch.
    netshare = NetShare(scale.ns_config, tokenizer, np.random.default_rng(scale.seed))
    netshare.train(
        hourly[target_hour], epochs=scale.ns_epochs, batch_size=scale.ns_batch_size,
        seed=scale.seed,
    )
    generated = netshare.generate(
        gen_count, np.random.default_rng(scale.seed + 3), DeviceType.PHONE, start_time
    )
    out["NetShare"]["scratch"] = fidelity_report(test, generated, bench.spec).as_flat_dict()

    # NetShare via recursive transfer.
    netshare = NetShare(scale.ns_config, tokenizer, np.random.default_rng(scale.seed))
    netshare.train(
        hourly[ordered[0]], epochs=scale.ns_epochs, batch_size=scale.ns_batch_size,
        seed=scale.seed,
    )
    for hour in ordered[1:4]:
        netshare = copy.deepcopy(netshare)
        netshare.fine_tune(
            hourly[hour], epochs=scale.ns_transfer_epochs,
            batch_size=scale.ns_batch_size, seed=scale.seed,
        )
    generated = netshare.generate(
        gen_count, np.random.default_rng(scale.seed + 4), DeviceType.PHONE, start_time
    )
    out["NetShare"]["transfer"] = fidelity_report(test, generated, bench.spec).as_flat_dict()
    return out


_ROWS = (
    ("Violation events", "violation_events", "{:.3%}"),
    ("Violation streams", "violation_streams", "{:.1%}"),
    ("Sojourn (CONN)", "sojourn_connected", "{:.1%}"),
    ("Sojourn (IDLE)", "sojourn_idle", "{:.1%}"),
    ("Flow length", "flow_length_all", "{:.1%}"),
)


def run(bench: Workbench) -> str:
    result = compute(bench)
    headers = [
        "metric",
        "NetShare w/o xfer",
        "CPT-GPT w/o xfer",
        "NetShare w/ xfer",
        "CPT-GPT w/ xfer",
    ]
    rows = []
    for label, key, fmt in _ROWS:
        rows.append(
            [
                label,
                fmt.format(result["NetShare"]["scratch"][key]),
                fmt.format(result["CPT-GPT"]["scratch"][key]),
                fmt.format(result["NetShare"]["transfer"][key]),
                fmt.format(result["CPT-GPT"]["transfer"][key]),
            ]
        )
    return format_table(
        "Table 10: fidelity at the 4th hour w/ and w/o transfer learning",
        headers,
        rows,
    )
