"""R003 hot-path-purity: vectorized kernels must stay vectorized.

The 15M ev/s columnar merge (PR 9) dies silently if someone
reintroduces a per-event Python loop — every test still passes, the
pipeline is just an order of magnitude slower.  Functions marked
``@hot_path`` (or listed in
:data:`~repro.analysis.hotpath.HOT_PATH_MANIFEST`) may not contain
``for``/``while`` loops, list-``append`` accumulation inside loops, or
per-iteration object construction.

Loops that are *not* per-event — per-shard loops bounded by the worker
count, per-position steps vectorized across all live streams — are
annotated ``# repro-lint: allow[hot-path-purity]`` on the loop header;
the suppression covers the loop body, so a reviewed per-shard loop does
not need an annotation on every statement inside it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .framework import FileContext, Finding, LintRule, register_rule
from .hotpath import HOT_PATH_MANIFEST

__all__ = ["HotPathPurity"]

_LOOPS = (ast.For, ast.AsyncFor, ast.While)
_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp)


@register_rule
class HotPathPurity(LintRule):
    """R003: no per-element Python loops in hot-path kernels."""

    id = "R003"
    name = "hot-path-purity"
    description = (
        "functions marked @hot_path (or listed in the hot-path manifest) "
        "may not loop per element, accumulate via list.append in loops, or "
        "construct objects per iteration"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ctx.walk():
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if self._is_hot(ctx, node):
                yield from self._check_function(ctx, node)

    # ------------------------------------------------------------------
    def _is_hot(self, ctx: FileContext, node: ast.AST) -> bool:
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            resolved = ctx.resolve(target)
            if resolved is not None and resolved.split(".")[-1] == "hot_path":
                return True
        qualname = ctx.qualname(node)
        path = ctx.path.as_posix()
        return any(
            path.endswith(suffix) and qualname == name
            for suffix, name in HOT_PATH_MANIFEST
        )

    def _check_function(
        self, ctx: FileContext, fn: ast.AST
    ) -> Iterator[Finding]:
        name = ctx.qualname(fn)
        yield from self._scan(ctx, fn, name, in_loop=False)

    def _scan(
        self, ctx: FileContext, node: ast.AST, fn_name: str, *, in_loop: bool
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            # Nested defs are their own (possibly non-hot) functions.
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(child, _LOOPS):
                if ctx.is_suppressed(self, child):
                    # A reviewed (per-shard / per-position) loop: the
                    # header suppression covers the whole body.
                    continue
                kind = "while" if isinstance(child, ast.While) else "for"
                yield self.finding(
                    ctx,
                    child,
                    f"per-element `{kind}` loop in hot-path function "
                    f"{fn_name}() — vectorize over the event columns, or "
                    "annotate a reviewed per-shard loop with "
                    "allow[hot-path-purity]",
                )
                yield from self._scan(ctx, child, fn_name, in_loop=True)
                continue
            if isinstance(child, _COMPREHENSIONS) and not ctx.is_suppressed(
                self, child
            ):
                yield self.finding(
                    ctx,
                    child,
                    f"per-element comprehension in hot-path function "
                    f"{fn_name}() — vectorize over the event columns",
                )
            if in_loop and isinstance(child, ast.Call):
                yield from self._check_loop_call(ctx, child, fn_name)
            yield from self._scan(ctx, child, fn_name, in_loop=in_loop)

    def _check_loop_call(
        self, ctx: FileContext, call: ast.Call, fn_name: str
    ) -> Iterator[Finding]:
        if ctx.is_suppressed(self, call):
            return
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "append"
        ):
            yield self.finding(
                ctx,
                call,
                f"list.append inside a loop in hot-path function "
                f"{fn_name}() — accumulate columns and concatenate once",
            )
            return
        resolved = ctx.resolve(call.func)
        if resolved is not None:
            last = resolved.split(".")[-1]
            if last[:1].isupper() and not last.isupper():
                yield self.finding(
                    ctx,
                    call,
                    f"per-iteration object construction {last}(...) in "
                    f"hot-path function {fn_name}() — keep the hot path "
                    "columnar; decode to objects only at the edges",
                )
