"""Process-safety rules: fork hygiene (R004) and audited invariant
mutators (R006).

R004 — *fork-safety*: the supervised producer shards are **forked**, so
everything at module scope in a fork-target module is duplicated into
every child copy-on-write.  Mutable module state silently diverges
between parent and children, inherited locks can be cloned in the held
state, and shared file handles interleave writes.  Module-level mutable
state in those modules must either be one of the registered teardown
registries (reaped at interpreter exit, parent-only by construction) or
carry a reviewed inline allow.

R006 — *invariant-guard*: the service's conservation invariant
``merged == delivered + shed + pending`` is re-verified on every
``status()`` call, but the check is only as good as the set of code
paths allowed to move those counters.  Any function that mutates a
guarded counter attribute must be in the audited set below — adding a
new mutator forces the author (and reviewer) to extend the audit,
which is exactly the point.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .framework import FileContext, Finding, LintRule, register_rule

__all__ = ["ForkSafety", "InvariantGuard"]


#: Modules whose module scope is inherited by forked workers.
_FORK_MODULES = ("core/sharding.py", "service/supervisor.py")

#: Module-level names recognised as registered teardown registries
#: (reaped by the ``atexit`` hook in ``core.sharding``).
_TEARDOWN_REGISTRIES = frozenset({"_LIVE_POOLS", "_LIVE_WORKERS"})

#: Constructors whose result is mutable (or otherwise fork-hostile).
_MUTABLE_CALLS = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "collections.deque",
        "collections.defaultdict",
        "collections.OrderedDict",
        "collections.Counter",
        "weakref.WeakSet",
        "weakref.WeakKeyDictionary",
        "weakref.WeakValueDictionary",
        "queue.Queue",
        "queue.SimpleQueue",
    }
)
_LOCK_CALLS = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Event",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
    }
)
_HANDLE_CALLS = frozenset({"open", "io.open", "os.open"})


@register_rule
class ForkSafety(LintRule):
    """R004: no unregistered mutable module state in fork-target modules."""

    id = "R004"
    name = "fork-safety"
    description = (
        "modules reachable from stream_worker/_supervised_pool fork targets "
        "may not hold module-level mutable state, locks, or open file "
        "handles unless registered in the teardown registries"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.pkg_rel in _FORK_MODULES:
            return True
        # Any module that forks workers itself is in scope too.
        return "multiprocessing" in ctx.imports.values()

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for statement in self._module_and_class_statements(ctx):
            if isinstance(statement, (ast.Assign, ast.AnnAssign)):
                targets = (
                    statement.targets
                    if isinstance(statement, ast.Assign)
                    else [statement.target]
                )
                value = statement.value
                if value is None:
                    continue
                names = {
                    target.id
                    for target in targets
                    if isinstance(target, ast.Name)
                }
                if names & _TEARDOWN_REGISTRIES:
                    continue
                # Dunders (__all__ and friends) are interpreter-facing
                # declarations, never runtime-mutated shared state.
                if names and all(
                    name.startswith("__") and name.endswith("__")
                    for name in names
                ):
                    continue
                problem = self._problem(ctx, value)
                if problem and not ctx.is_suppressed(self, statement):
                    label = ", ".join(sorted(names)) or "<target>"
                    yield self.finding(
                        ctx,
                        statement,
                        f"module-level {problem} `{label}` in a fork-target "
                        "module — forked workers inherit it copy-on-write "
                        "and diverge silently; register it in the teardown "
                        "registries or move it into the worker",
                    )
            elif isinstance(statement, ast.Expr) and isinstance(
                statement.value, ast.Call
            ):
                resolved = ctx.call_name(statement.value)
                if resolved in _HANDLE_CALLS and not ctx.is_suppressed(
                    self, statement
                ):
                    yield self.finding(
                        ctx,
                        statement,
                        "module-level open() in a fork-target module — the "
                        "handle is shared across fork and writes interleave",
                    )

    @staticmethod
    def _module_and_class_statements(ctx: FileContext):
        for statement in ctx.tree.body:
            yield statement
            if isinstance(statement, ast.ClassDef):
                yield from statement.body

    def _problem(self, ctx: FileContext, value: ast.AST) -> "str | None":
        if isinstance(value, (ast.List, ast.Dict, ast.Set)):
            return "mutable container"
        if isinstance(value, (ast.ListComp, ast.DictComp, ast.SetComp)):
            return "mutable container"
        if isinstance(value, ast.Call):
            resolved = ctx.call_name(value)
            if resolved in _LOCK_CALLS:
                return "synchronization primitive"
            if resolved in _HANDLE_CALLS:
                return "open file handle"
            if resolved in _MUTABLE_CALLS:
                return "mutable container"
        return None


#: Counter attributes covered by the ``status()`` conservation check
#: (``merged == delivered + shed + pending``) and the ring's watermark
#: accounting.
_GUARDED_ATTRS = frozenset(
    {
        "delivered",  # TrafficService
        "merged_total",  # ChunkMerger
        "_merged_before",  # TrafficService loop-mode carry
        "total",  # ShedAccount
        "episodes",  # ShedAccount
        "by_cohort",  # ShedAccount
        "_depth",  # EventRing
        "_throttled",  # EventRing hysteresis latch
    }
)

#: The audited mutator set: the only functions allowed to move guarded
#: counters.  Keys are paths relative to the repro package; values are
#: dotted qualified names within the module.
_AUDITED_MUTATORS: dict[str, frozenset] = {
    "service/ring.py": frozenset(
        {
            "EventRing.__init__",
            "EventRing.push",
            "EventRing.pop",
            "EventRing.replace_head",
            "EventRing._update_latch",
        }
    ),
    "service/degradation.py": frozenset(
        {
            "ShedAccount.__init__",
            "ShedAccount.record",
            "ShedAccount.note_level",
        }
    ),
    "service/merge.py": frozenset(
        {
            "ChunkMerger.__init__",
            "ChunkMerger.pop_ready_chunks",
        }
    ),
    "service/service.py": frozenset(
        {
            "TrafficService.__init__",
            "TrafficService._deliver",
            "TrafficService._deliver_chunk",
            "TrafficService._record_shed",
            "TrafficService._maybe_wrap_cycle",
            # run() owns the cycle-wrap accounting: it resets and advances
            # _merged_before, which status() folds into merged_total before
            # checking conservation.
            "TrafficService.run",
        }
    ),
}


@register_rule
class InvariantGuard(LintRule):
    """R006: guarded counters move only inside the audited mutator set."""

    id = "R006"
    name = "invariant-guard"
    description = (
        "functions mutating ShedAccount / ring-depth / delivered counters "
        "must be in the audited set the status() conservation check covers"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.pkg_rel.startswith("service/")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        audited = _AUDITED_MUTATORS.get(ctx.pkg_rel, frozenset())
        for node in ctx.walk():
            target = self._guarded_target(node)
            if target is None or ctx.is_suppressed(self, node):
                continue
            fn = ctx.enclosing_function(node)
            qualname = ctx.qualname(fn) if fn is not None else "<module>"
            if qualname in audited:
                continue
            yield self.finding(
                ctx,
                node,
                f"{qualname}() mutates guarded counter `.{target}` but is "
                "not in the audited mutator set the status() conservation "
                "check covers — add it to _AUDITED_MUTATORS (and audit it) "
                "or route the mutation through an audited method",
            )

    @staticmethod
    def _guarded_target(node: ast.AST) -> "str | None":
        if isinstance(node, ast.AugAssign):
            targets = [node.target]
        elif isinstance(node, ast.Assign):
            targets = node.targets
        else:
            return None
        for target in targets:
            # Plain attribute writes and subscript writes like
            # ``account.by_cohort[name] = n`` both count as mutation.
            if isinstance(target, ast.Subscript):
                target = target.value
            if isinstance(target, ast.Attribute) and target.attr in _GUARDED_ATTRS:
                return target.attr
        return None
