"""Visitor-based lint framework: rule registry, AST walk, findings.

The contracts this codebase depends on — SeedSequence-keyed RNGs,
injectable clocks in deterministic paths, vectorized hot paths,
fork-safe module state, registered schema strings, audited invariant
mutators — are conventions a test suite can only spot-check.  This
framework turns them into machine-checked rules: each
:class:`LintRule` walks one file's AST (with parent links, scope
qualnames, and an import-alias map precomputed in the
:class:`FileContext`) and yields :class:`Finding` records.

Escape hatches, in order of preference:

* inline suppression — ``# repro-lint: allow[<rule>]`` on the flagged
  line (or a standalone comment on the line above).  For block
  statements the comment on the header line covers the body, so one
  reviewed ``allow`` on a per-shard ``for`` does not need repeating on
  every statement inside.  ``allow[*]`` suppresses every rule.
* committed baseline — ``repro lint --baseline <path>`` filters
  grandfathered findings recorded by ``--write-baseline``.  Baseline
  entries are fingerprinted against the *text* of the flagged line, so
  unrelated edits don't resurrect them; entries whose finding
  disappeared are reported as *stale* and fail the run, which keeps
  baselines shrinking monotonically.

Reports come in two shapes: the human ``path:line:col RXXX[name]``
stream and a JSON document (schema
:data:`~repro.analysis.schemas.LINT_REPORT_V1`) for CI artifacts.
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from .schemas import LINT_BASELINE_V1, LINT_REPORT_V1

__all__ = [
    "Finding",
    "LintRule",
    "FileContext",
    "LintResult",
    "Baseline",
    "register_rule",
    "all_rules",
    "select_rules",
    "available_rule_names",
    "run_lint",
    "format_human",
    "report_json",
]


# ----------------------------------------------------------------------
# Findings
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str  #: rule name, e.g. ``"rng-discipline"``
    rule_id: str  #: short id, e.g. ``"R001"``
    severity: str  #: ``"error"`` or ``"warning"``
    path: str  #: posix path as reported (relative to the lint root)
    line: int
    col: int
    message: str

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id}[{self.rule}] {self.message}"
        )

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "rule_id": self.rule_id,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
_ALLOW = re.compile(r"repro-lint:\s*allow\[([^\]]*)\]")


def _parse_suppressions(source: str) -> tuple[dict, dict]:
    """``(same_line, own_line)`` maps of line -> set of allowed rule keys.

    ``same_line`` entries sit on a line that also holds code; they cover
    that line (and, via :meth:`FileContext.is_suppressed`, any block
    statement headed there).  ``own_line`` entries are standalone
    comments; they cover the next line.
    """
    same_line: dict[int, set] = {}
    own_line: dict[int, set] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _ALLOW.search(tok.string)
            if not match:
                continue
            names = {
                part.strip() for part in match.group(1).split(",") if part.strip()
            }
            row = tok.start[0]
            line_text = tok.line[: tok.start[1]].strip()
            target = same_line if line_text else own_line
            target.setdefault(row, set()).update(names)
    except tokenize.TokenError:  # unterminated strings etc.; best effort
        pass
    return same_line, own_line


# ----------------------------------------------------------------------
# Per-file context
# ----------------------------------------------------------------------
class FileContext:
    """One parsed file plus the bookkeeping every rule needs.

    * ``parents`` — child AST node -> parent node;
    * ``qualnames`` — def/class node -> dotted qualified name;
    * import-alias resolution (:meth:`resolve`, :meth:`call_name`) so
      ``from time import perf_counter; perf_counter()`` and
      ``import numpy as np; np.random.default_rng()`` both resolve to
      their canonical dotted names;
    * suppression lookups (:meth:`is_suppressed`).

    ``pkg_rel`` is the path relative to the innermost ``repro`` package
    directory (``"core/sharding.py"``) — the key rules use for zone
    checks — falling back to the file name outside a package.
    """

    def __init__(self, path: Path, source: str, rel: str) -> None:
        self.path = path
        self.rel = rel
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self.parents: dict[ast.AST, ast.AST] = {}
        self.qualnames: dict[ast.AST, str] = {}
        self.imports: dict[str, str] = {}
        self._same_line, self._own_line = _parse_suppressions(source)
        self._index()
        parts = path.as_posix().split("/")
        if "repro" in parts:
            tail = parts[len(parts) - 1 - parts[::-1].index("repro") + 1 :]
            self.pkg_rel = "/".join(tail)
        else:
            self.pkg_rel = path.name

    # -- indexing ------------------------------------------------------
    def _index(self) -> None:
        scope_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        stack: list[tuple[ast.AST, list[str]]] = [(self.tree, [])]
        while stack:
            node, scope = stack.pop()
            for child in ast.iter_child_nodes(node):
                self.parents[child] = node
                child_scope = scope
                if isinstance(child, scope_types):
                    child_scope = scope + [child.name]
                    self.qualnames[child] = ".".join(child_scope)
                stack.append((child, child_scope))
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                self._index_import(node)

    def _index_import(self, node: ast.AST) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.asname or alias.name.split(".")[0]
                self.imports[name] = alias.name if alias.asname else name
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                self.imports[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )

    # -- navigation ----------------------------------------------------
    def walk(self) -> Iterator[ast.AST]:
        return ast.walk(self.tree)

    def parent(self, node: ast.AST) -> "ast.AST | None":
        return self.parents.get(node)

    def enclosing_function(self, node: ast.AST) -> "ast.AST | None":
        """The nearest enclosing def node (``None`` at module/class level)."""
        current = self.parents.get(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current
            current = self.parents.get(current)
        return None

    def qualname(self, node: ast.AST) -> str:
        return self.qualnames.get(node, "<module>")

    # -- name resolution -----------------------------------------------
    def resolve(self, node: ast.AST) -> "str | None":
        """Canonical dotted name for a Name/Attribute chain, or ``None``.

        The base name is expanded through the file's import aliases, so
        the result is module-qualified wherever the import is visible
        (``np.random.default_rng`` -> ``numpy.random.default_rng``).
        Locals that shadow imports are not tracked — the linter is
        syntactic by design.
        """
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        base = self.imports.get(current.id, current.id)
        parts.append(base)
        return ".".join(reversed(parts))

    def call_name(self, node: ast.Call) -> "str | None":
        return self.resolve(node.func)

    # -- suppressions --------------------------------------------------
    def is_suppressed(self, rule: "LintRule", node: ast.AST) -> bool:
        keys = {rule.name, rule.id, "*"}
        first = getattr(node, "lineno", 0)
        last = getattr(node, "end_lineno", first) or first
        # A block statement is covered by a comment on its *header*
        # lines only (def/for/while line up to the colon), not by one
        # buried in its body.
        body = getattr(node, "body", None)
        if isinstance(body, list) and body:
            last = min(last, body[0].lineno - 1) if body[0].lineno > first else first
        for row in range(first, last + 1):
            if self._same_line.get(row, ()) and (
                self._same_line[row] & keys
            ):
                return True
        allowed = self._own_line.get(first - 1, ())
        return bool(allowed and set(allowed) & keys)

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------
class LintRule:
    """Base class: subclass, set ``id``/``name``, implement :meth:`check`.

    ``check`` yields findings for one file; suppression filtering
    happens in the framework for the yielded node's location, but rules
    that skip whole subtrees (block-level allows) should consult
    :meth:`FileContext.is_suppressed` themselves.
    """

    id: str = ""
    name: str = ""
    severity: str = "error"
    description: str = ""

    def applies_to(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.name,
            rule_id=self.id,
            severity=self.severity,
            path=ctx.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


_RULES: dict[str, LintRule] = {}


def register_rule(cls: type) -> type:
    """Class decorator adding one rule instance to the registry."""
    rule = cls()
    if not rule.id or not rule.name:
        raise ValueError(f"rule {cls.__name__} needs both id and name")
    for key in (rule.id, rule.name):
        existing = _RULES.get(key)
        if existing is not None and type(existing) is not cls:
            raise ValueError(f"duplicate rule key {key!r}")
    _RULES[rule.id] = rule
    _RULES[rule.name] = rule
    return cls


def _load_builtin_rules() -> None:
    from . import rules_determinism  # noqa: F401
    from . import rules_hotpath  # noqa: F401
    from . import rules_safety  # noqa: F401
    from . import rules_schema  # noqa: F401


def all_rules() -> list[LintRule]:
    """Every registered rule, ordered by id."""
    _load_builtin_rules()
    unique = {id(rule): rule for rule in _RULES.values()}
    return sorted(unique.values(), key=lambda rule: rule.id)


def available_rule_names() -> list[str]:
    return [rule.name for rule in all_rules()]


def select_rules(selectors: "Sequence[str] | None") -> list[LintRule]:
    """Rules matching ``selectors`` (names or ids); all when ``None``."""
    rules = all_rules()
    if not selectors:
        return rules
    chosen: dict[int, LintRule] = {}
    for selector in selectors:
        rule = _RULES.get(selector)
        if rule is None:
            known = ", ".join(r.name for r in rules)
            raise KeyError(f"unknown rule {selector!r}; known rules: {known}")
        chosen[id(rule)] = rule
    return sorted(chosen.values(), key=lambda rule: rule.id)


# ----------------------------------------------------------------------
# Running
# ----------------------------------------------------------------------
@dataclass
class LintResult:
    """Findings across one lint run (already suppression-filtered)."""

    findings: list[Finding] = field(default_factory=list)
    files: int = 0
    errors: list[str] = field(default_factory=list)  # unparseable files
    #: reported path -> source lines (for baseline fingerprinting).
    sources: dict = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.findings and not self.errors

    def line_text(self, finding: Finding) -> str:
        lines = self.sources.get(finding.path, ())
        if 1 <= finding.line <= len(lines):
            return lines[finding.line - 1].strip()
        return ""


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    seen = set()
    for path in paths:
        path = Path(path)
        candidates = (
            sorted(path.rglob("*.py")) if path.is_dir() else [path]
        )
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def _relative_to_cwd(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def run_lint(
    paths: Sequence,
    rules: "Sequence[LintRule] | None" = None,
    *,
    rel_paths: bool = True,
) -> LintResult:
    """Lint every ``.py`` file under ``paths`` with ``rules``.

    Findings on suppressed lines are dropped here; baseline filtering is
    the caller's concern (see :class:`Baseline`).
    """
    active = list(rules) if rules is not None else all_rules()
    result = LintResult()
    for path in iter_python_files(Path(p) for p in paths):
        rel = _relative_to_cwd(path) if rel_paths else Path(path).as_posix()
        try:
            source = path.read_text()
            ctx = FileContext(path, source, rel)
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            result.errors.append(f"{rel}: {exc}")
            continue
        result.files += 1
        result.sources[rel] = ctx.lines
        for rule in active:
            if not rule.applies_to(ctx):
                continue
            for finding in rule.check(ctx):
                result.findings.append(finding)
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return result


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
def _fingerprints(findings: Iterable[Finding], text_of) -> list[str]:
    """Stable per-finding fingerprints: line *text*, not line number.

    Duplicate (rule, path, text) triples disambiguate by occurrence
    order, so two identical violations in one file baseline separately.
    """
    counts: dict[tuple, int] = {}
    out = []
    for finding in findings:
        text = text_of(finding)
        key = (finding.rule, finding.path, text)
        index = counts.get(key, 0)
        counts[key] = index + 1
        digest = hashlib.sha256(
            f"{finding.rule}|{finding.path}|{text}|{index}".encode()
        ).hexdigest()[:16]
        out.append(digest)
    return out


class Baseline:
    """A committed set of grandfathered findings.

    ``apply`` splits a result's findings into fresh vs baselined and
    reports entries whose finding no longer exists as *stale* — the
    expiry half of the add/expire contract.
    """

    def __init__(self, entries: "list[dict] | None" = None) -> None:
        self.entries = list(entries or [])

    # -- persistence ---------------------------------------------------
    @classmethod
    def load(cls, path) -> "Baseline":
        payload = json.loads(Path(path).read_text())
        if payload.get("schema") != LINT_BASELINE_V1:
            raise ValueError(
                f"not a lint baseline: schema {payload.get('schema')!r}, "
                f"expected {LINT_BASELINE_V1!r}"
            )
        return cls(payload.get("findings", []))

    def save(self, path) -> None:
        payload = {
            "schema": LINT_BASELINE_V1,
            "findings": sorted(
                self.entries,
                key=lambda e: (e["path"], e["rule"], e["fingerprint"]),
            ),
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n")

    # -- construction / application ------------------------------------
    @classmethod
    def from_findings(cls, findings: Sequence[Finding], line_texts) -> "Baseline":
        prints = _fingerprints(findings, line_texts)
        return cls(
            [
                {
                    "rule": finding.rule,
                    "path": finding.path,
                    "fingerprint": digest,
                    "line": finding.line,
                    "message": finding.message,
                }
                for finding, digest in zip(findings, prints)
            ]
        )

    def apply(
        self, findings: Sequence[Finding], line_texts
    ) -> tuple[list[Finding], list[Finding], list[dict]]:
        """``(fresh, baselined, stale_entries)`` for this run's findings."""
        prints = _fingerprints(findings, line_texts)
        known = {(e["rule"], e["path"], e["fingerprint"]) for e in self.entries}
        matched = set()
        fresh, baselined = [], []
        for finding, digest in zip(findings, prints):
            key = (finding.rule, finding.path, digest)
            if key in known:
                matched.add(key)
                baselined.append(finding)
            else:
                fresh.append(finding)
        stale = [
            entry
            for entry in self.entries
            if (entry["rule"], entry["path"], entry["fingerprint"]) not in matched
        ]
        return fresh, baselined, stale


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------
def format_human(result: LintResult, *, baselined: int = 0) -> str:
    lines = [finding.format() for finding in result.findings]
    lines.extend(f"error: {message}" for message in result.errors)
    tail = (
        f"{len(result.findings)} finding(s) across {result.files} file(s)"
    )
    if baselined:
        tail += f" ({baselined} baselined)"
    lines.append(tail if result.findings or result.errors else f"clean: {tail}")
    return "\n".join(lines)


def report_json(
    result: LintResult,
    *,
    baselined: "Sequence[Finding]" = (),
    stale: "Sequence[dict]" = (),
) -> dict:
    """The ``repro/lint-report/v1`` document."""
    return {
        "schema": LINT_REPORT_V1,
        "files": result.files,
        "clean": result.clean and not stale,
        "findings": [finding.as_dict() for finding in result.findings],
        "baselined": [finding.as_dict() for finding in baselined],
        "stale_baseline": list(stale),
        "errors": list(result.errors),
    }
