"""Determinism rules: RNG discipline (R001) and wall-clock hygiene (R002).

The repo's reproducibility contract is that every random draw flows
from a :class:`numpy.random.SeedSequence`-derived value with
shard-layout-independent keys (bit-identical merges for any
``num_workers``) and that nothing on a deterministic path reads the
wall clock except through an injectable-clock parameter (the pattern
``repro.service`` uses: ``clock=time.monotonic`` as a *default value*,
with every read going through ``self.clock()``).  Both rules are
purely syntactic — they flag *calls*, so referencing ``time.monotonic``
as an injectable default stays legal while calling it inline does not.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .framework import FileContext, Finding, LintRule, register_rule

__all__ = ["RngDiscipline", "WallClockInDeterministicPath"]


def _is_test_or_example(ctx: FileContext) -> bool:
    path = ctx.path.as_posix()
    name = ctx.path.name
    return (
        "/tests/" in path
        or "/examples/" in path
        or name.startswith("test_")
        or name == "conftest.py"
    )


#: Legacy global-state numpy RNG APIs: banned outright (they read or
#: mutate the process-wide generator, invisible to SeedSequence keying).
_LEGACY_NUMPY = frozenset(
    f"numpy.random.{name}"
    for name in (
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "standard_normal",
        "exponential",
        "poisson",
        "RandomState",
        "get_state",
        "set_state",
    )
)

#: Paths (relative to the repro package) where ``default_rng`` must be
#: keyed *directly* by a ``SeedSequence(...)`` spawn key — the
#: shard-layout-independence contract the PR 6 grep audit enforced.
_STRICT_SEED_ZONES = ("topology/",)


@register_rule
class RngDiscipline(LintRule):
    """R001: every RNG must derive from a SeedSequence-keyed seed."""

    id = "R001"
    name = "rng-discipline"
    description = (
        "no unseeded default_rng() / legacy np.random.* / stdlib random.* "
        "outside tests and examples; topology randomness must be keyed by "
        "SeedSequence spawn keys"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return not _is_test_or_example(ctx)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        strict = ctx.pkg_rel.startswith(_STRICT_SEED_ZONES)
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.call_name(node)
            if resolved is None or ctx.is_suppressed(self, node):
                continue
            if resolved == "numpy.random.default_rng":
                if not node.args and not node.keywords:
                    yield self.finding(
                        ctx,
                        node,
                        "unseeded default_rng() draws OS entropy — seed it "
                        "from a SeedSequence-derived value so runs reproduce",
                    )
                elif strict and not self._seed_sequence_arg(ctx, node):
                    yield self.finding(
                        ctx,
                        node,
                        "default_rng in topology/ must be keyed directly by a "
                        "SeedSequence(...) spawn key (shard-layout-independent "
                        "randomness; see TopologyRuntime._ue_rng)",
                    )
            elif resolved in _LEGACY_NUMPY:
                yield self.finding(
                    ctx,
                    node,
                    f"legacy global-state RNG API {resolved}() — use a "
                    "Generator passed in from a SeedSequence-derived seed",
                )
            elif resolved.startswith("random.") and resolved.count(".") == 1:
                yield self.finding(
                    ctx,
                    node,
                    f"stdlib {resolved}() uses hidden global state — use a "
                    "numpy Generator seeded from a SeedSequence",
                )

    @staticmethod
    def _seed_sequence_arg(ctx: FileContext, node: ast.Call) -> bool:
        if len(node.args) != 1 or node.keywords:
            return False
        arg = node.args[0]
        if not isinstance(arg, ast.Call):
            return False
        resolved = ctx.call_name(arg)
        return resolved is not None and resolved.endswith("SeedSequence")


#: Wall-clock reads, canonical dotted names after alias resolution.
_WALLCLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.localtime",
        "time.gmtime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Packages whose results must be a pure function of (inputs, seed).
_DETERMINISTIC_ZONES = ("core/", "workload/", "topology/", "validate/")


@register_rule
class WallClockInDeterministicPath(LintRule):
    """R002: no inline wall-clock reads in deterministic packages."""

    id = "R002"
    name = "wallclock-in-deterministic-path"
    description = (
        "time.time/monotonic/perf_counter and datetime.now are forbidden in "
        "core/, workload/, topology/ and validate/ except through the "
        "injectable-clock pattern (clock parameter defaulting to the "
        "function reference, reads via clock())"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.pkg_rel.startswith(_DETERMINISTIC_ZONES) and not (
            _is_test_or_example(ctx)
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.call_name(node)
            if resolved in _WALLCLOCK and not ctx.is_suppressed(self, node):
                yield self.finding(
                    ctx,
                    node,
                    f"wall-clock call {resolved}() in a deterministic path — "
                    "inject the clock (parameter defaulting to "
                    f"{resolved}, call through the parameter) or justify "
                    "with an inline allow",
                )
