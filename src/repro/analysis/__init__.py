"""Static analysis of the repo's own contracts (``repro lint``).

The pipeline's fidelity claims rest on invariants tests can only
spot-check: SeedSequence-keyed randomness (bit-identical merges for any
``num_workers``), injectable clocks in deterministic paths, vectorized
hot paths, fork-safe module state, registered schema strings, and
audited conservation-invariant mutators.  This package turns those
conventions into machine-checked AST lint rules:

======  ==============================  =======================================
id      name                            contract
======  ==============================  =======================================
R001    rng-discipline                  seeds flow from SeedSequence-derived
                                        values; no unseeded/legacy RNG APIs
R002    wallclock-in-deterministic-path no inline wall-clock reads in core/,
                                        workload/, topology/, validate/
R003    hot-path-purity                 ``@hot_path`` kernels stay vectorized
R004    fork-safety                     no unregistered mutable module state in
                                        fork-target modules
R005    schema-registry                 ``repro/<name>/v<N>`` strings come from
                                        :mod:`repro.analysis.schemas`
R006    invariant-guard                 guarded counters move only in the
                                        audited mutator set
======  ==============================  =======================================

This package's import surface is deliberately stdlib-only so any module
(including ``repro.obs.registry``) can import the schema table without
cycles; the lint machinery itself loads lazily.
"""

from __future__ import annotations

from .hotpath import HOT_PATH_MANIFEST, hot_path
from .schemas import (
    FIDELITY_SCORECARD_V1,
    LINT_BASELINE_V1,
    LINT_REPORT_V1,
    METRICS_V1,
    PIPELINE_PROFILE_V1,
    SCHEMAS,
    SERVICE_STATUS_V2,
)

__all__ = [
    "hot_path",
    "HOT_PATH_MANIFEST",
    "SCHEMAS",
    "METRICS_V1",
    "SERVICE_STATUS_V2",
    "FIDELITY_SCORECARD_V1",
    "PIPELINE_PROFILE_V1",
    "LINT_REPORT_V1",
    "LINT_BASELINE_V1",
    # lazily loaded lint machinery:
    "Finding",
    "LintRule",
    "Baseline",
    "run_lint",
    "all_rules",
    "select_rules",
    "available_rule_names",
    "register_rule",
    "lint_main",
]

_LAZY = {
    "Finding": "framework",
    "LintRule": "framework",
    "Baseline": "framework",
    "run_lint": "framework",
    "all_rules": "framework",
    "select_rules": "framework",
    "available_rule_names": "framework",
    "register_rule": "framework",
    "lint_main": "runner",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
