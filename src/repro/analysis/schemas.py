"""The single registry of ``repro/<name>/v<N>`` schema version strings.

Every versioned JSON document the pipeline emits — metrics snapshots,
service status lines, fidelity scorecards, pipeline profiles, and the
linter's own reports — stamps a schema tag so downstream consumers can
evolve safely.  Those tags are *contracts*: a producer and its consumers
must agree on the exact string, and bumping a version is a deliberate,
reviewed act.  This module is the one place the strings live; every
producer/consumer imports its constant from here, and the
``schema-registry`` lint rule (R005) flags any ad-hoc
``repro/<name>/v<N>`` literal anywhere else under ``src/repro``.

Adding a schema
---------------
1. Define the constant here and add it to :data:`SCHEMAS`.
2. Import it at the producer and consumer sites.
3. Document the payload shape next to the producer (the convention the
   existing schemas follow: the module that writes the document owns
   the shape documentation).
"""

from __future__ import annotations

__all__ = [
    "METRICS_V1",
    "SERVICE_STATUS_V2",
    "FIDELITY_SCORECARD_V1",
    "PIPELINE_PROFILE_V1",
    "LINT_REPORT_V1",
    "LINT_BASELINE_V1",
    "SCHEMAS",
]

#: Metrics registry snapshots (``repro.obs.registry.MetricsRegistry``).
METRICS_V1 = "repro/metrics/v1"

#: Service status JSONL lines (``repro.service.status.ServiceStatus``).
SERVICE_STATUS_V2 = "repro/service-status/v2"

#: Fidelity gate scorecards (``repro.validate.scorecard.FidelityScorecard``).
FIDELITY_SCORECARD_V1 = "repro/fidelity-scorecard/v1"

#: Stage-level pipeline profiles (``repro.obs.profile.PipelineProfile``).
PIPELINE_PROFILE_V1 = "repro/pipeline-profile/v1"

#: ``repro lint --json`` reports (``repro.analysis.framework``).
LINT_REPORT_V1 = "repro/lint-report/v1"

#: Committed lint baselines of grandfathered findings.
LINT_BASELINE_V1 = "repro/lint-baseline/v1"

#: Every registered schema, keyed by a short name.  The round-trip test
#: in ``tests/analysis`` asserts each writer emits exactly its entry.
SCHEMAS: dict[str, str] = {
    "metrics": METRICS_V1,
    "service-status": SERVICE_STATUS_V2,
    "fidelity-scorecard": FIDELITY_SCORECARD_V1,
    "pipeline-profile": PIPELINE_PROFILE_V1,
    "lint-report": LINT_REPORT_V1,
    "lint-baseline": LINT_BASELINE_V1,
}
