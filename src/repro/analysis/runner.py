"""The ``repro lint`` command: path collection, baseline, reporting.

Exit codes: 0 clean, 1 findings (or stale baseline entries, or
unparseable files), 2 usage errors (unknown rule, bad baseline file).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from .framework import (
    Baseline,
    all_rules,
    format_human,
    report_json,
    run_lint,
    select_rules,
)

__all__ = ["lint_main"]


def _default_paths() -> list[Path]:
    """The repro package itself — `repro lint` with no paths lints the tree."""
    return [Path(__file__).resolve().parent.parent]


def lint_main(
    paths=(),
    *,
    rules=None,
    json_out: "str | None" = None,
    baseline: "str | None" = None,
    write_baseline: bool = False,
    list_rules: bool = False,
    out=None,
) -> int:
    out = sys.stdout if out is None else out
    if list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.name:<32} {rule.description}", file=out)
        return 0
    try:
        active = select_rules(rules)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    result = run_lint(list(paths) or _default_paths(), active)

    baselined: list = []
    stale: list = []
    if baseline is not None and write_baseline:
        Baseline.from_findings(result.findings, result.line_text).save(baseline)
        print(
            f"baseline of {len(result.findings)} finding(s) written to "
            f"{baseline}",
            file=out,
        )
        return 0
    if baseline is not None:
        try:
            loaded = Baseline.load(baseline)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"error: cannot load baseline {baseline}: {exc}", file=sys.stderr)
            return 2
        fresh, baselined, stale = loaded.apply(result.findings, result.line_text)
        result.findings = fresh

    if json_out is not None:
        payload = report_json(result, baselined=baselined, stale=stale)
        text = json.dumps(payload, indent=2)
        if json_out == "-":
            print(text, file=out)
        else:
            Path(json_out).write_text(text + "\n")
            print(f"lint report written to {json_out}", file=out)
    else:
        print(format_human(result, baselined=len(baselined)), file=out)
        for entry in stale:
            print(
                f"stale baseline entry: {entry['path']} {entry['rule']} "
                f"({entry.get('message', '')}) — finding is gone, remove it "
                "from the baseline",
                file=out,
            )
    return 0 if result.clean and not stale else 1
