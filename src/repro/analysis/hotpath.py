"""Hot-path purity markers consumed by the ``hot-path-purity`` lint rule.

The columnar pipeline's throughput rests on a handful of vectorized
kernels staying vectorized: a reintroduced per-event Python loop dies
silently — everything still passes, it is just 10-30x slower (the exact
regression PR 9 removed).  Two mechanisms put a function under the
rule's watch:

* decorate it with :func:`hot_path` (preferred for new kernels — the
  contract travels with the code); or
* list it in :data:`HOT_PATH_MANIFEST` (for kernels whose modules
  should not import this package, or to enforce the contract on code
  you don't own).

Within a watched function the rule flags ``for``/``while`` loops,
list-``append`` accumulation inside loops, and per-iteration object
construction.  Loops that are genuinely *not* per-event — per-shard
loops bounded by the worker count, per-position steps vectorized across
all streams — carry an inline ``# repro-lint: allow[hot-path-purity]``
with a one-line justification; the suppression covers the loop body.
"""

from __future__ import annotations

from typing import Callable, TypeVar

__all__ = ["hot_path", "HOT_PATH_MANIFEST"]

F = TypeVar("F", bound=Callable)

#: Attribute set on functions marked with :func:`hot_path`.
HOT_PATH_ATTR = "__repro_hot_path__"


def hot_path(fn: F) -> F:
    """Mark ``fn`` as a vectorized hot-path kernel (zero runtime cost).

    The marker is purely declarative: the lint rule recognises the
    decorator *syntactically* (no import is executed during linting),
    and at runtime the function is returned unchanged apart from a
    truthy ``__repro_hot_path__`` attribute for introspection.
    """
    try:
        setattr(fn, HOT_PATH_ATTR, True)
    except (AttributeError, TypeError):  # staticmethod and friends
        pass
    return fn


#: ``(path suffix, qualified function name)`` pairs under the rule's
#: watch without a decorator.  Paths are posix-style suffixes matched
#: against the linted file's path; qualified names are dotted
#: ``Class.method`` (or bare function) names.
HOT_PATH_MANIFEST: tuple[tuple[str, str], ...] = (
    # The incremental columnar merge: the service hot path.
    ("service/merge.py", "ChunkMerger.pop_ready_chunks"),
    # The vectorized conformance replay kernels (position-stepped
    # across all active streams at once).
    ("validate/oracle.py", "TransitionOracle.step_grouped"),
    ("validate/oracle.py", "TransitionOracle._validate_padded"),
    ("validate/oracle.py", "TransitionOracle._validate_grouped"),
)
