"""R005 schema-registry: versioned schema strings come from one table.

``repro/<name>/v<N>`` tags are producer/consumer contracts; a typo'd or
drifting literal at one site breaks round-trips silently.  Every such
string must be the constant from :mod:`repro.analysis.schemas` — the
rule flags any matching literal anywhere else under ``src/repro``
(docstrings excepted: documentation may *mention* a schema).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from .framework import FileContext, Finding, LintRule, register_rule

__all__ = ["SchemaRegistry"]

_SCHEMA_STRING = re.compile(r"^repro/[a-z0-9_-]+/v\d+$")

#: The one module allowed to spell the strings out.
_TABLE_MODULE = "analysis/schemas.py"


@register_rule
class SchemaRegistry(LintRule):
    """R005: no ad-hoc ``repro/<name>/v<N>`` literals outside the table."""

    id = "R005"
    name = "schema-registry"
    description = (
        "every repro/<name>/v<N> schema string must come from the "
        "repro.analysis.schemas constant table"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.pkg_rel != _TABLE_MODULE

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        docstrings = self._docstring_nodes(ctx)
        for node in ctx.walk():
            if (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and _SCHEMA_STRING.match(node.value)
                and node not in docstrings
                and not ctx.is_suppressed(self, node)
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"ad-hoc schema string {node.value!r} — import the "
                    "constant from repro.analysis.schemas so producers and "
                    "consumers cannot drift",
                )

    @staticmethod
    def _docstring_nodes(ctx: FileContext) -> set:
        nodes = set()
        for node in ctx.walk():
            if isinstance(
                node,
                (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef),
            ):
                body = getattr(node, "body", [])
                if (
                    body
                    and isinstance(body[0], ast.Expr)
                    and isinstance(body[0].value, ast.Constant)
                    and isinstance(body[0].value.value, str)
                ):
                    nodes.add(body[0].value)
        return nodes
