"""Command-line interface: ``cpt-gpt <command>`` (or ``python -m repro``).

Built on the :mod:`repro.api` facade — every command goes through the
:class:`~repro.api.Session` / registry surface rather than touching the
backends directly.

Commands
--------
``synthesize``    generate a synthetic operator trace (the data substrate)
``train``         train a CPT-GPT package on a JSONL trace
``generate``      sample streams from any saved generator artifact
``evaluate``      fidelity report of a synthesized trace vs a real one
``experiments``   run the paper's tables/figures at a chosen scale
``workload``      stream a composite workload into the MCN simulator
``serve``         run a workload as an always-on paced traffic service
``topology``      inspect multi-cell topology scenarios (cells, chaos)
``fidelity-gate`` threshold-checked acceptance gate (the CI quality gate)
``lint``          AST-based contract linter (determinism, fork-safety,
                  hot-path purity, schema discipline)
``registry``      list registered generators, scenarios, workloads and
                  topologies
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .api import (
    ScenarioSpec,
    Session,
    available_generators,
    available_scenarios,
    available_workloads,
    get_scenario,
    load_generator,
)
from .core import CPTGPTConfig, TrainingConfig
from .experiments import ALL_EXPERIMENTS, MEDIUM, SMOKE, Workbench, run_all
from .metrics import fidelity_report
from .trace import load_jsonl, save_jsonl
from .trace.synthetic import generate_trace

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cpt-gpt",
        description="CPT-GPT reproduction: cellular control-plane traffic generation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("synthesize", help="generate a synthetic operator trace")
    p.add_argument("output", help="output JSONL path")
    p.add_argument("--ues", type=int, default=500)
    p.add_argument("--device-type", default="phone",
                   choices=("phone", "connected_car", "tablet"))
    p.add_argument("--hour", type=int, default=10)
    p.add_argument("--technology", default="4G", choices=("4G", "5G"))
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("train", help="train a CPT-GPT package on a JSONL trace")
    p.add_argument("trace", help="training trace (JSONL)")
    p.add_argument("output", help="output package path (.npz)")
    p.add_argument("--epochs", type=int, default=20)
    p.add_argument("--batch-size", type=int, default=48)
    p.add_argument("--learning-rate", type=float, default=3e-3)
    p.add_argument("--d-model", type=int, default=64)
    p.add_argument("--layers", type=int, default=2)
    p.add_argument("--heads", type=int, default=4)
    p.add_argument("--d-ff", type=int, default=160)
    p.add_argument("--max-len", type=int, default=None,
                   help="maximum stream length (default: 192, or the "
                        "paper's 500 with --paper)")
    p.add_argument("--paper", action="store_true",
                   help="use the published §5.1 configuration (~725K params); "
                        "overrides the model-shape flags")
    p.add_argument("--device-type", default="phone")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--float32-train", action="store_true",
                   help="fit in the fused trainer's float32 arena fast mode")
    p.add_argument("--grad-shards", type=int, default=1,
                   help="fixed gradient shards per optimizer step "
                        "(deterministic data-parallel fit)")
    p.add_argument("--train-workers", type=int, default=1,
                   help="worker processes evaluating gradient shards "
                        "(needs --grad-shards > 1; never changes the result)")
    p.add_argument("--checkpoint", default=None,
                   help="write fused-trainer checkpoints to this path")
    p.add_argument("--checkpoint-every", type=int, default=None,
                   help="checkpoint every N optimizer steps (with --checkpoint)")
    p.add_argument("--resume", default=None,
                   help="resume training from a trainer checkpoint "
                        "(--epochs is the total target, not extra epochs)")

    p = sub.add_parser("generate", help="sample streams from a saved generator")
    p.add_argument("package", help="trained artifact (.npz or .json)")
    p.add_argument("output", help="output JSONL path")
    p.add_argument("--count", type=int, default=1000)
    p.add_argument("--start-time", type=float, default=0.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1,
                   help="shard generation across N worker processes "
                        "(deterministic given --seed)")
    p.add_argument("--float32", action="store_true",
                   help="use the reduced-precision inference fast path "
                        "(CPT-GPT packages only)")

    p = sub.add_parser("evaluate", help="fidelity of a synthesized trace vs real")
    p.add_argument("real", help="real trace (JSONL)")
    p.add_argument("synthesized", help="synthesized trace (JSONL)")

    p = sub.add_parser("experiments", help="run the paper's tables/figures")
    p.add_argument("--scale", default="smoke", choices=("smoke", "medium"))
    p.add_argument("--only", nargs="*", default=None,
                   help=f"subset of {sorted(ALL_EXPERIMENTS)}")

    p = sub.add_parser(
        "workload", help="stream a composite workload into the MCN simulator"
    )
    p.add_argument("name", help="registered workload (see the registry command)")
    p.add_argument("--scale", type=float, default=1.0,
                   help="scale every cohort's UE count by this factor")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes for shard generation "
                        "(never changes the timeline, only wall time)")
    p.add_argument("--backend", default=None,
                   help="override every cohort's generator backend")
    p.add_argument("--sim-workers", type=int, default=4,
                   help="control-plane workers in the MCN simulator")
    p.add_argument("--autoscale", action="store_true",
                   help="also drive the target-utilization autoscaler")
    p.add_argument("--window", type=float, default=300.0,
                   help="autoscaling window in seconds")
    p.add_argument("--topology", default=None,
                   help="place the population on a registered topology "
                        "scenario (overrides the workload's default)")
    p.add_argument("--chaos", default=None,
                   help="chaos schedule override; 'off' disables the "
                        "topology's built-in schedule")
    p.add_argument("--metrics-json", default=None,
                   help="enable instrumentation and write the metrics "
                        "registry to this path on exit")

    p = sub.add_parser(
        "profile",
        help="stage-level wall-time profile of a workload run",
    )
    p.add_argument("name", help="registered workload (see the registry command)")
    p.add_argument("--scale", type=float, default=1.0,
                   help="scale every cohort's UE count by this factor")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes for shard generation")
    p.add_argument("--backend", default=None,
                   help="override every cohort's generator backend")
    p.add_argument("--topology", default=None,
                   help="place the population on a registered topology "
                        "scenario (overrides the workload's default)")
    p.add_argument("--chaos", default=None,
                   help="chaos schedule override; 'off' disables the "
                        "topology's built-in schedule")
    p.add_argument("--sim-workers", type=int, default=4,
                   help="control-plane workers in the MCN simulator")
    p.add_argument("--no-simulate", action="store_true",
                   help="skip the MCN simulator stage")
    p.add_argument("--no-validate", action="store_true",
                   help="skip the oracle/stats validators")
    p.add_argument("--chunk-events", type=int, default=65536,
                   help="events per merged columnar chunk on the "
                        "merge -> simulate hot path")
    p.add_argument("--json", default=None,
                   help="write the PipelineProfile JSON to this path")

    p = sub.add_parser(
        "serve",
        help="run a workload as an always-on paced traffic service",
    )
    p.add_argument("name", help="registered workload (see the registry command)")
    p.add_argument("--scale", type=float, default=1.0,
                   help="scale every cohort's UE count by this factor")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=2,
                   help="supervised producer worker processes "
                        "(0 = generate inline, no forking)")
    p.add_argument("--backend", default=None,
                   help="override every cohort's generator backend")
    p.add_argument("--topology", default=None,
                   help="place the population on a registered topology "
                        "scenario (overrides the workload's default)")
    p.add_argument("--chaos", default=None,
                   help="chaos schedule override; 'off' disables the "
                        "topology's built-in schedule")
    p.add_argument("--speed", type=float, default=1.0,
                   help="replay speed multiplier over event time "
                        "(inf = as fast as possible)")
    p.add_argument("--loop", action="store_true",
                   help="repeat the timeline when exhausted (cycle-tagged "
                        "UE ids, continuous schedule)")
    p.add_argument("--duration", type=float, default=None,
                   help="stop after this many wall seconds")
    p.add_argument("--max-events", type=int, default=None,
                   help="stop after this many consumed events")
    p.add_argument("--chunk-events", type=int, default=4096,
                   help="events per producer chunk (cursor granularity)")
    p.add_argument("--queue-chunks", type=int, default=8,
                   help="bounded chunks per worker handoff queue")
    p.add_argument("--ring-events", type=int, default=65536,
                   help="bounded merged-event ring capacity")
    p.add_argument("--high-watermark", type=float, default=0.75,
                   help="ring fraction that throttles producers")
    p.add_argument("--low-watermark", type=float, default=0.25,
                   help="ring fraction that releases the throttle")
    p.add_argument("--degrade-after", type=float, default=2.0,
                   help="seconds of sustained backpressure before load "
                        "shedding begins (inf disables)")
    p.add_argument("--shed-order", default=None,
                   help="comma-separated cohort names, first shed first "
                        "(default: population order)")
    p.add_argument("--max-burst", type=int, default=20000,
                   help="overdue events released back-to-back before the "
                        "schedule re-anchors and declares slippage")
    p.add_argument("--kill-worker", action="append", default=None,
                   metavar="N@T",
                   help="fault: SIGKILL producer worker N at elapsed T "
                        "seconds (repeatable)")
    p.add_argument("--stall-consumer", action="append", default=None,
                   metavar="T:D",
                   help="fault: stop consuming for D seconds at elapsed T "
                        "(repeatable)")
    p.add_argument("--burst", action="append", default=None,
                   metavar="T:F:D",
                   help="fault: multiply replay speed by F for D seconds "
                        "at elapsed T (repeatable)")
    p.add_argument("--simulate", action="store_true",
                   help="drive delivered events through the MCN simulator")
    p.add_argument("--sim-workers", type=int, default=4,
                   help="control-plane workers in the MCN simulator")
    p.add_argument("--no-validate", action="store_true",
                   help="skip the rolling fidelity gate")
    p.add_argument("--status-every", type=float, default=5.0,
                   help="seconds between status snapshots (0 = final only)")
    p.add_argument("--status-json", default=None,
                   help="append every status snapshot to this file as "
                        "JSON lines")
    p.add_argument("--heartbeat-timeout", type=float, default=5.0,
                   help="stale-heartbeat seconds before a worker counts "
                        "as hung")
    p.add_argument("--metrics-json", default=None,
                   help="enable instrumentation and write the metrics "
                        "registry to this path on exit (status snapshots "
                        "also carry a metrics field)")
    p.add_argument("--metrics-port", type=int, default=None,
                   help="enable instrumentation and serve /metrics "
                        "(Prometheus text) and /metrics.json on this "
                        "local port while running")

    p = sub.add_parser(
        "topology", help="inspect multi-cell topology scenarios"
    )
    p.add_argument("name", nargs="?", default=None,
                   help="registered topology scenario (default: list all)")

    p = sub.add_parser(
        "fidelity-gate",
        help="statistical acceptance gate on generated traffic (CI quality gate)",
    )
    p.add_argument("source", nargs="?", default="phone-evening",
                   help="registered scenario or workload name")
    p.add_argument("--backend", default=None,
                   help="generator backend to synthesize with (default: "
                        "smm-1 for scenarios; each cohort's own backend "
                        "for workloads)")
    p.add_argument("--count", type=int, default=None,
                   help="streams to generate (scenario sources only)")
    p.add_argument("--scale", type=float, default=1.0,
                   help="population scale factor (workload sources only)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--report", default=None,
                   help="write the scorecard JSON to this path")
    p.add_argument("--skip-memorization", action="store_true",
                   help="skip the n-gram memorization check")
    p.add_argument("--resamples", type=int, default=200,
                   help="bootstrap resamples for the KS confidence intervals")
    p.add_argument("--max-event-violations", type=float, default=None,
                   help="override the event-violation-rate ceiling")
    p.add_argument("--max-stream-violations", type=float, default=None,
                   help="override the stream-violation-rate ceiling")
    p.add_argument("--max-jsd", type=float, default=None,
                   help="override both JSD ceilings")
    p.add_argument("--max-ks", type=float, default=None,
                   help="override both KS ceilings")
    p.add_argument("--max-flow-jsd", type=float, default=None,
                   help="override only the flow-length JSD ceiling "
                        "(takes precedence over --max-jsd)")
    p.add_argument("--max-memorization", type=float, default=None,
                   help="override the memorization repeat-fraction ceiling")
    p.add_argument("--topology", default=None,
                   help="gate the workload on this topology scenario "
                        "(mobility + chaos injections included)")
    p.add_argument("--chaos", default=None,
                   help="chaos schedule override; 'off' disables the "
                        "topology's built-in schedule")
    p.add_argument("--metrics-json", default=None,
                   help="enable instrumentation and write the metrics "
                        "registry to this path on exit")

    p = sub.add_parser(
        "lint",
        help="AST-based contract linter (determinism, fork-safety, "
             "hot-path purity, schema discipline)",
    )
    p.add_argument("paths", nargs="*",
                   help="files or directories to lint (default: the "
                        "installed repro package)")
    p.add_argument("--rule", action="append", default=None, dest="rules",
                   metavar="NAME",
                   help="run only this rule (name or id; repeatable)")
    p.add_argument("--json", nargs="?", const="-", default=None,
                   metavar="PATH",
                   help="emit the repro/lint-report/v1 JSON document "
                        "(to PATH, or stdout with no argument)")
    p.add_argument("--baseline", default=None, metavar="PATH",
                   help="committed baseline of grandfathered findings; "
                        "matched findings are filtered, stale entries fail "
                        "the run")
    p.add_argument("--write-baseline", action="store_true",
                   help="with --baseline: record the current findings and "
                        "exit 0")
    p.add_argument("--list-rules", action="store_true",
                   help="list the registered rules and exit")

    sub.add_parser(
        "registry",
        help="list registered generators, scenarios, workloads and topologies",
    )
    return parser


def _cmd_synthesize(args) -> int:
    scenario = ScenarioSpec(
        name="cli-synthesize",
        num_ues=args.ues,
        device_type=args.device_type,
        hour=args.hour,
        technology=args.technology,
        seed=args.seed,
    )
    trace = generate_trace(scenario.trace_config())
    save_jsonl(trace, args.output)
    print(f"wrote {len(trace)} streams / {trace.total_events} events to {args.output}")
    return 0


def _model_config(args, num_event_types: int) -> CPTGPTConfig:
    """The CPT-GPT configuration the ``train`` flags describe."""
    if args.paper:
        max_len = 500 if args.max_len is None else args.max_len
        return CPTGPTConfig.paper(num_event_types=num_event_types, max_len=max_len)
    return CPTGPTConfig(
        num_event_types=num_event_types,
        d_model=args.d_model,
        num_layers=args.layers,
        num_heads=args.heads,
        d_ff=args.d_ff,
        head_hidden=2 * args.d_model,
        max_len=192 if args.max_len is None else args.max_len,
    )


def _cmd_train(args) -> int:
    dataset = load_jsonl(args.trace)
    scenario = ScenarioSpec(
        name="cli-train",
        device_type=args.device_type,
        technology=dataset.infer_technology(),
        seed=args.seed,
    )
    session = Session(scenario).use_dataset(dataset)
    session.fit(
        "cpt-gpt",
        config=_model_config(args, len(scenario.vocabulary)),
        training=TrainingConfig(
            epochs=args.epochs,
            batch_size=args.batch_size,
            learning_rate=args.learning_rate,
            seed=args.seed,
            grad_shards=args.grad_shards,
        ),
        init_seed=args.seed,
        float32_train=args.float32_train,
        num_workers=args.train_workers,
        resume=args.resume,
        checkpoint=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
    )
    session.save(args.output)
    generator = session.generator()
    result = generator.last_training_result
    print(
        f"trained {generator.unwrap().model.num_parameters()} params in "
        f"{result.wall_time_seconds:.1f}s (final loss {result.final_loss:.3f}); "
        f"saved to {args.output}"
    )
    return 0


def _cmd_generate(args) -> int:
    generator = load_generator(args.package)
    if args.float32:
        if not hasattr(generator, "float32"):
            print(
                f"warning: {generator.name} has no float32 fast path; "
                "generating at full precision",
                file=sys.stderr,
            )
        else:
            generator.float32 = True
    trace = generator.generate(
        args.count,
        np.random.default_rng(args.seed),
        start_time=args.start_time,
        num_workers=args.workers,
    )
    save_jsonl(trace, args.output)
    print(f"wrote {len(trace)} streams / {trace.total_events} events to {args.output}")
    return 0


def _cmd_evaluate(args) -> int:
    real = load_jsonl(args.real)
    synthesized = load_jsonl(args.synthesized)
    scenario = ScenarioSpec(
        name="cli-evaluate", technology=real.infer_technology()
    )
    report = fidelity_report(
        real,
        synthesized,
        scenario.machine_spec,
        dominant_events=scenario.dominant_events,
    )
    print(report.summary())
    return 0


def _cmd_experiments(args) -> int:
    scale = SMOKE if args.scale == "smoke" else MEDIUM
    bench = Workbench(scale)
    print(run_all(bench, args.only))
    return 0


def _metrics_enabled(args) -> bool:
    """Turn on instrumentation when any --metrics-* flag was given."""
    from . import obs

    wants = bool(getattr(args, "metrics_json", None)) or (
        getattr(args, "metrics_port", None) is not None
    )
    if wants:
        obs.metrics().reset()
        obs.enable()
    return wants


def _finish_metrics(args, enabled: bool) -> None:
    """Write --metrics-json (if asked) and restore the disabled state."""
    from . import obs

    if not enabled:
        return
    if getattr(args, "metrics_json", None):
        obs.metrics().write_json(args.metrics_json)
        print(f"metrics written to {args.metrics_json}")
    obs.disable()


def _cmd_workload(args) -> int:
    from .workload import Workload, get_workload

    metrics_on = _metrics_enabled(args)
    population = get_workload(args.name)
    if args.scale != 1.0:
        population = population.scaled(args.scale)
    engine = Workload(
        population,
        seed=args.seed,
        num_workers=args.workers,
        backend=args.backend,
        topology=args.topology,
        chaos=args.chaos,
    )
    print(population.summary())
    if engine.topology is not None:
        print(engine.topology.summary())
    # With --autoscale both consumers need the timeline; build it once
    # (a list at CLI scale) instead of generating twice.
    events = list(engine.events()) if args.autoscale else None
    report = engine.simulate(workers=args.sim_workers, events=events)
    print(
        f"simulated {report.num_events} events over "
        f"{report.duration_seconds:.0f}s: throughput "
        f"{report.throughput_eps:.1f} ev/s | p50 "
        f"{report.latency_percentile(50):.2f} ms | p99 "
        f"{report.latency_percentile(99):.2f} ms | peak contexts "
        f"{report.peak_connected_contexts} | utilization "
        f"{report.utilization:.1%}"
    )
    if report.per_region:
        for region in sorted(report.per_region):
            sub = report.region(region)
            print(
                f"  region {region}: {sub.num_events} events | "
                f"p99 {sub.latency_percentile(99):.2f} ms | "
                f"peak contexts {sub.peak_connected_contexts} | "
                f"utilization {sub.utilization:.1%}"
            )
    if args.autoscale:
        trace = engine.autoscale(window_seconds=args.window, events=events)
        print(
            f"autoscale over {len(trace.workers)} x {args.window:.0f}s windows: "
            f"peak workers {trace.peak_workers}, "
            f"{trace.scaling_actions} scaling actions, "
            f"mean utilization {trace.mean_utilization:.1%}"
        )
    _finish_metrics(args, metrics_on)
    return 0


def _cmd_profile(args) -> int:
    from .obs import profiled
    from .validate import OracleValidator, StatsValidator
    from .workload import Workload, get_workload

    population = get_workload(args.name)
    if args.scale != 1.0:
        population = population.scaled(args.scale)
    engine = Workload(
        population,
        seed=args.seed,
        num_workers=args.workers,
        backend=args.backend,
        topology=args.topology,
        chaos=args.chaos,
    )
    print(population.summary())
    validators = ()
    if not args.no_validate:
        spec = population.cohorts[0].scenario.machine_spec
        validators = (OracleValidator(spec), StatsValidator(seed=args.seed))
    with profiled() as session:
        result = engine.run(
            validators=validators,
            simulate=not args.no_simulate,
            sim_workers=args.sim_workers,
            chunk_events=args.chunk_events,
        )
    profile = session.profile
    print()
    print(profile.table())
    print(f"{result.num_events} events end-to-end")
    if args.json:
        profile.save(args.json)
        print(f"profile written to {args.json}")
    return 0


def _cmd_serve(args) -> int:
    from .mcn import MCNSimulator
    from .service import DegradationPolicy, FaultPlan, TrafficService
    from .validate import RollingGate
    from .workload import Workload, get_workload

    metrics_on = _metrics_enabled(args)
    metrics_server = None
    if args.metrics_port is not None:
        from .obs import MetricsServer

        metrics_server = MetricsServer(args.metrics_port).start()
        print(f"metrics at {metrics_server.url}")
    population = get_workload(args.name)
    if args.scale != 1.0:
        population = population.scaled(args.scale)
    engine = Workload(
        population,
        seed=args.seed,
        backend=args.backend,
        topology=args.topology,
        chaos=args.chaos,
    )
    print(population.summary())
    if engine.topology is not None:
        print(engine.topology.summary())

    gate = (
        None
        if args.no_validate
        else RollingGate(population, seed=args.seed)
    )
    simulator = (
        MCNSimulator(
            workers=args.sim_workers,
            cost_model=population.cost_model,
            seed=args.seed,
            topology=(
                None if engine.topology is None else engine.topology.topology
            ),
            chaos=engine.chaos,
        )
        if args.simulate
        else None
    )
    shed_order = (
        tuple(name.strip() for name in args.shed_order.split(",") if name.strip())
        if args.shed_order
        else ()
    )
    service = TrafficService(
        engine,
        speed=args.speed,
        loop=args.loop,
        num_workers=args.workers,
        chunk_events=args.chunk_events,
        queue_chunks=args.queue_chunks,
        ring_events=args.ring_events,
        high_watermark=args.high_watermark,
        low_watermark=args.low_watermark,
        max_burst=args.max_burst,
        degradation=DegradationPolicy(
            degrade_after=args.degrade_after, shed_order=shed_order
        ),
        faults=FaultPlan.parse(
            kill_worker=args.kill_worker,
            stall_consumer=args.stall_consumer,
            burst=args.burst,
        ),
        gate=gate,
        simulator=simulator,
        heartbeat_timeout=args.heartbeat_timeout,
    )

    status_file = open(args.status_json, "a") if args.status_json else None

    def on_status(snapshot) -> None:
        print(snapshot.summary())
        if status_file is not None:
            status_file.write(snapshot.to_json_line() + "\n")
            status_file.flush()

    try:
        report = service.run(
            duration=args.duration,
            max_events=args.max_events,
            status_every=args.status_every or None,
            on_status=on_status,
        )
    except KeyboardInterrupt:
        print("\ninterrupted; producers torn down")
        return 130
    finally:
        if status_file is not None:
            status_file.close()
        if metrics_server is not None:
            metrics_server.stop()
        _finish_metrics(args, metrics_on)

    final = report.status
    print(
        f"service {final.state}: {final.delivered} delivered, "
        f"{final.shed_total} shed ({final.shed_episodes} episodes), "
        f"{final.slipped_events} slipped, accounting "
        f"{'exact' if final.accounted else 'VIOLATED'}"
    )
    for incident in final.incidents:
        print(f"  incident: {incident}")
    if report.scorecard is not None:
        print(report.scorecard.summary())
    if report.simulation is not None:
        sim = report.simulation
        print(
            f"simulated {sim.num_events} events: p50 "
            f"{sim.latency_percentile(50):.2f} ms | p99 "
            f"{sim.latency_percentile(99):.2f} ms | peak contexts "
            f"{sim.peak_connected_contexts}"
        )
    return 0 if report.clean else 1


def _cmd_topology(args) -> int:
    from .api import TOPOLOGIES, available_topologies

    names = available_topologies()  # registers the built-in presets
    if args.name is None:
        print("topologies:")
        for name in names:
            scenario = TOPOLOGIES.get(name)
            topo = scenario.topology
            print(
                f"  {name}  ({topo.num_cells} cells, "
                f"{len(topo.tracking_areas)} TAs, "
                f"{len(topo.regions)} regions, "
                f"{len(scenario.chaos.events)} chaos events)"
            )
        return 0
    print(TOPOLOGIES.get(args.name).summary())
    return 0


def _cmd_fidelity_gate(args) -> int:
    from dataclasses import replace

    from .validate import GateThresholds, run_gate

    metrics_on = _metrics_enabled(args)
    thresholds = GateThresholds()
    overrides = {}
    if args.max_event_violations is not None:
        overrides["max_event_violation_rate"] = args.max_event_violations
    if args.max_stream_violations is not None:
        overrides["max_stream_violation_rate"] = args.max_stream_violations
    if args.max_jsd is not None:
        overrides["max_interarrival_jsd"] = args.max_jsd
        overrides["max_flow_length_jsd"] = args.max_jsd
    if args.max_ks is not None:
        overrides["max_interarrival_ks"] = args.max_ks
        overrides["max_flow_length_ks"] = args.max_ks
    if args.max_flow_jsd is not None:
        overrides["max_flow_length_jsd"] = args.max_flow_jsd
    if args.max_memorization is not None:
        overrides["max_memorization"] = args.max_memorization
    if overrides:
        thresholds = replace(thresholds, **overrides)
    scorecard = run_gate(
        args.source,
        backend=args.backend,
        count=args.count,
        scale=args.scale,
        seed=args.seed,
        thresholds=thresholds,
        memorization=not args.skip_memorization,
        num_resamples=args.resamples,
        report_path=args.report,
        topology=args.topology,
        chaos=args.chaos,
    )
    print(scorecard.summary())
    if args.report:
        print(f"scorecard written to {args.report}")
    _finish_metrics(args, metrics_on)
    return 0 if scorecard.passed else 1


def _cmd_lint(args) -> int:
    from .analysis import lint_main

    return lint_main(
        args.paths,
        rules=args.rules,
        json_out=args.json,
        baseline=args.baseline,
        write_baseline=args.write_baseline,
        list_rules=args.list_rules,
    )


def _cmd_registry(args) -> int:
    from . import workload as _workload  # noqa: F401  (registers built-ins)
    from .api import TOPOLOGIES, WORKLOADS, available_topologies

    print("generators:")
    for name in available_generators():
        print(f"  {name}")
    print("scenarios:")
    for name in available_scenarios():
        spec = get_scenario(name)
        print(
            f"  {name}  ({spec.device_type}, {spec.technology}, "
            f"hour {spec.hour}, {spec.num_ues} UEs)"
        )
    print("workloads:")
    for name in available_workloads():
        population = WORKLOADS.get(name)
        cohorts = ", ".join(
            f"{c.num_ues}x{c.scenario.device_type}" for c in population.cohorts
        )
        print(
            f"  {name}  ({population.technology}, "
            f"{population.total_ues} UEs: {cohorts})"
        )
    print("topologies:")
    for name in available_topologies():
        scenario = TOPOLOGIES.get(name)
        topo = scenario.topology
        print(
            f"  {name}  ({topo.num_cells} cells, "
            f"{len(topo.tracking_areas)} TAs, {len(topo.regions)} regions, "
            f"{len(scenario.chaos.events)} chaos events)"
        )
    return 0


_COMMANDS = {
    "synthesize": _cmd_synthesize,
    "train": _cmd_train,
    "generate": _cmd_generate,
    "evaluate": _cmd_evaluate,
    "experiments": _cmd_experiments,
    "workload": _cmd_workload,
    "profile": _cmd_profile,
    "serve": _cmd_serve,
    "topology": _cmd_topology,
    "fidelity-gate": _cmd_fidelity_gate,
    "lint": _cmd_lint,
    "registry": _cmd_registry,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
