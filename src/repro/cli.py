"""Command-line interface: ``cpt-gpt <command>``.

Commands
--------
``synthesize``    generate a synthetic operator trace (the data substrate)
``train``         train a CPT-GPT package on a JSONL trace
``generate``      sample streams from a trained package
``evaluate``      fidelity report of a synthesized trace vs a real one
``experiments``   run the paper's tables/figures at a chosen scale
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .core import CPTGPT, CPTGPTConfig, GeneratorPackage, TrainingConfig, train
from .experiments import ALL_EXPERIMENTS, MEDIUM, SMOKE, Workbench, run_all
from .metrics import fidelity_report
from .statemachine import LTE_EVENTS
from .tokenization import StreamTokenizer
from .trace import SyntheticTraceConfig, generate_trace, load_jsonl, save_jsonl

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cpt-gpt",
        description="CPT-GPT reproduction: cellular control-plane traffic generation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("synthesize", help="generate a synthetic operator trace")
    p.add_argument("output", help="output JSONL path")
    p.add_argument("--ues", type=int, default=500)
    p.add_argument("--device-type", default="phone",
                   choices=("phone", "connected_car", "tablet"))
    p.add_argument("--hour", type=int, default=10)
    p.add_argument("--technology", default="4G", choices=("4G", "5G"))
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("train", help="train a CPT-GPT package on a JSONL trace")
    p.add_argument("trace", help="training trace (JSONL)")
    p.add_argument("output", help="output package path (.npz)")
    p.add_argument("--epochs", type=int, default=20)
    p.add_argument("--batch-size", type=int, default=48)
    p.add_argument("--learning-rate", type=float, default=3e-3)
    p.add_argument("--d-model", type=int, default=64)
    p.add_argument("--layers", type=int, default=2)
    p.add_argument("--heads", type=int, default=4)
    p.add_argument("--d-ff", type=int, default=160)
    p.add_argument("--max-len", type=int, default=192)
    p.add_argument("--device-type", default="phone")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("generate", help="sample streams from a trained package")
    p.add_argument("package", help="trained package (.npz)")
    p.add_argument("output", help="output JSONL path")
    p.add_argument("--count", type=int, default=1000)
    p.add_argument("--start-time", type=float, default=0.0)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("evaluate", help="fidelity of a synthesized trace vs real")
    p.add_argument("real", help="real trace (JSONL)")
    p.add_argument("synthesized", help="synthesized trace (JSONL)")

    p = sub.add_parser("experiments", help="run the paper's tables/figures")
    p.add_argument("--scale", default="smoke", choices=("smoke", "medium"))
    p.add_argument("--only", nargs="*", default=None,
                   help=f"subset of {sorted(ALL_EXPERIMENTS)}")
    return parser


def _cmd_synthesize(args) -> int:
    trace = generate_trace(
        SyntheticTraceConfig(
            num_ues=args.ues,
            device_type=args.device_type,
            hour=args.hour,
            technology=args.technology,
            seed=args.seed,
        )
    )
    save_jsonl(trace, args.output)
    print(f"wrote {len(trace)} streams / {trace.total_events} events to {args.output}")
    return 0


def _cmd_train(args) -> int:
    dataset = load_jsonl(args.trace)
    vocabulary = dataset.vocabulary if dataset.vocabulary is not None else LTE_EVENTS
    tokenizer = StreamTokenizer(vocabulary).fit(dataset)
    config = CPTGPTConfig(
        num_event_types=len(vocabulary),
        d_model=args.d_model,
        num_layers=args.layers,
        num_heads=args.heads,
        d_ff=args.d_ff,
        head_hidden=2 * args.d_model,
        max_len=args.max_len,
    )
    model = CPTGPT(config, np.random.default_rng(args.seed))
    result = train(
        model,
        dataset,
        tokenizer,
        TrainingConfig(
            epochs=args.epochs,
            batch_size=args.batch_size,
            learning_rate=args.learning_rate,
            seed=args.seed,
        ),
    )
    package = GeneratorPackage(
        model, tokenizer, dataset.initial_event_distribution(), args.device_type
    )
    package.save(args.output)
    print(
        f"trained {model.num_parameters()} params in "
        f"{result.wall_time_seconds:.1f}s (final loss {result.final_loss:.3f}); "
        f"saved to {args.output}"
    )
    return 0


def _cmd_generate(args) -> int:
    package = GeneratorPackage.load(args.package)
    trace = package.generate(
        args.count, np.random.default_rng(args.seed), start_time=args.start_time
    )
    save_jsonl(trace, args.output)
    print(f"wrote {len(trace)} streams / {trace.total_events} events to {args.output}")
    return 0


def _cmd_evaluate(args) -> int:
    real = load_jsonl(args.real)
    synthesized = load_jsonl(args.synthesized)
    report = fidelity_report(real, synthesized)
    print(report.summary())
    return 0


def _cmd_experiments(args) -> int:
    scale = SMOKE if args.scale == "smoke" else MEDIUM
    bench = Workbench(scale)
    print(run_all(bench, args.only))
    return 0


_COMMANDS = {
    "synthesize": _cmd_synthesize,
    "train": _cmd_train,
    "generate": _cmd_generate,
    "evaluate": _cmd_evaluate,
    "experiments": _cmd_experiments,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
