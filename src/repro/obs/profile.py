"""Stage-level pipeline profiling built on span aggregates.

:class:`PipelineProfile` folds the registry's span aggregates into the
canonical stage breakdown (generation / shape-warp / merge / ring /
simulate / oracle / gate), attributing each span's *self* time to the
stage named by its first dotted segment.  ``profiled()`` wraps any
block — a ``Workload.run``, a ``TrafficService`` session — enabling
instrumentation for its duration and producing the profile:

    with profiled() as prof:
        engine.run(validators=..., simulate=True)
    print(prof.profile.table())

``coverage`` is the fraction of the block's wall time the stage rows
account for; the acceptance bar for the city-day workload is >= 0.9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

import json

from . import registry as _registry
from ..analysis.schemas import PIPELINE_PROFILE_V1
from .registry import REGISTRY, MetricsRegistry

PROFILE_SCHEMA = PIPELINE_PROFILE_V1

#: span-name first segment -> canonical stage name
STAGE_OF_PREFIX = {
    "generate": "generation",
    "engine": "generation",
    "shape": "shape-warp",
    "merge": "merge",
    "ring": "ring",
    "pace": "ring",
    "service": "ring",
    "simulate": "simulate",
    "mcn": "simulate",
    "oracle": "oracle",
    "gate": "gate",
    "train": "train",
}

#: display order for the table; unknown stages append after these
STAGE_ORDER = (
    "generation", "shape-warp", "merge", "ring",
    "simulate", "oracle", "gate", "train",
)


def stage_of(span_name: str) -> str:
    prefix = span_name.split(".", 1)[0]
    return STAGE_OF_PREFIX.get(prefix, prefix)


@dataclass(frozen=True)
class StageRow:
    """One line of the breakdown: self wall time for a pipeline stage."""

    stage: str
    wall_seconds: float
    calls: int
    events: int

    @property
    def events_per_second(self) -> float:
        if self.wall_seconds <= 0 or not self.events:
            return 0.0
        return self.events / self.wall_seconds

    def to_dict(self) -> dict:
        return {
            "stage": self.stage,
            "wall_seconds": self.wall_seconds,
            "calls": self.calls,
            "events": self.events,
            "events_per_second": self.events_per_second,
        }


@dataclass
class PipelineProfile:
    """Stage-breakdown report for one profiled block."""

    total_seconds: float
    rows: list = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    schema: str = PROFILE_SCHEMA

    @classmethod
    def from_registry(
        cls, registry: MetricsRegistry, total_seconds: float
    ) -> "PipelineProfile":
        by_stage: dict[str, list] = {}
        for agg in registry.spans():
            by_stage.setdefault(stage_of(agg.name), []).append(agg)
        rows = [
            StageRow(
                stage=stage,
                wall_seconds=sum(a.self_s for a in aggs),
                calls=sum(a.calls for a in aggs),
                events=max((a.events for a in aggs), default=0),
            )
            for stage, aggs in by_stage.items()
        ]
        order = {name: i for i, name in enumerate(STAGE_ORDER)}
        rows.sort(key=lambda r: (order.get(r.stage, len(order)), r.stage))
        return cls(
            total_seconds=total_seconds,
            rows=rows,
            metrics=registry.snapshot(),
        )

    @property
    def accounted_seconds(self) -> float:
        return sum(r.wall_seconds for r in self.rows)

    @property
    def coverage(self) -> float:
        """Fraction of total wall time the stage rows account for."""
        if self.total_seconds <= 0:
            return 0.0
        return self.accounted_seconds / self.total_seconds

    @property
    def num_events(self) -> int:
        return max((r.events for r in self.rows), default=0)

    def table(self) -> str:
        """An aligned plain-text stage-breakdown table."""
        header = ("stage", "wall s", "share", "calls", "events", "ev/s")
        body = []
        for r in self.rows:
            share = r.wall_seconds / self.total_seconds if self.total_seconds else 0.0
            body.append((
                r.stage,
                f"{r.wall_seconds:.3f}",
                f"{share * 100:5.1f}%",
                f"{r.calls}",
                f"{r.events}",
                f"{r.events_per_second:,.0f}" if r.events else "-",
            ))
        other = self.total_seconds - self.accounted_seconds
        if self.total_seconds > 0:
            body.append((
                "(other)",
                f"{max(other, 0.0):.3f}",
                f"{max(other, 0.0) / self.total_seconds * 100:5.1f}%",
                "-", "-", "-",
            ))
        widths = [
            max(len(header[i]), *(len(row[i]) for row in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [
            "  ".join(h.ljust(widths[i]) for i, h in enumerate(header)).rstrip(),
            "  ".join("-" * widths[i] for i in range(len(header))),
        ]
        for row in body:
            lines.append(
                "  ".join(cell.rjust(widths[i]) if i else cell.ljust(widths[i])
                          for i, cell in enumerate(row)).rstrip()
            )
        lines.append(
            f"total {self.total_seconds:.3f}s, stages cover "
            f"{self.coverage * 100:.1f}% of wall time"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "total_seconds": self.total_seconds,
            "accounted_seconds": self.accounted_seconds,
            "coverage": self.coverage,
            "stages": [r.to_dict() for r in self.rows],
            "metrics": self.metrics,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PipelineProfile":
        rows = [
            StageRow(
                stage=s["stage"],
                wall_seconds=s["wall_seconds"],
                calls=s["calls"],
                events=s["events"],
            )
            for s in payload.get("stages", ())
        ]
        return cls(
            total_seconds=payload["total_seconds"],
            rows=rows,
            metrics=payload.get("metrics", {}),
            schema=payload.get("schema", PROFILE_SCHEMA),
        )

    def save(self, path) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path) -> "PipelineProfile":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))


class profiled:
    """Enable instrumentation for a block and build its profile.

    Resets the process registry on entry (``reset=False`` to
    accumulate), restores the previous enabled/disabled state on exit,
    and exposes the result as ``.profile``.
    """

    def __init__(self, *, registry: MetricsRegistry | None = None,
                 reset: bool = True, clock=perf_counter):
        # `is None`, not `or`: an empty MetricsRegistry is falsy (len == 0).
        self._registry = REGISTRY if registry is None else registry
        self._reset = reset
        self._clock = clock
        self._was_enabled = False
        self._t0 = 0.0
        self.profile: PipelineProfile | None = None

    def __enter__(self) -> "profiled":
        self._was_enabled = _registry.enabled()
        if self._reset:
            self._registry.reset()
        _registry.enable()
        self._t0 = self._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        total = self._clock() - self._t0
        if not self._was_enabled:
            _registry.disable()
        self.profile = PipelineProfile.from_registry(self._registry, total)
        return False
