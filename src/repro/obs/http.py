"""A tiny stdlib metrics endpoint for ``repro serve --metrics-port``.

Serves the process registry on a daemon thread:

- ``GET /metrics``       Prometheus text exposition
- ``GET /metrics.json``  the ``repro/metrics/v1`` JSON document

No third-party dependencies; uses ``http.server.ThreadingHTTPServer``.
"""

from __future__ import annotations

from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import json
import threading

from .registry import MetricsRegistry, REGISTRY


class _MetricsHandler(BaseHTTPRequestHandler):
    registry: MetricsRegistry = REGISTRY

    def do_GET(self):  # noqa: N802 (stdlib handler contract)
        if self.path.rstrip("/") in ("", "/metrics"):
            body = self.registry.to_prometheus().encode()
            ctype = "text/plain; version=0.0.4; charset=utf-8"
        elif self.path == "/metrics.json":
            body = (json.dumps(self.registry.to_json(), sort_keys=True) + "\n").encode()
            ctype = "application/json"
        else:
            self.send_error(404, "unknown path (try /metrics or /metrics.json)")
            return
        self.send_response(200)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt, *args):  # silence per-request stderr noise
        pass


class MetricsServer:
    """Background HTTP server exposing a :class:`MetricsRegistry`."""

    def __init__(self, port: int = 0, *, host: str = "127.0.0.1",
                 registry: MetricsRegistry | None = None):
        handler = type(
            "_BoundMetricsHandler",
            (_MetricsHandler,),
            {"registry": REGISTRY if registry is None else registry},
        )
        self._server = ThreadingHTTPServer((host, port), handler)
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="repro-metrics", daemon=True
        )

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        host = self._server.server_address[0]
        return f"http://{host}:{self.port}/metrics"

    def start(self) -> "MetricsServer":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)
