"""Process-wide metrics registry: counters, gauges, and log-bucketed histograms.

The registry is the single sink for every runtime metric in the
pipeline.  It is deliberately dependency-free (numpy only) so that any
module — core, workload, service, mcn, validate — can import it without
creating an import cycle.

Instrumentation across the codebase is gated on :func:`enabled`; when
the switch is off the hot paths pay (at most) one predicate call per
*batch*, never per event.  Histograms use the same log-spaced-edge
semantics as ``repro.validate.stats.QuantizedHistogram``: ``bins``
geometric buckets between ``low`` and ``high`` plus underflow/overflow
catch-alls, with scalar observes routed through :func:`bisect.bisect_right`
(equivalent to ``np.searchsorted(edges, v, side="right")``).

Exposition formats:

- :meth:`MetricsRegistry.to_prometheus` — Prometheus text format
  (dots become underscores, histograms expand to cumulative
  ``_bucket{le=...}`` series plus ``_sum``/``_count``).
- :meth:`MetricsRegistry.to_json` / :meth:`MetricsRegistry.write_json`
  — a JSON document (``{"schema": "repro/metrics/v1", ...}``) suitable
  for ``--metrics-json`` flags and JSONL embedding.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterator

import json
import math
import threading

import numpy as np

from ..analysis.schemas import METRICS_V1

METRICS_SCHEMA = METRICS_V1

_ENABLED = False


def enabled() -> bool:
    """Whether instrumentation is globally on (one branch per batch)."""
    return _ENABLED


def enable() -> None:
    """Turn instrumentation on process-wide."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Turn instrumentation off process-wide."""
    global _ENABLED
    _ENABLED = False


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


def _format_name(name: str, labels: dict) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count (events, steps, episodes)."""

    kind = "counter"
    __slots__ = ("name", "labels", "help", "value")

    def __init__(self, name: str, labels: dict, help: str = ""):
        self.name = name
        self.labels = labels
        self.help = help
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def to_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """A point-in-time level (queue depth, utilization, buffered count)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "help", "value")

    def __init__(self, name: str, labels: dict, help: str = ""):
        self.name = name
        self.labels = labels
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def to_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """Log-bucketed distribution with under/overflow catch-alls.

    ``counts`` has ``bins + 2`` slots: ``counts[0]`` is the underflow
    bucket (``v < edges[0]``), ``counts[-1]`` the overflow bucket
    (``v >= edges[-1]``), mirroring ``QuantizedHistogram``.  Scalar
    :meth:`observe` is a single ``bisect_right`` (~100ns); vector
    :meth:`add` is a searchsorted + bincount.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "help", "edges", "_edges_list", "counts", "sum")

    def __init__(
        self,
        name: str,
        labels: dict,
        help: str = "",
        *,
        low: float = 1e-6,
        high: float = 1e4,
        bins: int = 64,
    ):
        if low <= 0 or high <= low or bins < 1:
            raise ValueError("histogram needs 0 < low < high and bins >= 1")
        self.name = name
        self.labels = labels
        self.help = help
        self.edges = np.geomspace(low, high, bins + 1)
        self._edges_list = self.edges.tolist()
        self.counts = np.zeros(bins + 2, dtype=np.int64)
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_right(self._edges_list, value)] += 1
        self.sum += value

    def add(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size == 0:
            return
        idx = np.searchsorted(self.edges, values, side="right")
        self.counts += np.bincount(idx, minlength=self.counts.size)
        self.sum += float(values.sum())

    @property
    def count(self) -> int:
        return int(self.counts.sum())

    def quantile(self, q: float) -> float:
        """Approximate quantile from bucket upper edges (clipped to range)."""
        total = self.count
        if total == 0:
            return math.nan
        target = q * total
        running = 0
        uppers = [self._edges_list[0], *self._edges_list[1:], self._edges_list[-1]]
        for i, c in enumerate(self.counts):
            running += int(c)
            if running >= target:
                return uppers[i]
        return uppers[-1]

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "count": self.count,
            "sum": self.sum,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "buckets": self.counts.tolist(),
            "low": self._edges_list[0],
            "high": self._edges_list[-1],
        }


class SpanAggregate:
    """Accumulated timing for one span name (see ``repro.obs.spans``)."""

    kind = "span"
    __slots__ = ("name", "labels", "help", "total_s", "self_s", "calls", "events", "errors")

    def __init__(self, name: str, labels: dict, help: str = ""):
        self.name = name
        self.labels = labels
        self.help = help
        self.total_s = 0.0
        self.self_s = 0.0
        self.calls = 0
        self.events = 0
        self.errors = 0

    def to_dict(self) -> dict:
        out = {
            "kind": self.kind,
            "total_s": self.total_s,
            "self_s": self.self_s,
            "calls": self.calls,
            "events": self.events,
        }
        if self.errors:
            out["errors"] = self.errors
        if self.total_s > 0 and self.events:
            out["events_per_second"] = self.events / self.total_s
        return out


class MetricsRegistry:
    """Get-or-create store of named metrics, keyed by ``(name, labels)``."""

    def __init__(self):
        self._metrics: dict[tuple, object] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, help: str, labels: dict, **kwargs):
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    metric = cls(name, labels, help, **kwargs)
                    self._metrics[key] = metric
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, not {cls.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        *,
        low: float = 1e-6,
        high: float = 1e4,
        bins: int = 64,
        **labels,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labels, low=low, high=high, bins=bins
        )

    def span_aggregate(self, name: str, **labels) -> SpanAggregate:
        return self._get_or_create(SpanAggregate, name, "", labels)

    def record_span(
        self,
        name: str,
        seconds: float,
        *,
        self_seconds: float | None = None,
        calls: int = 1,
        events: int = 0,
    ) -> SpanAggregate:
        """Fold a manually timed block into the span aggregates."""
        agg = self.span_aggregate(name)
        agg.total_s += seconds
        agg.self_s += seconds if self_seconds is None else self_seconds
        agg.calls += calls
        agg.events += events
        return agg

    def get(self, name: str, **labels):
        """Look up an existing metric; raises ``KeyError`` if absent."""
        return self._metrics[(name, _label_key(labels))]

    def __iter__(self) -> Iterator:
        return iter(list(self._metrics.values()))

    def __len__(self) -> int:
        return len(self._metrics)

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()

    def snapshot(self) -> dict:
        """Flat ``{"name{label=v}": metric-dict}`` mapping, JSON-ready."""
        return {
            _format_name(m.name, m.labels): m.to_dict() for m in self
        }

    def spans(self) -> list[SpanAggregate]:
        return [m for m in self if isinstance(m, SpanAggregate)]

    def to_json(self) -> dict:
        return {"schema": METRICS_SCHEMA, "metrics": self.snapshot()}

    def write_json(self, path) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def to_prometheus(self) -> str:
        """Prometheus text exposition (``name_bucket{le=...}`` etc.)."""
        lines: list[str] = []
        for metric in sorted(self, key=lambda m: (m.name, _label_key(m.labels))):
            base = metric.name.replace(".", "_").replace("-", "_")
            labels = dict(metric.labels)
            if isinstance(metric, Counter):
                lines.append(f"# TYPE {base} counter")
                lines.append(f"{base}{_prom_labels(labels)} {metric.value}")
            elif isinstance(metric, Gauge):
                lines.append(f"# TYPE {base} gauge")
                lines.append(f"{base}{_prom_labels(labels)} {metric.value}")
            elif isinstance(metric, Histogram):
                lines.append(f"# TYPE {base} histogram")
                cumulative = 0
                for i, count in enumerate(metric.counts[:-1]):
                    cumulative += int(count)
                    le = metric._edges_list[min(i, len(metric._edges_list) - 1)]
                    lines.append(
                        f"{base}_bucket{_prom_labels(labels, le=repr(le))} {cumulative}"
                    )
                cumulative += int(metric.counts[-1])
                lines.append(f"{base}_bucket{_prom_labels(labels, le='+Inf')} {cumulative}")
                lines.append(f"{base}_sum{_prom_labels(labels)} {metric.sum}")
                lines.append(f"{base}_count{_prom_labels(labels)} {metric.count}")
            elif isinstance(metric, SpanAggregate):
                lines.append(f"# TYPE {base}_seconds_total counter")
                lines.append(f"{base}_seconds_total{_prom_labels(labels)} {metric.total_s}")
                lines.append(f"{base}_self_seconds_total{_prom_labels(labels)} {metric.self_s}")
                lines.append(f"{base}_calls_total{_prom_labels(labels)} {metric.calls}")
                lines.append(f"{base}_events_total{_prom_labels(labels)} {metric.events}")
        return "\n".join(lines) + "\n"


def _prom_labels(labels: dict, **extra) -> str:
    merged = {**labels, **extra}
    if not merged:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(merged.items()))
    return f"{{{inner}}}"


#: The process-wide registry every instrumented module writes into.
REGISTRY = MetricsRegistry()


def metrics() -> MetricsRegistry:
    """The process-wide registry (one per process; workers get their own)."""
    return REGISTRY
