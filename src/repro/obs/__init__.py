"""Unified pipeline observability: metrics, spans, and stage profiles.

Everything hangs off one switch — :func:`enabled` — and one sink — the
process-wide :data:`~repro.obs.registry.REGISTRY`:

    from repro import obs

    with obs.profiled() as prof:
        engine.run(validators=..., simulate=True)
    print(prof.profile.table())          # stage-breakdown table
    obs.metrics().write_json("metrics.json")

When the switch is off (the default), instrumented hot paths pay at
most one predicate per batch and iterator wrappers vanish entirely;
see ``tests/obs/test_overhead.py`` for the pinned <2% bound.

The package is import-cycle-free by construction: it depends only on
the standard library and numpy, so core, workload, service, mcn, and
validate can all instrument themselves with ``from ..obs import ...``.
"""

from .registry import (
    METRICS_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    SpanAggregate,
    disable,
    enable,
    enabled,
    metrics,
)
from .spans import Span, exclude, instrument_events, span
from .profile import (
    PROFILE_SCHEMA,
    PipelineProfile,
    StageRow,
    profiled,
    stage_of,
)
from .http import MetricsServer

__all__ = [
    "METRICS_SCHEMA",
    "PROFILE_SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsServer",
    "PipelineProfile",
    "REGISTRY",
    "Span",
    "SpanAggregate",
    "StageRow",
    "disable",
    "enable",
    "enabled",
    "exclude",
    "instrument_events",
    "metrics",
    "profiled",
    "span",
    "stage_of",
]
