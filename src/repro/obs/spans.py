"""Lightweight tracing spans with self-time attribution.

A span measures one named block (``with span("merge.pull"): ...``).
Spans nest: each records *total* wall time and *self* time (total minus
time attributed to child spans), so a stage table can sum self-times
without double counting.  When :func:`repro.obs.enabled` is off,
:func:`span` returns a shared no-op object and
:func:`instrument_events` returns its iterable **unchanged** — the
disabled path adds zero per-event work.

The clock is explicit and injectable (``span("x", clock=fake)``) so
tests are deterministic.  Aggregation happens per span *name* into
``SpanAggregate`` entries of the process registry — there is no
per-call record kept, which keeps enabled-mode overhead to two clock
reads and a handful of float adds per block.

For iterator-shaped hot paths (the k-way merge yields one event per
``next()``), :func:`instrument_events` wraps the iterator and times
every ``sample``-th pull exactly, extrapolating gross time at
exhaustion.  The estimate is credited to the span aggregate *and* to
the enclosing frame's child time, so a parent span (e.g. the simulate
loop driving the merge) reports the merge as a child rather than as
its own self-time.
"""

from __future__ import annotations

from time import perf_counter

from . import registry as _registry
from .registry import REGISTRY, SpanAggregate

__all__ = ["span", "instrument_events", "exclude", "Span", "SpanAggregate"]

# Stack of open frames (module-level: spans are per-process, like the
# registry; forked service workers keep their own copy-on-write stack).
_STACK: list = []


class _Frame:
    __slots__ = ("t0", "child", "events")

    def __init__(self, t0: float):
        self.t0 = t0
        self.child = 0.0
        self.events = 0


class Span:
    """One open measurement; use via ``with span(name) as sp:``."""

    __slots__ = ("_name", "_clock", "_registry", "_frame")

    def __init__(self, name: str, clock, registry):
        self._name = name
        self._clock = clock
        self._registry = registry
        self._frame = None

    def __enter__(self) -> "Span":
        self._frame = _Frame(self._clock())
        _STACK.append(self._frame)
        return self

    def add_events(self, count: int) -> None:
        self._frame.events += count

    def __exit__(self, exc_type, exc, tb) -> bool:
        frame = self._frame
        dt = self._clock() - frame.t0
        if _STACK and _STACK[-1] is frame:
            _STACK.pop()
        agg = self._registry.span_aggregate(self._name)
        agg.total_s += dt
        agg.self_s += dt - frame.child
        agg.calls += 1
        agg.events += frame.events
        if exc_type is not None:
            agg.errors += 1
        if _STACK:
            _STACK[-1].child += dt
        return False


class _NoopSpan:
    """Shared do-nothing span returned while instrumentation is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def add_events(self, count: int) -> None:
        pass


_NOOP = _NoopSpan()


def span(name: str, *, clock=None, registry=None):
    """A context manager timing ``name``; no-op when obs is disabled."""
    if not _registry._ENABLED:
        return _NOOP
    # `is None`, not `or`: an empty MetricsRegistry is falsy (len == 0).
    return Span(name, clock or perf_counter,
                REGISTRY if registry is None else registry)


def exclude(seconds: float) -> None:
    """Credit manually timed work to the enclosing span as child time.

    Used by batch accumulators (e.g. the service's per-event gate tee)
    that measure with raw ``perf_counter`` pairs inside an open span:
    calling ``exclude(dt)`` keeps the parent's self-time honest.
    """
    if _STACK:
        _STACK[-1].child += seconds


class _TimedEvents:
    """Iterator wrapper sampling every ``sample``-th ``next()``."""

    __slots__ = ("_name", "_it", "_sample", "_clock", "_registry",
                 "_n", "_m", "_t", "_done")

    def __init__(self, name: str, iterable, sample: int, clock, registry):
        self._name = name
        self._it = iter(iterable)
        self._sample = max(1, int(sample))
        self._clock = clock
        self._registry = registry
        self._n = 0
        self._m = 0
        self._t = 0.0
        self._done = False

    def __iter__(self) -> "_TimedEvents":
        return self

    def __next__(self):
        measured = self._n % self._sample == 0
        if measured:
            t0 = self._clock()
        try:
            item = next(self._it)
        except BaseException:
            self._finalize()
            raise
        if measured:
            self._t += self._clock() - t0
            self._m += 1
        self._n += 1
        return item

    def _finalize(self) -> None:
        if self._done:
            return
        self._done = True
        estimate = self._t * (self._n / self._m) if self._m and self._n else self._t
        self._registry.record_span(self._name, estimate, events=self._n)
        if _STACK:
            _STACK[-1].child += estimate

    def close(self) -> None:
        self._finalize()
        close = getattr(self._it, "close", None)
        if close is not None:
            close()

    @property
    def events(self) -> int:
        return self._n


def instrument_events(name: str, iterable, *, sample: int = 16,
                      clock=None, registry=None):
    """Attribute per-``next()`` time of ``iterable`` to span ``name``.

    Disabled path returns ``iterable`` itself — the caller's loop is
    byte-for-byte the uninstrumented one.  Enabled path times one pull
    in ``sample`` exactly and scales up at exhaustion; with lazily
    produced events the first pull can hide arbitrary setup, so
    callers materialize upstream work first (see ``Workload.events``).
    """
    if not _registry._ENABLED:
        return iterable
    return _TimedEvents(name, iterable, sample, clock or perf_counter,
                        REGISTRY if registry is None else registry)
