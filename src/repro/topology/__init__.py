"""``repro.topology`` — multi-cell network graphs, mobility, and chaos.

The topology layer gives generated control-plane streams somewhere to
happen: a :class:`NetworkTopology` of cells nested in tracking areas and
regional cores, :class:`MobilityModel` trajectories walking UEs across
it, and a :class:`ChaosSchedule` of failures (cell outages, regional
core degrades, rolling firmware storms).  A :class:`TopologyScenario`
bundles all three; the workload engine consumes one via
``Workload(..., topology="stadium-cell-kill")`` and the
:class:`TopologyRuntime` annotates every timeline event with its cell
while injecting conformant ``HO``/``TAU``/re-registration traffic.

Built-in scenarios register lazily on first :func:`get_topology` /
:func:`~repro.api.registry.available_topologies` call; import
:mod:`repro.topology.presets` to force registration.
"""

from .chaos import (
    NO_CHAOS,
    CellOutage,
    ChaosSchedule,
    FirmwareStorm,
    RegionDegrade,
)
from .graph import (
    Cell,
    NetworkTopology,
    grid_topology,
    line_topology,
    ring_topology,
)
from .mobility import (
    CommuterMobility,
    MobilityModel,
    RandomWaypointMobility,
    StationaryMobility,
    get_mobility,
)
from .runtime import TopologyRuntime
from .scenario import TopologyScenario, get_topology

__all__ = [
    "Cell",
    "NetworkTopology",
    "line_topology",
    "ring_topology",
    "grid_topology",
    "MobilityModel",
    "StationaryMobility",
    "RandomWaypointMobility",
    "CommuterMobility",
    "get_mobility",
    "CellOutage",
    "RegionDegrade",
    "FirmwareStorm",
    "ChaosSchedule",
    "NO_CHAOS",
    "TopologyScenario",
    "get_topology",
    "TopologyRuntime",
]
