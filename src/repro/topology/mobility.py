"""UE mobility models: piecewise-constant cell trajectories.

A :class:`MobilityModel` turns ``(topology, home cell, rng, window)``
into a deterministic cell trajectory — arrays ``(times, cells)`` where
``cells[i]`` is occupied from ``times[i]`` until ``times[i + 1]``.  The
workload engine derives each UE's ``rng`` from a ``SeedSequence`` spawn
key of ``(seed, ue id)``, so a trajectory depends only on the seed and
the UE — never on shard layout or ``num_workers``.

Three models cover the control-plane repertoire:

* :class:`StationaryMobility` — the pre-topology behavior: a UE camps
  on its home cell forever (no mobility events);
* :class:`RandomWaypointMobility` — exponential dwell on a cell, then a
  hop to a uniformly-chosen neighbor: background urban churn;
* :class:`CommuterMobility` — the morning/evening tidal flow: home →
  (shortest path) → workplace and back, with per-UE departure jitter
  drawn from a :class:`~repro.trace.diurnal.DiurnalProfile` so the
  commute wave follows the same device-activity curve that shapes the
  cohort's traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..trace.diurnal import DiurnalProfile
from .graph import NetworkTopology

__all__ = [
    "MobilityModel",
    "StationaryMobility",
    "RandomWaypointMobility",
    "CommuterMobility",
    "get_mobility",
]

_SECONDS_PER_HOUR = 3600.0
_SECONDS_PER_DAY = 86400.0


class MobilityModel:
    """Base class: a deterministic cell-trajectory factory."""

    def trajectory(
        self,
        topology: NetworkTopology,
        home: int,
        rng: np.random.Generator,
        start: float,
        horizon: float,
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(times, cells)`` over ``[start, horizon]``.

        ``times`` is strictly increasing with ``times[0] == start``;
        ``cells`` holds topology cell codes; consecutive entries always
        differ (every breakpoint is a real crossing).
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


def _finalize(
    start: float, home: int, moves: list[tuple[float, int]]
) -> tuple[np.ndarray, np.ndarray]:
    """Collapse raw ``(time, cell)`` moves into a canonical trajectory.

    Moves at or before ``start`` fast-forward the initial cell (a
    commuter whose window opens at 10:00 is already at work); no-op
    moves (same cell) are dropped.
    """
    times = [start]
    cells = [home]
    for t, cell in sorted(moves, key=lambda m: m[0]):
        if t <= start:
            cells[0] = int(cell)
            continue
        if cell == cells[-1]:
            continue
        times.append(float(t))
        cells.append(int(cell))
    return np.asarray(times, dtype=np.float64), np.asarray(cells, dtype=np.int32)


@dataclass(frozen=True)
class StationaryMobility(MobilityModel):
    """No movement: the UE camps on its home cell."""

    def trajectory(self, topology, home, rng, start, horizon):
        return _finalize(start, home, [])


@dataclass(frozen=True)
class RandomWaypointMobility(MobilityModel):
    """Exponential dwell, then a hop to a uniform random neighbor."""

    mean_dwell_seconds: float = 1800.0
    max_moves: int = 256

    def __post_init__(self) -> None:
        if self.mean_dwell_seconds <= 0:
            raise ValueError("mean_dwell_seconds must be positive")
        if self.max_moves < 1:
            raise ValueError("max_moves must be >= 1")

    def trajectory(self, topology, home, rng, start, horizon):
        moves: list[tuple[float, int]] = []
        t = start
        cell = home
        for _ in range(self.max_moves):
            t += float(rng.exponential(self.mean_dwell_seconds))
            if t > horizon:
                break
            neighbors = topology.neighbor_indices(cell)
            if not neighbors:
                break
            cell = neighbors[int(rng.integers(len(neighbors)))]
            moves.append((t, cell))
        return _finalize(start, home, moves)


@dataclass(frozen=True)
class CommuterMobility(MobilityModel):
    """Tidal home → work → home flow along shortest topology paths.

    Each UE picks a workplace from ``work_cells`` (names; empty = every
    cell but home), departs around ``depart_hour`` and returns around
    ``return_hour``, crossing one cell of the shortest path every
    ``transit_seconds``.  Departure jitter is drawn over
    ``± jitter_hours`` weighted by ``profile`` activity (when given), so
    the handover wave tracks the device type's own diurnal curve.
    """

    work_cells: tuple[str, ...] = ()
    depart_hour: float = 8.0
    return_hour: float = 17.0
    transit_seconds: float = 120.0
    jitter_hours: float = 0.5
    profile: DiurnalProfile | None = None

    def __post_init__(self) -> None:
        if self.transit_seconds <= 0:
            raise ValueError("transit_seconds must be positive")
        if self.jitter_hours < 0:
            raise ValueError("jitter_hours must be non-negative")
        if not 0 <= self.depart_hour < 24 or not 0 <= self.return_hour < 24:
            raise ValueError("depart_hour and return_hour must be in [0, 24)")
        object.__setattr__(self, "work_cells", tuple(self.work_cells))

    # ------------------------------------------------------------------
    def _jitter(self, hour: float, rng: np.random.Generator) -> float:
        """Departure offset (seconds) around ``hour``, profile-weighted."""
        if self.jitter_hours == 0:
            return 0.0
        if self.profile is None:
            return float(
                rng.uniform(-self.jitter_hours, self.jitter_hours)
            ) * _SECONDS_PER_HOUR
        # Discretize the jitter window into 5-minute slots and sample one
        # proportionally to the diurnal activity at that slot.
        slots = max(2, int(round(self.jitter_hours * 24)))
        offsets = np.linspace(-self.jitter_hours, self.jitter_hours, slots)
        weights = np.array(
            [self.profile.activity(hour + off) for off in offsets]
        )
        weights = weights / weights.sum()
        pick = int(rng.choice(len(offsets), p=weights))
        return float(offsets[pick]) * _SECONDS_PER_HOUR

    def _walk(
        self,
        topology: NetworkTopology,
        path: tuple[int, ...],
        depart: float,
    ) -> list[tuple[float, int]]:
        return [
            (depart + hop * self.transit_seconds, cell)
            for hop, cell in enumerate(path[1:])
        ]

    def trajectory(self, topology, home, rng, start, horizon):
        if self.work_cells:
            candidates = [topology.index(name) for name in self.work_cells]
        else:
            candidates = [i for i in range(topology.num_cells) if i != home]
        if not candidates:
            return _finalize(start, home, [])
        work = candidates[int(rng.integers(len(candidates)))]
        if work == home:
            return _finalize(start, home, [])
        outbound = topology.shortest_path(
            topology.cells[home].name, topology.cells[work].name
        )
        inbound = tuple(reversed(outbound))
        moves: list[tuple[float, int]] = []
        day = int(np.floor(start / _SECONDS_PER_DAY))
        while day * _SECONDS_PER_DAY <= horizon:
            base = day * _SECONDS_PER_DAY
            depart = (
                base
                + self.depart_hour * _SECONDS_PER_HOUR
                + self._jitter(self.depart_hour, rng)
            )
            back = (
                base
                + self.return_hour * _SECONDS_PER_HOUR
                + self._jitter(self.return_hour, rng)
            )
            # Keep the two trips disjoint even under extreme jitter.
            trip_seconds = (len(outbound) - 1) * self.transit_seconds
            back = max(back, depart + trip_seconds + 1.0)
            moves.extend(self._walk(topology, outbound, depart))
            moves.extend(self._walk(topology, inbound, back))
            day += 1
        return _finalize(start, home, [m for m in moves if m[0] <= horizon])


#: Built-in models resolvable by name from ``Cohort.mobility``.
_BUILTINS = {
    "stationary": StationaryMobility,
    "random-waypoint": RandomWaypointMobility,
    "waypoint": RandomWaypointMobility,
    "commuter": CommuterMobility,
}


def get_mobility(model: "str | MobilityModel") -> MobilityModel:
    """Resolve a mobility model by builtin name (or pass one through)."""
    if isinstance(model, MobilityModel):
        return model
    key = model.strip().lower()
    if key not in _BUILTINS:
        raise ValueError(
            f"unknown mobility model {model!r}; "
            f"builtins: {sorted(set(_BUILTINS))}"
        )
    return _BUILTINS[key]()
