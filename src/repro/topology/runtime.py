"""Topology runtime: cell annotation and conformant event injection.

This is the bridge between the topology layer and the workload engine:
:meth:`TopologyRuntime.annotate` takes one generated (already shaped)
stream and returns it with

* a **cell code per event** (where on the graph the event happened),
* **mobility-induced events injected** — ``HO`` on cell crossings while
  connected, ``TAU`` on tracking-area crossings (4G), and
* **chaos-induced events injected** — release + re-register at a
  neighbor when the UE's cell dies, detach/re-attach cycles for rolling
  firmware storms.

Injection is *conformance-preserving by construction*: the runtime
replays the stream through the same top-state tracking the
:class:`~repro.validate.oracle.TransitionOracle` uses (bootstrap on the
first deterministic event, violations leave the state unchanged) and

1. only injects events that are legal transitions from the tracked
   state (``HO``/``TAU`` while connected, ``TAU`` while idle, ...),
2. injects only *state-neutral blocks* — every injected subsequence
   returns the UE to the top-level state it started from (a reboot of
   an idle UE is ``DTCH → ATCH → S1_CONN_REL``), so the validity of the
   generator's own subsequent events is untouched, and
3. never injects before the stream has bootstrapped the machine.

Hence a topology-enabled run can never score worse on the oracle than
the same run without topology — the fidelity gate stays meaningful.

Determinism: every random choice (home cell, waypoints, refuge cell,
reattach jitter) comes from one per-UE RNG seeded by
``SeedSequence((seed, tag, crc32("{cohort}/{ue}")))`` — independent of
shard layout and ``num_workers``, the same recipe the thinning shapes
use.
"""

from __future__ import annotations

import zlib

import numpy as np

from .chaos import ChaosSchedule
from .scenario import TopologyScenario

__all__ = ["TopologyRuntime"]

#: Namespacing tag separating topology RNG streams from generation
#: (cohort index) and thinning (crc32 key) streams under the same seed.
_TOPO_TAG = 0x746F706F  # "topo"

#: Trigger kinds on the merged per-UE schedule.
_MOVE = 0      # mobility crossing (HO / TAU semantics)
_OUTAGE = 1    # displacement because the current cell died
_REBOOT = 2    # firmware-storm detach/reattach cycle

#: Mean radio-reattach delay after losing a cell (seconds).
_REATTACH_MEAN = 5.0
#: Spacing of follow-up events (TAU after HO, release after re-attach).
_FOLLOW = 0.5


class _SpecTables:
    """Flattened top-state tables + injection names for one machine spec."""

    def __init__(self, spec) -> None:
        # Top-state transition tables (the oracle's semantics, top level
        # only: violations keyed on (top, event) leave the state put).
        self.boot = {
            event: destination[0]
            for event, destination in spec.bootstrap_events.items()
        }
        self.next_top = {
            (top, event): target[0]
            for (top, event), target in spec.transitions.items()
        }
        self.connected = spec.connected_state
        self.idle = spec.idle_state
        self.dereg = spec.initial.top
        # Technology-dependent event names for injection.
        is_4g = "TAU" in spec.vocabulary
        self.ho = "HO"
        self.tau = "TAU" if is_4g else None
        self.release = "S1_CONN_REL" if is_4g else "AN_REL"
        self.attach = "ATCH" if is_4g else "REGISTER"
        self.detach = "DTCH" if is_4g else "DEREGISTER"
        self.reconnect = "SRV_REQ"


class TopologyRuntime:
    """Per-run state for annotating streams against one topology."""

    def __init__(
        self,
        scenario: TopologyScenario,
        population,
        *,
        seed: int,
        chaos: ChaosSchedule | None = None,
    ) -> None:
        self.scenario = scenario
        self.topology = scenario.topology
        self.chaos = (
            scenario.chaos if chaos is None else chaos.validate(self.topology)
        )
        self.seed = seed
        # Per-cohort machine tables (a population may mix 4G and 5G).
        by_spec: dict[str, _SpecTables] = {}
        self._tables = {}
        for cohort in population.cohorts:
            spec = cohort.scenario.machine_spec
            tables = by_spec.get(spec.name)
            if tables is None:
                tables = by_spec[spec.name] = _SpecTables(spec)
            self._tables[cohort.name] = tables
        # Per-cell lookup arrays.
        tas = {ta: i for i, ta in enumerate(self.topology.tracking_areas)}
        self._cell_ta = np.array(
            [tas[c.tracking_area] for c in self.topology.cells], dtype=np.int32
        )
        # Resolved per-cohort placement + mobility (by cohort name).
        self._placement = {
            cohort.name: scenario.placement_for(cohort)
            for cohort in population.cohorts
        }
        self._mobility = {
            cohort.name: scenario.mobility_for(cohort)
            for cohort in population.cohorts
        }

    # ------------------------------------------------------------------
    # Per-UE derivations
    # ------------------------------------------------------------------
    def _ue_rng(self, cohort_name: str, ue_id: str) -> np.random.Generator:
        key = zlib.crc32(f"{cohort_name}/{ue_id}".encode())
        return np.random.default_rng(
            np.random.SeedSequence((self.seed, _TOPO_TAG, key))
        )

    def _refuge(self, dead: int, t: float, rng: np.random.Generator) -> int | None:
        """A live neighbor cell to displace to when ``dead`` dies at ``t``."""
        alive = [
            code
            for code in self.topology.neighbor_indices(dead)
            if not self.chaos.cell_dead(self.topology.cells[code].name, t)
        ]
        if not alive:
            return None
        return alive[int(rng.integers(len(alive)))]

    def _apply_outages(
        self,
        times: np.ndarray,
        cells: np.ndarray,
        horizon: float,
        rng: np.random.Generator,
    ) -> list[tuple[float, int, int]]:
        """Trajectory breakpoints with outage displacement folded in.

        Returns ``(time, cell, kind)`` crossings *after* the first
        breakpoint; the caller reads the initial cell from the overlay's
        first entry.
        """
        segments = [
            (float(times[i]), int(cells[i]), _MOVE) for i in range(times.size)
        ]
        for outage in self.chaos.outages:
            if outage.start > horizon:
                continue
            dead = self.topology.index(outage.cell)
            rebuilt: list[tuple[float, int, int]] = []
            for i, (t0, cell, kind) in enumerate(segments):
                t1 = segments[i + 1][0] if i + 1 < len(segments) else np.inf
                overlap0 = max(t0, outage.start)
                overlap1 = min(t1, outage.end)
                if cell != dead or overlap0 >= overlap1:
                    rebuilt.append((t0, cell, kind))
                    continue
                refuge = self._refuge(dead, overlap0, rng)
                if refuge is None:
                    rebuilt.append((t0, cell, kind))
                    continue
                if t0 < outage.start:
                    rebuilt.append((t0, cell, kind))
                    rebuilt.append((outage.start, refuge, _OUTAGE))
                else:
                    # The UE moved onto a dead cell: land on the refuge
                    # instead (an ordinary re-routed crossing).
                    rebuilt.append((t0, refuge, kind))
                if t1 > outage.end:
                    rebuilt.append((outage.end, cell, _MOVE))
            segments = rebuilt
        # Collapse no-op crossings (consecutive identical cells).
        collapsed: list[tuple[float, int, int]] = []
        for entry in segments:
            if collapsed and collapsed[-1][1] == entry[1]:
                continue
            collapsed.append(entry)
        return collapsed

    def _reboots(
        self,
        start_cell: int,
        horizon: float,
        rng: np.random.Generator,
    ) -> list[tuple[float, int, int]]:
        """Firmware-storm detach instants for a UE homed at ``start_cell``."""
        triggers: list[tuple[float, int, int]] = []
        ta = self.topology.cells[start_cell].tracking_area
        for storm in self.chaos.storms:
            slot = storm.slot_of(self.topology, ta)
            if slot is None or slot > horizon:
                continue
            detach_at = slot + float(rng.uniform(0.0, storm.spread_seconds))
            triggers.append((detach_at, int(storm.reboot_seconds), _REBOOT))
        return triggers

    # ------------------------------------------------------------------
    # The annotation pass
    # ------------------------------------------------------------------
    def annotate(
        self,
        cohort,
        ue_id: str,
        times: np.ndarray,
        names: list[str],
    ) -> tuple[np.ndarray, list[str], np.ndarray]:
        """One stream → (times, names, cell codes) with injections.

        ``times``/``names`` are the cohort's shaped stream; the result
        arrays are time-ordered (equal-time runs keep sequence order,
        which the shard buffer's stable position sort preserves).
        """
        rng = self._ue_rng(cohort.name, ue_id)
        tables = self._tables[cohort.name]
        placement = self._placement[cohort.name]
        home = placement[int(rng.integers(len(placement)))]
        start = cohort.scenario.start_time
        horizon = float(start + cohort.scenario.duration)
        if len(times):
            horizon = max(horizon, float(times[-1]))
        traj_times, traj_cells = self._mobility[cohort.name].trajectory(
            self.topology, home, rng, start, horizon
        )
        overlay = self._apply_outages(traj_times, traj_cells, horizon, rng)
        initial_cell = overlay[0][1]
        triggers = overlay[1:] + self._reboots(initial_cell, horizon, rng)
        triggers.sort(key=lambda trigger: trigger[0])

        out_t: list[float] = []
        out_n: list[str] = []
        out_c: list[int] = []
        state: str | None = None
        cell = initial_cell

        def emit(t: float, name: str, at_cell: int) -> None:
            out_t.append(t)
            out_n.append(name)
            out_c.append(at_cell)

        def spaced(t: float, end: float, offsets: list[float]) -> list[float]:
            """Injection instants in ``[t, end)`` honoring ``offsets``."""
            if not offsets:
                return []
            last = offsets[-1]
            if end == np.inf or last <= 0:
                scale = 1.0
            else:
                gap = max(end - t, 0.0)
                scale = min(1.0, 0.9 * gap / last)
            return [t + offset * scale for offset in offsets]

        num_events = len(times)
        ti = 0
        for i in range(num_events + 1):
            t_next = float(times[i]) if i < num_events else np.inf
            while ti < len(triggers) and triggers[ti][0] <= t_next:
                t, payload, kind = triggers[ti]
                window = min(
                    t_next,
                    triggers[ti + 1][0] if ti + 1 < len(triggers) else np.inf,
                )
                ti += 1
                if kind == _REBOOT:
                    if state not in (tables.connected, tables.idle):
                        continue
                    instants = spaced(
                        t,
                        window,
                        [
                            float(payload) + _FOLLOW,
                            float(payload) + 2 * _FOLLOW,
                        ],
                    )
                    emit(t, tables.detach, cell)
                    emit(instants[0], tables.attach, cell)
                    if state == tables.idle:
                        emit(instants[1], tables.release, cell)
                    # Net top state preserved (connected or idle).
                    continue
                new_cell = payload
                if state is None or state == tables.dereg:
                    cell = new_cell
                    continue
                ta_changed = (
                    self._cell_ta[cell] != self._cell_ta[new_cell]
                )
                if state == tables.connected:
                    if kind == _OUTAGE:
                        delay = _FOLLOW + float(
                            rng.exponential(_REATTACH_MEAN)
                        )
                        when = spaced(t, window, [delay])
                        emit(t, tables.release, cell)
                        emit(when[0], tables.reconnect, new_cell)
                    else:
                        emit(t, tables.ho, new_cell)
                        if tables.tau is not None and ta_changed:
                            when = spaced(t, window, [_FOLLOW])
                            emit(when[0], tables.tau, new_cell)
                elif state == tables.idle:
                    if tables.tau is not None and ta_changed:
                        emit(t, tables.tau, new_cell)
                cell = new_cell
            if i < num_events:
                name = names[i]
                emit(t_next, name, cell)
                if state is None:
                    state = tables.boot.get(name)
                else:
                    state = tables.next_top.get((state, name), state)

        return (
            np.asarray(out_t, dtype=np.float64),
            out_n,
            np.asarray(out_c, dtype=np.int16),
        )
