"""Regional chaos scenarios: cell outages, core degrades, firmware storms.

A :class:`ChaosSchedule` is a declarative list of failures injected into
a topology-aware workload run.  Three failure kinds cover the MCN
chaos-engineering repertoire:

* :class:`CellOutage` — a cell dies mid-event: connected UEs lose their
  radio link, release, and mass-re-register at neighbor cells (the
  stadium-cell-kill scenario);
* :class:`RegionDegrade` — a regional core (AMF/MME pool) loses
  capacity for a window: the MCN simulator inflates service times for
  that region by ``1 / capacity_factor``, so queues grow and latency
  percentiles surface the brownout;
* :class:`FirmwareStorm` — a rolling firmware push by tracking area:
  every UE in a TA detaches, reboots, and re-attaches, staggered TA by
  TA (the §2.2 signaling-storm failure mode, now topology-driven).

Event *injection* (what UEs emit) happens in
:mod:`repro.topology.runtime`; capacity effects (how the core copes)
happen in :class:`~repro.mcn.simulator.MCNSimulator`.  Both consume the
same schedule, and all randomness (refuge-cell choice, reattach jitter)
derives from per-UE ``SeedSequence`` spawn keys in the runtime — the
schedule itself is deterministic data.
"""

from __future__ import annotations

from dataclasses import dataclass

from .graph import NetworkTopology

__all__ = [
    "CellOutage",
    "RegionDegrade",
    "FirmwareStorm",
    "ChaosSchedule",
    "NO_CHAOS",
]


@dataclass(frozen=True)
class CellOutage:
    """Cell ``cell`` is dead over ``[start, start + duration)``."""

    cell: str
    start: float
    duration: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("outage duration must be positive")

    @property
    def end(self) -> float:
        return self.start + self.duration

    def describe(self) -> str:
        return f"cell-outage {self.cell} @ {self.start:.0f}s for {self.duration:.0f}s"


@dataclass(frozen=True)
class RegionDegrade:
    """Region ``region`` runs at ``capacity_factor`` of its capacity."""

    region: str
    start: float
    duration: float
    capacity_factor: float = 0.5

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("degrade duration must be positive")
        if not 0 < self.capacity_factor <= 1:
            raise ValueError("capacity_factor must be in (0, 1]")

    @property
    def end(self) -> float:
        return self.start + self.duration

    def describe(self) -> str:
        return (
            f"region-degrade {self.region} @ {self.start:.0f}s "
            f"for {self.duration:.0f}s (x{self.capacity_factor:.2f} capacity)"
        )


@dataclass(frozen=True)
class FirmwareStorm:
    """Rolling reboot wave: tracking areas restart one after another.

    TA ``i`` (in ``tracking_areas`` order, or topology order when empty)
    reboots at ``start + i * stagger_seconds``; each UE detaches within
    ``spread_seconds`` of its TA's slot (per-UE jitter), stays down for
    ``reboot_seconds``, then re-attaches.
    """

    start: float
    stagger_seconds: float = 600.0
    reboot_seconds: float = 30.0
    spread_seconds: float = 120.0
    tracking_areas: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.stagger_seconds < 0 or self.spread_seconds < 0:
            raise ValueError("stagger/spread must be non-negative")
        if self.reboot_seconds <= 0:
            raise ValueError("reboot_seconds must be positive")
        object.__setattr__(self, "tracking_areas", tuple(self.tracking_areas))

    def slot_of(self, topology: NetworkTopology, tracking_area: str) -> float | None:
        """The reboot slot start for ``tracking_area`` (None = untouched)."""
        areas = self.tracking_areas or topology.tracking_areas
        for i, ta in enumerate(areas):
            if ta == tracking_area:
                return self.start + i * self.stagger_seconds
        return None

    def describe(self) -> str:
        scope = ", ".join(self.tracking_areas) if self.tracking_areas else "all TAs"
        return (
            f"firmware-storm @ {self.start:.0f}s over {scope}, "
            f"stagger {self.stagger_seconds:.0f}s"
        )


@dataclass(frozen=True)
class ChaosSchedule:
    """A composable set of chaos events over one run."""

    events: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, (CellOutage, RegionDegrade, FirmwareStorm)):
                raise TypeError(
                    f"unsupported chaos event {type(event).__name__}"
                )

    def __bool__(self) -> bool:
        return bool(self.events)

    # ------------------------------------------------------------------
    @property
    def outages(self) -> tuple[CellOutage, ...]:
        return tuple(e for e in self.events if isinstance(e, CellOutage))

    @property
    def degrades(self) -> tuple[RegionDegrade, ...]:
        return tuple(e for e in self.events if isinstance(e, RegionDegrade))

    @property
    def storms(self) -> tuple[FirmwareStorm, ...]:
        return tuple(e for e in self.events if isinstance(e, FirmwareStorm))

    # ------------------------------------------------------------------
    def validate(self, topology: NetworkTopology) -> "ChaosSchedule":
        """Check every referenced cell/region/TA exists; returns self."""
        for outage in self.outages:
            topology.index(outage.cell)
        for degrade in self.degrades:
            topology.cells_in_region(degrade.region)
        for storm in self.storms:
            for ta in storm.tracking_areas:
                topology.cells_in_tracking_area(ta)
        return self

    def service_scale(self, region: str, t: float) -> float:
        """Service-time inflation for ``region`` at time ``t`` (>= 1).

        Overlapping degrades compound: half capacity twice over means
        4x service times.
        """
        scale = 1.0
        for degrade in self.degrades:
            if degrade.region == region and degrade.start <= t < degrade.end:
                scale /= degrade.capacity_factor
        return scale

    def cell_dead(self, cell: str, t: float) -> bool:
        return any(
            o.cell == cell and o.start <= t < o.end for o in self.outages
        )

    def summary(self) -> str:
        if not self.events:
            return "no chaos events"
        return "\n".join(event.describe() for event in self.events)


#: The empty schedule (``chaos="off"`` resolves to this).
NO_CHAOS = ChaosSchedule()
