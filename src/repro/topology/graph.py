"""Network topology: cells grouped into tracking areas and regions.

The paper's generator reproduces per-UE control-plane event streams;
this module gives those streams somewhere to *happen*.  A
:class:`NetworkTopology` is an undirected graph of cells (gNB/eNB
coverage areas) where every cell belongs to exactly one tracking area
and every tracking area to exactly one regional core instance (an
AMF/MME pool).  Mobility models (:mod:`repro.topology.mobility`) walk
UEs across cell edges, the workload engine annotates every timeline
event with the cell it was emitted from, and the MCN simulator routes
arrivals to per-region NF pools.

The nesting ``cell ⊂ tracking area ⊂ region`` mirrors the 3GPP location
hierarchy: crossing a cell edge while connected is a handover, crossing
a tracking-area edge is additionally a tracking-area update, and a
regional core failure takes out every tracking area attached to it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Cell",
    "NetworkTopology",
    "line_topology",
    "ring_topology",
    "grid_topology",
]


@dataclass(frozen=True)
class Cell:
    """One coverage area: a cell attached to a tracking area and region."""

    name: str
    tracking_area: str
    region: str

    def __post_init__(self) -> None:
        for label, value in (
            ("cell", self.name),
            ("tracking_area", self.tracking_area),
            ("region", self.region),
        ):
            if not value or not str(value).strip():
                raise ValueError(f"{label} name must be non-empty")


@dataclass(frozen=True)
class NetworkTopology:
    """An undirected cell graph with the 3GPP location hierarchy.

    ``edges`` are unordered cell-name pairs; both orientations are
    derived.  Validation enforces the hierarchy invariants once, at
    construction: unique cell names, edges between existing distinct
    cells, and every tracking area inside exactly one region (a TA
    spanning two regional cores would make TAU routing ambiguous).
    """

    name: str
    cells: tuple[Cell, ...]
    edges: tuple[tuple[str, str], ...] = ()
    description: str = ""
    _index: dict = field(default_factory=dict, repr=False, compare=False)
    _neighbors: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "cells", tuple(self.cells))
        object.__setattr__(
            self, "edges", tuple(tuple(edge) for edge in self.edges)
        )
        if not self.cells:
            raise ValueError("a topology needs at least one cell")
        names = [cell.name for cell in self.cells]
        if len(set(names)) != len(names):
            raise ValueError(f"cell names must be unique; got {names}")
        index = {cell.name: code for code, cell in enumerate(self.cells)}
        ta_region: dict[str, str] = {}
        for cell in self.cells:
            region = ta_region.setdefault(cell.tracking_area, cell.region)
            if region != cell.region:
                raise ValueError(
                    f"tracking area {cell.tracking_area!r} spans regions "
                    f"{region!r} and {cell.region!r}; a TA must live in one "
                    "regional core"
                )
        neighbors: dict[str, list[int]] = {name: [] for name in names}
        seen: set[frozenset] = set()
        for a, b in self.edges:
            if a not in index or b not in index:
                raise ValueError(f"edge ({a!r}, {b!r}) names an unknown cell")
            if a == b:
                raise ValueError(f"self-edge on cell {a!r}")
            key = frozenset((a, b))
            if key in seen:
                raise ValueError(f"duplicate edge ({a!r}, {b!r})")
            seen.add(key)
            neighbors[a].append(index[b])
            neighbors[b].append(index[a])
        self._index.update(index)
        # Neighbor lists sorted by cell declaration order: deterministic
        # iteration for BFS paths and refuge choice in chaos scenarios.
        self._neighbors.update(
            {name: tuple(sorted(codes)) for name, codes in neighbors.items()}
        )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def num_cells(self) -> int:
        return len(self.cells)

    @property
    def cell_names(self) -> tuple[str, ...]:
        return tuple(cell.name for cell in self.cells)

    @property
    def tracking_areas(self) -> tuple[str, ...]:
        """Tracking areas in first-appearance order."""
        seen: dict[str, None] = {}
        for cell in self.cells:
            seen.setdefault(cell.tracking_area, None)
        return tuple(seen)

    @property
    def regions(self) -> tuple[str, ...]:
        """Regions in first-appearance order."""
        seen: dict[str, None] = {}
        for cell in self.cells:
            seen.setdefault(cell.region, None)
        return tuple(seen)

    def index(self, name: str) -> int:
        """Dense cell code of ``name`` (the column the buffers carry)."""
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(
                f"no cell {name!r} in topology {self.name!r}; "
                f"have {list(self._index)}"
            ) from None

    def cell(self, name: str) -> Cell:
        return self.cells[self.index(name)]

    def neighbor_indices(self, index: int) -> tuple[int, ...]:
        """Neighbor cell codes of the cell at ``index``."""
        return self._neighbors[self.cells[index].name]

    def neighbors(self, name: str) -> tuple[str, ...]:
        """Neighbor cell names of ``name``."""
        return tuple(
            self.cells[code].name for code in self._neighbors[self.cell(name).name]
        )

    def region_of(self, cell_name: str) -> str:
        return self.cell(cell_name).region

    def tracking_area_of(self, cell_name: str) -> str:
        return self.cell(cell_name).tracking_area

    def cells_in_region(self, region: str) -> tuple[str, ...]:
        found = tuple(c.name for c in self.cells if c.region == region)
        if not found:
            raise KeyError(
                f"no region {region!r} in topology {self.name!r}; "
                f"have {list(self.regions)}"
            )
        return found

    def cells_in_tracking_area(self, tracking_area: str) -> tuple[str, ...]:
        found = tuple(
            c.name for c in self.cells if c.tracking_area == tracking_area
        )
        if not found:
            raise KeyError(
                f"no tracking area {tracking_area!r} in topology "
                f"{self.name!r}; have {list(self.tracking_areas)}"
            )
        return found

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def shortest_path(self, start: str, goal: str) -> tuple[int, ...]:
        """Cell codes of a shortest ``start`` → ``goal`` walk (inclusive).

        Deterministic BFS: ties resolve toward the lowest cell code, so
        two runs (and two worker layouts) always pick the same path.
        Raises ``ValueError`` when no path exists.
        """
        origin, target = self.index(start), self.index(goal)
        if origin == target:
            return (origin,)
        parent: dict[int, int] = {origin: origin}
        frontier = [origin]
        while frontier:
            nxt: list[int] = []
            for node in frontier:
                for neighbor in self.neighbor_indices(node):
                    if neighbor in parent:
                        continue
                    parent[neighbor] = node
                    if neighbor == target:
                        path = [neighbor]
                        while path[-1] != origin:
                            path.append(parent[path[-1]])
                        return tuple(reversed(path))
                    nxt.append(neighbor)
            frontier = nxt
        raise ValueError(
            f"no path from {start!r} to {goal!r} in topology {self.name!r}"
        )

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """Human-readable hierarchy listing (the CLI ``topology`` output)."""
        lines = [
            f"{self.name}: {self.num_cells} cells / "
            f"{len(self.tracking_areas)} tracking areas / "
            f"{len(self.regions)} regions"
        ]
        for region in self.regions:
            lines.append(f"  region {region}:")
            for ta in self.tracking_areas:
                cells = [
                    c for c in self.cells
                    if c.tracking_area == ta and c.region == region
                ]
                if not cells:
                    continue
                names = ", ".join(
                    f"{c.name}({len(self._neighbors[c.name])}n)" for c in cells
                )
                lines.append(f"    {ta}: {names}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
def _grouped_cells(
    count: int, cells_per_ta: int, tas_per_region: int, prefix: str
) -> list[Cell]:
    cells = []
    for i in range(count):
        ta = i // cells_per_ta
        region = ta // tas_per_region
        cells.append(
            Cell(
                name=f"{prefix}{i:02d}",
                tracking_area=f"{prefix}ta{ta}",
                region=f"{prefix}r{region}",
            )
        )
    return cells


def line_topology(
    name: str,
    num_cells: int,
    *,
    cells_per_ta: int = 2,
    tas_per_region: int = 2,
    prefix: str = "c",
    description: str = "",
) -> NetworkTopology:
    """A corridor of cells — the motorway / rail-line coverage shape."""
    if num_cells < 1 or cells_per_ta < 1 or tas_per_region < 1:
        raise ValueError("num_cells, cells_per_ta and tas_per_region must be >= 1")
    cells = _grouped_cells(num_cells, cells_per_ta, tas_per_region, prefix)
    edges = tuple(
        (cells[i].name, cells[i + 1].name) for i in range(num_cells - 1)
    )
    return NetworkTopology(
        name=name, cells=tuple(cells), edges=edges, description=description
    )


def ring_topology(
    name: str,
    num_cells: int,
    *,
    cells_per_ta: int = 2,
    tas_per_region: int = 2,
    prefix: str = "c",
    description: str = "",
) -> NetworkTopology:
    """A closed loop of cells — an orbital road or city ring."""
    line = line_topology(
        name,
        num_cells,
        cells_per_ta=cells_per_ta,
        tas_per_region=tas_per_region,
        prefix=prefix,
        description=description,
    )
    if num_cells < 3:
        return line
    wrap = (line.cells[-1].name, line.cells[0].name)
    return NetworkTopology(
        name=name,
        cells=line.cells,
        edges=line.edges + (wrap,),
        description=description,
    )


def grid_topology(
    name: str,
    rows: int,
    cols: int,
    *,
    rows_per_region: int = 2,
    prefix: str = "c",
    description: str = "",
) -> NetworkTopology:
    """A ``rows x cols`` 4-neighbor grid; each row is one tracking area.

    Rows group into regions ``rows_per_region`` at a time — the dense
    metro coverage shape the ``metro-commute`` preset uses.
    """
    if rows < 1 or cols < 1 or rows_per_region < 1:
        raise ValueError("rows, cols and rows_per_region must be >= 1")
    cells = []
    for r in range(rows):
        for c in range(cols):
            cells.append(
                Cell(
                    name=f"{prefix}{r}{c}",
                    tracking_area=f"{prefix}ta{r}",
                    region=f"{prefix}r{r // rows_per_region}",
                )
            )
    edges: list[tuple[str, str]] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((f"{prefix}{r}{c}", f"{prefix}{r}{c + 1}"))
            if r + 1 < rows:
                edges.append((f"{prefix}{r}{c}", f"{prefix}{r + 1}{c}"))
    return NetworkTopology(
        name=name, cells=tuple(cells), edges=tuple(edges), description=description
    )
