"""Built-in topology scenarios, registered in :data:`TOPOLOGIES`.

Each preset pairs with a workload preset of the same flavor — the cohort
names in ``mobility`` / ``placements`` match that workload's cohorts, so
``Workload("city-day", topology="metro-commute")`` works out of the box
(unmatched cohorts simply fall back to the scenario defaults, so any
population runs on any topology):

* ``metro-commute`` — a 3x3 metro grid with tidal commuter flows into
  the downtown cells (pairs with ``city-day``);
* ``stadium-cell-kill`` — a stadium cell ringed by four neighbors; the
  stadium cell dies mid-match and the crowd mass-re-registers at the
  ring (pairs with ``stadium-flash-crowd``);
* ``region-degrade`` — a two-region corridor whose second regional core
  browns out for an hour (pairs with ``city-day``);
* ``firmware-storm-by-ta`` — an 8-cell ring over 4 tracking areas with
  a rolling firmware reboot wave, TA by TA (pairs with
  ``iot-firmware-storm``);
* ``motorway`` — an 8-cell corridor a convoy sweeps end to end, emitting
  the handover storm topologically (the ``handover-storm`` workload's
  default topology).
"""

from __future__ import annotations

from ..api.registry import register_topology
from .chaos import CellOutage, ChaosSchedule, FirmwareStorm, RegionDegrade
from .graph import (
    Cell,
    NetworkTopology,
    grid_topology,
    line_topology,
    ring_topology,
)
from .mobility import CommuterMobility, RandomWaypointMobility, StationaryMobility
from .scenario import TopologyScenario

__all__ = [
    "METRO_COMMUTE",
    "STADIUM_CELL_KILL",
    "REGION_DEGRADE",
    "FIRMWARE_STORM_BY_TA",
    "MOTORWAY",
]

_HOUR = 3600.0


METRO_COMMUTE = TopologyScenario(
    name="metro-commute",
    description="3x3 metro grid; phones commute into downtown, cars roam",
    topology=grid_topology(
        "metro",
        3,
        3,
        rows_per_region=2,
        prefix="m",
        description="3x3 metro grid, one TA per row, two regional cores",
    ),
    default_mobility=StationaryMobility(),
    mobility={
        # city-day cohorts: phones ride the evening tidal flow home
        # (the run window opens at 17:00, so the 08:00 outbound leg has
        # already happened and only the return crossing lands in-window),
        # cars churn cell to cell, tablets stay camped.
        "phones": CommuterMobility(
            work_cells=("m11", "m12"),
            depart_hour=8.0,
            return_hour=17.5,
            transit_seconds=180.0,
            jitter_hours=0.75,
        ),
        "cars": RandomWaypointMobility(mean_dwell_seconds=900.0),
    },
    placements={
        # Homes on the grid's outer ring; downtown is where work is.
        "phones": ("m00", "m01", "m02", "m10", "m20", "m21", "m22"),
    },
)


def _stadium_topology() -> NetworkTopology:
    cells = (
        Cell("stadium", "ta-stadium", "metro"),
        Cell("north", "ta-ring", "metro"),
        Cell("east", "ta-ring", "metro"),
        Cell("south", "ta-ring", "metro"),
        Cell("west", "ta-ring", "metro"),
    )
    edges = (
        ("stadium", "north"),
        ("stadium", "east"),
        ("stadium", "south"),
        ("stadium", "west"),
        ("north", "east"),
        ("east", "south"),
        ("south", "west"),
        ("west", "north"),
    )
    return NetworkTopology(
        name="stadium",
        cells=cells,
        edges=edges,
        description="one stadium cell ringed by four neighbor cells",
    )


STADIUM_CELL_KILL = TopologyScenario(
    name="stadium-cell-kill",
    description=(
        "stadium cell dies mid-match; the crowd mass-re-registers at the "
        "four ring cells"
    ),
    topology=_stadium_topology(),
    default_mobility=StationaryMobility(),
    placements={
        # stadium-flash-crowd cohorts: the crowd is in the stadium,
        # the background is spread over the ring.
        "crowd": ("stadium",),
        "background": ("north", "east", "south", "west"),
    },
    chaos=ChaosSchedule(
        # The crowd's warped event mass peaks through the 18:45-19:15
        # ingress surge; the cell dies right then for 30 minutes — the
        # peak-load worst case.
        events=(
            CellOutage(
                cell="stadium", start=18 * _HOUR + 2700.0, duration=1800.0
            ),
        )
    ),
)


REGION_DEGRADE = TopologyScenario(
    name="region-degrade",
    description=(
        "two-region corridor; the second regional core runs at 40% "
        "capacity for an hour"
    ),
    topology=line_topology(
        "twin-region",
        8,
        cells_per_ta=2,
        tas_per_region=2,
        prefix="d",
        description="8-cell corridor split across two regional cores",
    ),
    default_mobility=RandomWaypointMobility(mean_dwell_seconds=2400.0),
    chaos=ChaosSchedule(
        events=(
            RegionDegrade(
                region="dr1",
                start=18 * _HOUR,
                duration=1 * _HOUR,
                capacity_factor=0.4,
            ),
        )
    ),
)


FIRMWARE_STORM_BY_TA = TopologyScenario(
    name="firmware-storm-by-ta",
    description=(
        "8-cell ring over 4 tracking areas; a firmware push reboots the "
        "fleet TA by TA, 10 minutes apart"
    ),
    topology=ring_topology(
        "iot-ring",
        8,
        cells_per_ta=2,
        tas_per_region=2,
        prefix="f",
        description="8-cell ring, 4 tracking areas, 2 regional cores",
    ),
    default_mobility=StationaryMobility(),
    chaos=ChaosSchedule(
        # Maintenance push at 03:20 — the same instant the
        # iot-firmware-storm workload's recovery shape fires, so the
        # event-rate storm and the topology reboot wave line up.
        events=(
            FirmwareStorm(
                start=3 * _HOUR + 1200.0,
                stagger_seconds=600.0,
                reboot_seconds=30.0,
                spread_seconds=120.0,
            ),
        )
    ),
)


MOTORWAY = TopologyScenario(
    name="motorway",
    description=(
        "8-cell motorway corridor; the convoy sweeps end to end around "
        "08:40, raining handovers and TAUs"
    ),
    topology=line_topology(
        "motorway",
        8,
        cells_per_ta=2,
        tas_per_region=2,
        prefix="mw",
        description="8-cell motorway corridor, 4 TAs, 2 regional cores",
    ),
    default_mobility=StationaryMobility(),
    mobility={
        # handover-storm cohorts: the convoy drives the corridor within
        # the 08:00-10:00 run window (out ~08:36, back ~09:24); the
        # ambient phones stay camped.
        "convoy": CommuterMobility(
            work_cells=("mw06", "mw07"),
            depart_hour=8.6,
            return_hour=9.4,
            transit_seconds=90.0,
            jitter_hours=0.25,
        ),
    },
    placements={
        "convoy": ("mw00", "mw01"),
    },
)


register_topology("metro-commute", aliases=("metro",))(METRO_COMMUTE)
register_topology("stadium-cell-kill", aliases=("cell-kill",))(STADIUM_CELL_KILL)
register_topology("region-degrade", aliases=("brownout",))(REGION_DEGRADE)
register_topology("firmware-storm-by-ta", aliases=("ta-storm",))(FIRMWARE_STORM_BY_TA)
register_topology("motorway", aliases=("corridor",))(MOTORWAY)
