"""Topology scenarios: a graph + mobility assignment + chaos schedule.

A :class:`TopologyScenario` is the unit the registry hands out
(``Workload(..., topology="stadium-cell-kill")``): one
:class:`~repro.topology.graph.NetworkTopology` plus per-cohort mobility
models, per-cohort cell placements, and a
:class:`~repro.topology.chaos.ChaosSchedule`.  Cohort-level settings
(``Cohort.cells`` / ``Cohort.mobility``) always win over the scenario's
per-cohort maps, which win over the scenario defaults — so one scenario
composes with many populations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..api.registry import TOPOLOGIES
from .chaos import NO_CHAOS, ChaosSchedule
from .graph import NetworkTopology
from .mobility import MobilityModel, StationaryMobility, get_mobility

__all__ = ["TopologyScenario", "get_topology"]


@dataclass(frozen=True)
class TopologyScenario:
    """One named topology setup a workload can run against.

    Attributes
    ----------
    topology:
        The cell graph.
    default_mobility:
        Model for cohorts with no explicit assignment.
    mobility:
        Per-cohort-name model overrides.
    placements:
        Per-cohort-name home-cell candidate sets (cell names); cohorts
        not listed draw homes uniformly over every cell.
    chaos:
        Failure schedule injected into runs (override per run with
        ``Workload(chaos=...)``).
    """

    name: str
    topology: NetworkTopology
    description: str = ""
    default_mobility: MobilityModel = field(default_factory=StationaryMobility)
    mobility: dict = field(default_factory=dict)
    placements: dict = field(default_factory=dict)
    chaos: ChaosSchedule = NO_CHAOS

    def __post_init__(self) -> None:
        object.__setattr__(self, "mobility", dict(self.mobility))
        object.__setattr__(
            self,
            "placements",
            {name: tuple(cells) for name, cells in self.placements.items()},
        )
        for cohort_name, cells in self.placements.items():
            if not cells:
                raise ValueError(
                    f"placement for cohort {cohort_name!r} must name >= 1 cell"
                )
            for cell in cells:
                self.topology.index(cell)
        for model in self.mobility.values():
            if not isinstance(model, MobilityModel):
                raise TypeError(
                    f"mobility overrides must be MobilityModel instances; "
                    f"got {type(model).__name__}"
                )
        self.chaos.validate(self.topology)

    # ------------------------------------------------------------------
    def mobility_for(self, cohort) -> MobilityModel:
        """The mobility model governing ``cohort`` (cohort field wins)."""
        if getattr(cohort, "mobility", None) is not None:
            return get_mobility(cohort.mobility)
        if cohort.name in self.mobility:
            return self.mobility[cohort.name]
        return self.default_mobility

    def placement_for(self, cohort) -> tuple[int, ...]:
        """Home-cell candidate codes for ``cohort`` (cohort field wins)."""
        cells = getattr(cohort, "cells", ()) or self.placements.get(
            cohort.name, ()
        )
        if cells:
            return tuple(self.topology.index(name) for name in cells)
        return tuple(range(self.topology.num_cells))

    def with_chaos(self, chaos: ChaosSchedule) -> "TopologyScenario":
        from dataclasses import replace

        return replace(self, chaos=chaos.validate(self.topology))

    def summary(self) -> str:
        lines = [self.topology.summary()]
        if self.description:
            lines.insert(0, self.description)
        assigned = sorted(self.mobility)
        lines.append(
            f"mobility: default {type(self.default_mobility).__name__}"
            + (
                "; " + ", ".join(
                    f"{name}={type(self.mobility[name]).__name__}"
                    for name in assigned
                )
                if assigned
                else ""
            )
        )
        lines.append(f"chaos: {self.chaos.summary()}")
        return "\n".join(lines)


def get_topology(
    source: "str | NetworkTopology | TopologyScenario",
) -> TopologyScenario:
    """Resolve a topology scenario by registry name (or wrap/pass through)."""
    if isinstance(source, TopologyScenario):
        return source
    if isinstance(source, NetworkTopology):
        return TopologyScenario(name=source.name, topology=source)
    import repro.topology.presets  # noqa: F401  (registers the built-ins)

    return TOPOLOGIES.get(source)
