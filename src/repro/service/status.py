"""Live telemetry snapshots of a running traffic service.

A :class:`ServiceStatus` is one self-contained, JSON-able observation:
progress counters with the conservation invariant spelled out, rates,
queue depths, per-shard cursors and lag, worker health, degradation
state, pacing slippage, and (when a rolling gate is attached) the
current fidelity verdict with per-check deltas.  The service emits one
per ``status_every`` interval and one final snapshot; ``repro serve
--status-json`` appends them as JSON lines, which is what the CI soak
job asserts against.

JSONL schema
------------
Every line carries ``schema_version`` so downstream consumers can
evolve safely:

``repro/service-status/v2``
    The current schema.  All v1 fields, now with precise type
    annotations, plus ``schema_version`` itself and ``metrics`` — a
    snapshot of the process :class:`~repro.obs.MetricsRegistry`
    (``repro/metrics/v1`` entries: stage spans, pacing slippage
    counters, ring/shed gauges...) when observability is enabled,
    ``null`` otherwise.

``v1`` (historic, unversioned)
    Lines written before the observability layer carried no
    ``schema_version`` key and no ``metrics`` field; consumers should
    treat a missing key as v1.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from ..analysis.schemas import SERVICE_STATUS_V2

__all__ = ["ServiceStatus", "STATUS_SCHEMA_VERSION"]

#: Schema tag stamped on every JSONL status line (see module docstring).
STATUS_SCHEMA_VERSION = SERVICE_STATUS_V2


@dataclass
class ServiceStatus:
    """One observation of a :class:`~repro.service.service.TrafficService`.

    Conservation invariant (checked by the service every snapshot)::

        merged_total == delivered + shed_total + pending

    where ``pending`` counts events merged but not yet consumed (in the
    ring).  ``buffered`` (decoded inside the merger, not yet merged) and
    producer-side queue depths are reported separately — they are
    upstream of ``merged_total``.
    """

    state: str
    elapsed: float
    merged_total: int
    delivered: int
    shed_total: int
    pending: int
    buffered: int
    events_per_second: float
    speed: float
    degradation_level: int
    shed_cohorts: tuple[str, ...] = ()
    shed_by_cohort: dict[str, int] = field(default_factory=dict)
    shed_episodes: int = 0
    ring_depth: int = 0
    ring_capacity: int = 0
    throttled: bool = False
    shard_cursors: tuple[int, ...] = ()
    shard_lag: dict[str, int] = field(default_factory=dict)
    workers: list[dict] = field(default_factory=list)
    slipped_events: int = 0
    slipped_seconds: float = 0.0
    clock_jumps: int = 0
    incidents: list[str] = field(default_factory=list)
    gate: dict | None = None
    metrics: dict | None = None
    schema_version: str = STATUS_SCHEMA_VERSION

    @property
    def accounted(self) -> bool:
        """Whether the conservation invariant holds exactly."""
        return self.merged_total == self.delivered + self.shed_total + self.pending

    def as_dict(self) -> dict:
        data = asdict(self)
        data["accounted"] = self.accounted
        data["shed_cohorts"] = list(self.shed_cohorts)
        data["shard_cursors"] = list(self.shard_cursors)
        return data

    def to_json_line(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True)

    def summary(self) -> str:
        """One human-readable status line (the ``repro serve`` ticker)."""
        gate = ""
        if self.gate is not None:
            gate = f" gate={'PASS' if self.gate.get('passed') else 'FAIL'}"
        shed = (
            f" shed={self.shed_total} (level {self.degradation_level})"
            if self.shed_total or self.degradation_level
            else ""
        )
        return (
            f"[{self.elapsed:8.1f}s] {self.state:<8} "
            f"{self.delivered} delivered @ {self.events_per_second:.0f} ev/s"
            f" ring {self.ring_depth}/{self.ring_capacity}"
            f"{shed}{gate}"
        )
