"""Deterministic load shedding with exact accounting.

When backpressure persists — the event ring stays above its high
watermark past a deadline — an always-on service must shed load rather
than grow memory or silently stall.  The policy here is deliberately
boring and auditable:

* **what** gets shed is a fixed per-cohort priority order (first name
  sheds first), escalating one cohort at a time each time the deadline
  elapses again while the ring is still high;
* **when** shedding stops is equally fixed: the moment the ring drains
  below its *low* watermark every cohort is restored at once;
* **how much** was shed is counted exactly, per cohort, in a
  :class:`ShedAccount` — the service's conservation invariant
  ``merged == delivered + shed + pending`` is checked against it, so a
  shed event can never be confused with a lost one.

Shed events still pass through the validating tee first (fidelity is
judged on what the generator produced) and bypass pacing entirely —
dropping them fast is what drains the backlog.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DegradationPolicy", "DegradationController", "ShedAccount"]


@dataclass(frozen=True)
class DegradationPolicy:
    """Configuration for deterministic per-cohort load shedding.

    ``degrade_after`` is the patience in *wall seconds*: how long the
    ring may sit above its high watermark before the first cohort is
    shed (and between escalation steps).  ``shed_order`` lists cohort
    names first-to-shed first; names absent from the population are
    rejected at resolve time, and cohorts absent from the order are
    appended in population order (they shed last).  An infinite
    ``degrade_after`` disables shedding.
    """

    degrade_after: float = 2.0
    shed_order: tuple = ()

    def resolve_order(self, cohort_names) -> tuple:
        """The full escalation order over ``cohort_names``."""
        names = list(cohort_names)
        unknown = [name for name in self.shed_order if name not in names]
        if unknown:
            raise ValueError(
                f"shed_order names unknown cohorts {unknown}; "
                f"population has {names}"
            )
        ordered = list(self.shed_order)
        ordered.extend(name for name in names if name not in ordered)
        return tuple(ordered)


class DegradationController:
    """The runtime state machine applying a :class:`DegradationPolicy`.

    Fed once per service tick with the ring's throttle state; exposes
    the current shed set.  Escalation is stepwise — one more cohort per
    elapsed ``degrade_after`` while still throttled — and recovery is
    total and immediate once the ring reports un-throttled (which, via
    the ring's hysteresis, means depth fell to the low watermark).
    """

    def __init__(self, policy: DegradationPolicy, cohort_names) -> None:
        self.policy = policy
        self.order = policy.resolve_order(cohort_names)
        self.level = 0
        self._deadline: float | None = None

    @property
    def shedding(self) -> frozenset:
        return frozenset(self.order[: self.level])

    def update(self, throttled: bool, now: float) -> frozenset:
        """Advance the state machine; returns the cohorts to shed."""
        patience = self.policy.degrade_after
        if not throttled:
            self.level = 0
            self._deadline = None
        elif patience != float("inf"):
            if self._deadline is None:
                self._deadline = now + patience
            elif now >= self._deadline and self.level < len(self.order):
                self.level += 1
                self._deadline = now + patience
        return self.shedding


class ShedAccount:
    """Exact per-cohort tally of shed events."""

    def __init__(self) -> None:
        self.by_cohort: dict[str, int] = {}
        self.total = 0
        self.episodes = 0
        self._was_shedding = False

    def record(self, cohort: str, count: int = 1) -> None:
        self.by_cohort[cohort] = self.by_cohort.get(cohort, 0) + count
        self.total += count

    def note_level(self, level: int) -> None:
        """Track distinct shedding episodes (level 0 → >0 transitions)."""
        shedding = level > 0
        if shedding and not self._was_shedding:
            self.episodes += 1
        self._was_shedding = shedding

    def as_dict(self) -> dict:
        return {
            "total": self.total,
            "episodes": self.episodes,
            "by_cohort": dict(sorted(self.by_cohort.items())),
        }
