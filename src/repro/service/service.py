"""The always-on traffic service: supervised, paced, degradable.

:class:`TrafficService` turns a batch :class:`~repro.workload.Workload`
into a long-running open-loop traffic source.  One single-threaded
control loop ties the pillars together:

1. **produce** — a :class:`~repro.service.supervisor.ShardSupervisor`
   streams every generation shard as resumable chunks from supervised
   forked workers, restarting crashed or hung producers from their
   durable cursors;
2. **merge** — the incremental
   :class:`~repro.service.merge.ChunkMerger` emits the globally ordered
   timeline exactly as the batch merge would, feeding a bounded
   :class:`~repro.service.ring.EventRing`;
3. **pace** — events release on a wall-clock schedule at ``speed``×
   real time (hardened like :func:`~repro.workload.timeline.pace`:
   backward clock jumps shift the anchor, overdue catch-up bursts are
   capped and declared slippage);
4. **degrade** — when the ring stays above its high watermark past the
   :class:`~repro.service.degradation.DegradationPolicy` deadline, the
   service sheds whole cohorts deterministically with exact accounting
   and recovers when the ring drains;
5. **observe** — every merged event tees through the attached
   :class:`~repro.validate.gate.RollingGate` *before* shedding, and
   delivered events drive the incremental
   :class:`~repro.mcn.simulator.SimulationRun` and/or a user ``sink``.

The conservation invariant ``merged == delivered + shed + pending`` is
re-checked on every status snapshot; a violation raises — lost events
are a bug, never a statistic.

With ``loop=True`` the timeline repeats when exhausted: cycle ``k``'s
events are shifted by ``k`` timeline-spans (the paced schedule stays
continuous) and UE ids are cycle-tagged so validators and the simulator
see fresh streams, not impossible continuations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from ..mcn.simulator import MCNSimulator
from ..obs import (
    enabled as _obs_enabled,
    exclude as _exclude,
    metrics as _obs_metrics,
    span as _span,
)
from .degradation import DegradationController, DegradationPolicy, ShedAccount
from .faults import BurstScale, FaultPlan, KillWorker, StallConsumer
from .ring import EventRing
from .status import ServiceStatus
from .supervisor import ShardSupervisor

__all__ = ["TrafficService", "ServiceReport"]

#: Largest single sleep of the control loop — the reaction latency to
#: faults, runtime controls, and status deadlines while waiting.
_TICK = 0.05

#: Cap on events released per :meth:`TrafficService._consume_tick` so
#: the control loop (faults, controls, status) still runs between
#: batches even when the whole ring is overdue.
_TICK_EVENTS = 2048


@dataclass
class ServiceReport:
    """Outcome of one :meth:`TrafficService.run`.

    ``status`` is the final telemetry snapshot; ``statuses`` every
    periodic snapshot emitted along the way (including the final one);
    ``simulation`` / ``scorecard`` are present when a simulator / gate
    was attached.
    """

    status: ServiceStatus
    statuses: list
    simulation: object | None = None
    scorecard: object | None = None

    @property
    def clean(self) -> bool:
        """Accounting exact, and the gate (when attached) passing."""
        return self.status.accounted and (
            self.scorecard is None or self.scorecard.passed
        )

    def as_dict(self) -> dict:
        return {
            "status": self.status.as_dict(),
            "clean": self.clean,
            "scorecard_passed": (
                None if self.scorecard is None else self.scorecard.passed
            ),
            "simulated_events": (
                None if self.simulation is None else self.simulation.num_events
            ),
        }


class TrafficService:
    """Pace a workload's merged timeline open-loop, indefinitely.

    Parameters mirror the pillars: producer shape (``num_workers``,
    ``chunk_events``, ``queue_chunks``), the bounded ring
    (``ring_events`` with watermark fractions), pacing (``speed``,
    ``max_burst``), ``degradation`` policy, ``faults`` plan, and the
    attached consumers (``gate``, ``simulator``, ``sink``).  ``clock``
    and ``sleep`` are injectable for deterministic tests.
    """

    def __init__(
        self,
        engine,
        *,
        speed: float = 1.0,
        loop: bool = False,
        num_workers: int = 2,
        chunk_events: int = 4096,
        queue_chunks: int = 8,
        ring_events: int = 65536,
        high_watermark: float = 0.75,
        low_watermark: float = 0.25,
        max_burst: "int | None" = 20000,
        degradation: "DegradationPolicy | None" = None,
        faults: "FaultPlan | None" = None,
        gate=None,
        simulator: "MCNSimulator | None" = None,
        sink=None,
        heartbeat_timeout: float = 5.0,
        max_restarts: int = 3,
        clock=time.monotonic,
        sleep=time.sleep,
    ) -> None:
        if speed <= 0:
            raise ValueError("speed must be positive")
        self.engine = engine
        self.loop = loop
        self.gate = gate
        self.sink = sink
        self.simulator = simulator
        self.clock = clock
        self.sleep = sleep
        self.max_burst = max_burst
        self.faults = faults if faults is not None else FaultPlan()
        self.degradation = (
            degradation if degradation is not None else DegradationPolicy()
        )
        self.shed = ShedAccount()
        self._ring = EventRing(
            ring_events,
            high_watermark=high_watermark,
            low_watermark=low_watermark,
        )
        self._controller = DegradationController(
            self.degradation,
            [cohort.name for cohort in engine.population.cohorts],
        )
        self._supervisor_kwargs = dict(
            num_workers=num_workers,
            chunk_events=chunk_events,
            queue_chunks=queue_chunks,
            heartbeat_timeout=heartbeat_timeout,
            max_restarts=max_restarts,
        )
        self.supervisor = ShardSupervisor(engine, **self._supervisor_kwargs)
        self._sim_run = None if simulator is None else simulator.start()

        # Runtime state
        self._speed = float(speed)
        self._paused = False
        self._stopped = False
        self._stall_until: float | None = None
        self._burst_factor = 1.0
        self._burst_until: float | None = None
        self.delivered = 0
        self.cycle = 0
        self._time_offset = 0.0
        self._first_ts: float | None = None
        self._last_ts = 0.0
        self._anchor_event: float | None = None
        self._anchor_wall = 0.0
        self._anchor_speed: float | None = None
        self._overdue_run = 0
        self.slipped_events = 0
        self.slipped_seconds = 0.0
        self.clock_jumps = 0
        self._incidents: list[str] = []
        self._last_wall: float | None = None
        self._t0: float | None = None
        self._rate_mark: "tuple[float, float] | None" = None
        self._merged_before = 0
        self._shed_sweeps = 0

        # Observability: refreshed once per control-loop pass; the
        # per-event gate/simulator timings accumulate in plain floats
        # and flush to the registry on each status() snapshot.
        self._obs_track = False
        self._gate_s = 0.0
        self._gate_n = 0
        self._sim_s = 0.0
        self._sim_n = 0

        # Tee mode is fixed per run (stream keys differ between modes):
        # with no sink everything stays columnar end to end; a sink
        # forces per-event decode so it receives event objects and the
        # gate tees with the same decoded keys.
        self._chunked = sink is None
        self._chunk_tee = self._chunked and (
            gate is None or hasattr(gate, "observe_chunk")
        )

    # ------------------------------------------------------------------
    # Runtime controls
    # ------------------------------------------------------------------
    def pause(self) -> None:
        """Stop consuming (producers keep filling up to the watermarks)."""
        self._paused = True

    def resume(self) -> None:
        self._paused = False

    def retarget(self, speed: float) -> None:
        """Change the replay speed; the schedule re-anchors at *now*."""
        if speed <= 0:
            raise ValueError("speed must be positive")
        self._speed = float(speed)

    def stop(self) -> None:
        """Ask the run loop to exit after the current tick."""
        self._stopped = True

    @property
    def speed(self) -> float:
        """The effective replay speed (base × any active burst factor)."""
        return self._speed * self._burst_factor

    # ------------------------------------------------------------------
    # Fault application
    # ------------------------------------------------------------------
    def _apply_fault(self, fault, now: float) -> None:
        if isinstance(fault, KillWorker):
            killed = self.supervisor.kill_worker(fault.worker)
            self._incidents.append(
                f"fault: killed worker {fault.worker}"
                if killed
                else f"fault: kill worker {fault.worker} (already retired)"
            )
        elif isinstance(fault, StallConsumer):
            self._stall_until = now + fault.duration
            self._incidents.append(
                f"fault: consumer stalled {fault.duration:g}s"
            )
        elif isinstance(fault, BurstScale):
            self._burst_factor = fault.factor
            self._burst_until = now + fault.duration
            self._incidents.append(
                f"fault: speed x{fault.factor:g} for {fault.duration:g}s"
            )

    # ------------------------------------------------------------------
    # Produce / merge side
    # ------------------------------------------------------------------
    def _relabel_chunk(self, chunk):
        """Apply the loop-cycle shift/tag (identity on cycle 0).

        ``_first_ts`` / ``_last_ts`` record the *unshifted* timeline span
        — :meth:`_maybe_wrap_cycle` derives each cycle's offset from it.
        """
        if self._first_ts is None:
            self._first_ts = float(chunk.times[0])
        self._last_ts = float(chunk.times[-1])
        if self.cycle == 0:
            return chunk
        return chunk.shifted(self._time_offset, self.cycle)

    def _pump(self) -> None:
        """Pull producer chunks and merged chunks up to the ring bounds."""
        with _span("merge.pump") as sp:
            ring = self._ring
            if not ring.throttled:
                # One chunk roughly fills chunk_events ring slots; budget
                # the pull so a tick never overshoots the ring.
                budget = max(
                    1,
                    ring.space // max(1, self.supervisor.chunk_events) + 1,
                )
                self.supervisor.pump(budget)
            pushed = 0
            merger = self.supervisor.merger
            while ring.space:
                chunks = merger.pop_ready_chunks(ring.space)
                if not chunks:
                    break
                for chunk in chunks:
                    chunk = self._relabel_chunk(chunk)
                    ring.push(chunk, chunk.num_events)
                    pushed += chunk.num_events
            sp.add_events(pushed)

    def _maybe_wrap_cycle(self, cycle_events: int) -> bool:
        """Restart the timeline when looping; True if a new cycle began."""
        if not self.loop or self._stopped:
            return False
        if cycle_events == 0 or self._first_ts is None:
            return False  # an empty cycle would loop forever
        span = max(self._last_ts - self._first_ts, 0.0)
        self._time_offset += span + 1e-3
        self.cycle += 1
        self.supervisor = ShardSupervisor(
            self.engine, **self._supervisor_kwargs
        )
        self._incidents.append(f"timeline exhausted; starting cycle {self.cycle}")
        return True

    # ------------------------------------------------------------------
    # Consume side
    # ------------------------------------------------------------------
    def _tee(self, event) -> None:
        if self.gate is None:
            return
        if self._obs_track:
            t0 = perf_counter()
            self.gate.observe_event(
                event.timestamp, (event.cohort, event.ue_id), event.event
            )
            dt = perf_counter() - t0
            self._gate_s += dt
            self._gate_n += 1
            _exclude(dt)
        else:
            self.gate.observe_event(
                event.timestamp, (event.cohort, event.ue_id), event.event
            )

    def _deliver(self, event) -> None:
        if self._sim_run is not None:
            if self._obs_track:
                t0 = perf_counter()
                self._sim_run.offer(event)
                dt = perf_counter() - t0
                self._sim_s += dt
                self._sim_n += 1
                _exclude(dt)
            else:
                self._sim_run.offer(event)
        if self.sink is not None:
            self.sink(event)
        self.delivered += 1

    def _pace_due(self, event_ts: float, now: float) -> float:
        """Wall-clock release time for ``event_ts`` (re-anchoring lazily)."""
        speed = self.speed
        if self._anchor_event is None or self._anchor_speed != speed:
            self._anchor_event = event_ts
            self._anchor_wall = now
            self._anchor_speed = speed
            self._overdue_run = 0
        if speed == float("inf"):
            return now
        return self._anchor_wall + (event_ts - self._anchor_event) / speed

    def _note_clock(self, now: float) -> None:
        if self._last_wall is not None and now < self._last_wall:
            jump = self._last_wall - now
            self._anchor_wall -= jump
            self.clock_jumps += 1
            if self._obs_track:
                _obs_metrics().counter("pace.clock_jumps").inc()
        self._last_wall = now

    def _tee_chunk(self, chunk) -> None:
        """Tee a chunk through the gate in the run's fixed tee mode."""
        if self.gate is None:
            return
        if self._chunk_tee:
            if self._obs_track:
                t0 = perf_counter()
                self.gate.observe_chunk(chunk)
                dt = perf_counter() - t0
                self._gate_s += dt
                self._gate_n += chunk.num_events
                _exclude(dt)
            else:
                self.gate.observe_chunk(chunk)
        else:
            for event in chunk.decode():
                self._tee(event)

    def _deliver_chunk(self, chunk) -> None:
        """Columnar delivery (no sink by construction of ``_chunked``)."""
        if self._sim_run is not None:
            if self._obs_track:
                t0 = perf_counter()
                self._sim_run.offer_chunk(chunk)
                dt = perf_counter() - t0
                self._sim_s += dt
                self._sim_n += chunk.num_events
                _exclude(dt)
            else:
                self._sim_run.offer_chunk(chunk)
        self.delivered += chunk.num_events

    @staticmethod
    def _shed_codes(tables, shedding) -> np.ndarray:
        """Cohort codes of the shed set known to ``tables`` (sorted)."""
        table = tables._cohort_code
        return np.asarray(
            sorted(table[name] for name in shedding if name in table),
            dtype=np.int32,
        )

    def _record_shed(self, chunk) -> None:
        names = chunk.tables.cohort_names
        counts = np.bincount(chunk.cohorts, minlength=len(names))
        for code, count in enumerate(counts.tolist()):
            if count:
                self.shed.record(names[code], count)

    def _shed_sweep(self) -> bool:
        """Drop shed-cohort events at the ring head, unpaced.

        Shed events bypass pacing entirely — draining the backlog fast
        is the point — and they run even while the consumer is stalled
        or paused, which is exactly when degradation matters.  The drop
        is columnar: the head chunk's leading run of shed-cohort events
        is teed, tallied per cohort, and cut in one slice.
        """
        shedding = self._controller.shedding
        progressed = False
        while shedding:
            head = self._ring.peek()
            if head is None:
                break
            n = head.num_events
            if n == 0:
                self._ring.pop()
                continue
            codes = self._shed_codes(head.tables, shedding)
            if not codes.size:
                break
            mask = np.isin(head.cohorts, codes)
            if not mask[0]:
                break
            run = n if mask.all() else int(np.argmin(mask))
            prefix = head if run == n else head.slice(0, run)
            self._tee_chunk(prefix)
            self._record_shed(prefix)
            progressed = True
            if run == n:
                self._ring.pop()
            else:
                self._ring.replace_head(head.slice(run, n), consumed=run)
                break
        if progressed:
            self._shed_sweeps += 1
        return progressed

    def _consume_tick(self, now: float) -> bool:
        """Deliver/shed what is due; returns True if progress was made.

        Due events release in batches of up to ``_TICK_EVENTS`` per
        call — one control-loop pass per *event* would cap throughput
        at the loop's overhead and let producers outrun the consumer
        into spurious shedding.  The batch stops the moment the ring
        head is not yet due, so pacing granularity is unaffected.

        Under observability the batch is timed as ``ring.consume``;
        gate-tee and simulator-offer time inside it is measured by the
        per-event accumulators and excluded from its self time.
        """
        with _span("ring.consume") as sp:
            before = self.delivered + self.shed.total
            progressed = self._consume_batch(now)
            sp.add_events(self.delivered + self.shed.total - before)
        return progressed

    def _consume_batch(self, now: float) -> bool:
        progressed = self._shed_sweep()
        shedding = bool(self._controller.shedding)
        budget = _TICK_EVENTS
        ring = self._ring
        while budget > 0:
            if shedding and self._shed_sweep():
                progressed = True
            head = ring.peek()
            if head is None:
                return progressed
            n = head.num_events
            if n == 0:
                ring.pop()
                continue
            limit = min(n, budget)
            if shedding:
                # Never deliver a shed-cohort event: cut the due slice
                # at the first one (the sweep above cleared any leading
                # run, so the cut is at least one event in).
                codes = self._shed_codes(head.tables, self._controller.shedding)
                if codes.size:
                    mask = np.isin(head.cohorts[:limit], codes)
                    if mask.any():
                        limit = int(np.argmax(mask))
            delay = self._pace_due(float(head.times[0]), now) - now
            if delay > 0:
                self._overdue_run = 0
                if progressed:
                    return True
                self.sleep(min(delay, _TICK))
                return True
            processed, blocked = self._process_slice(head, limit, now)
            if processed:
                progressed = True
                budget -= processed
                if processed == n:
                    ring.pop()
                else:
                    ring.replace_head(
                        head.slice(processed, n), consumed=processed
                    )
            if self._stopped:  # a sink may stop() mid-batch
                return True
            if blocked:
                return True
        return progressed

    def _process_slice(self, head, limit: int, now: float) -> tuple:
        """Release the head chunk's due events (up to ``limit``).

        Returns ``(processed, blocked)``; ``blocked`` means the next
        event is not yet due.  The columnar path computes the whole due
        schedule in one expression — bit-identical to the per-event
        ``_pace_due`` arithmetic — and re-vectorizes after each
        max-burst crossing, because declaring slippage re-anchors the
        schedule exactly as the per-event loop did.
        """
        if not self._chunked:
            return self._process_slice_events(head, limit, now)
        processed = 0
        speed = self._anchor_speed
        max_burst = self.max_burst
        infinite = speed == float("inf")
        while processed < limit:
            if infinite:
                take = limit - processed
                due = None
            else:
                due = (
                    self._anchor_wall
                    + (head.times[processed:limit] - self._anchor_event)
                    / speed
                )
                take = int(np.searchsorted(due, now, side="right"))
                if take == 0:
                    self._overdue_run = 0
                    return processed, True
            crossed = False
            if (
                max_burst is not None
                and not infinite
                and self._overdue_run + take >= max_burst
            ):
                take = max_burst - self._overdue_run
                crossed = True
            part = head.slice(processed, processed + take)
            self._tee_chunk(part)
            if crossed:
                due_cross = float(due[take - 1])
                self.slipped_events += max_burst
                self.slipped_seconds += now - due_cross
                if self._obs_track:
                    registry = _obs_metrics()
                    registry.counter("pace.slipped_events").inc(max_burst)
                    registry.counter("pace.slipped_seconds").inc(now - due_cross)
                self._anchor_wall = now - (
                    (float(head.times[processed + take - 1]) - self._anchor_event)
                    / speed
                )
                self._overdue_run = 0
            else:
                self._overdue_run += take
            self._deliver_chunk(part)
            processed += take
            if not crossed and processed < limit:
                # searchsorted already cut at the first not-yet-due event.
                self._overdue_run = 0
                return processed, True
        return processed, False

    def _process_slice_events(self, head, limit: int, now: float) -> tuple:
        """Per-event release (sink mode): the legacy loop, verbatim."""
        processed = 0
        for event in head.decode():
            if processed >= limit:
                break
            due = self._pace_due(event.timestamp, now)
            delay = due - now
            if delay > 0:
                self._overdue_run = 0
                return processed, True
            self._tee(event)
            self._overdue_run += 1
            if (
                self.max_burst is not None
                and self._overdue_run >= self.max_burst
                and self._anchor_speed not in (None, float("inf"))
            ):
                self.slipped_events += self._overdue_run
                self.slipped_seconds += -delay
                if self._obs_track:
                    registry = _obs_metrics()
                    registry.counter("pace.slipped_events").inc(self._overdue_run)
                    registry.counter("pace.slipped_seconds").inc(-delay)
                self._anchor_wall = now - (
                    (event.timestamp - self._anchor_event)
                    / self._anchor_speed
                )
                self._overdue_run = 0
            self._deliver(event)
            processed += 1
            if self._stopped:
                return processed, False
        return processed, False

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def status(self, state: str = "running") -> ServiceStatus:
        now = self.clock()
        elapsed = now - self._t0 if self._t0 is not None else 0.0
        merger = self.supervisor.merger
        consumed = self.delivered + self.shed.total
        if self._rate_mark is not None and now > self._rate_mark[0]:
            rate = (consumed - self._rate_mark[1]) / (now - self._rate_mark[0])
        else:
            rate = 0.0
        self._rate_mark = (now, consumed)
        lag = {
            str(shard): merger.buffered_of(shard)
            for shard in range(merger.num_shards)
            if merger.buffered_of(shard)
        }
        gate_poll = self.gate.poll() if self.gate is not None else None
        metrics = self._publish_metrics(merger) if _obs_enabled() else None
        status = ServiceStatus(
            state=state,
            elapsed=elapsed,
            merged_total=self._merged_total(),
            delivered=self.delivered,
            shed_total=self.shed.total,
            pending=len(self._ring),
            buffered=merger.buffered,
            events_per_second=rate,
            speed=self.speed,
            degradation_level=self._controller.level,
            shed_cohorts=tuple(sorted(self._controller.shedding)),
            shed_by_cohort=dict(sorted(self.shed.by_cohort.items())),
            shed_episodes=self.shed.episodes,
            ring_depth=len(self._ring),
            ring_capacity=self._ring.capacity,
            throttled=self._ring.throttled,
            shard_cursors=merger.cursors,
            shard_lag=lag,
            workers=self.supervisor.worker_status(),
            slipped_events=self.slipped_events,
            slipped_seconds=round(self.slipped_seconds, 6),
            clock_jumps=self.clock_jumps,
            incidents=list(self._incidents),
            gate=gate_poll,
            metrics=metrics,
        )
        if not status.accounted:
            raise RuntimeError(
                "event accounting violated: "
                f"merged={status.merged_total} != delivered={status.delivered}"
                f" + shed={status.shed_total} + pending={status.pending}"
            )
        return status

    def _merged_total(self) -> int:
        return self._merged_before + self.supervisor.merger.merged_total

    def _publish_metrics(self, merger) -> dict:
        """Flush accumulators into the registry and snapshot it.

        Called from :meth:`status` only when observability is enabled;
        the snapshot rides on the status line (and the soak JSONL) so
        stage metrics travel with every telemetry observation.
        """
        registry = _obs_metrics()
        if self._gate_n:
            registry.record_span(
                "gate.observe", self._gate_s, events=self._gate_n
            )
            self._gate_s = 0.0
            self._gate_n = 0
        if self._sim_n:
            registry.record_span(
                "simulate.offer", self._sim_s, events=self._sim_n
            )
            self._sim_s = 0.0
            self._sim_n = 0
        # Pacing slippage counters exist (at zero) from the first
        # snapshot so JSONL consumers can rely on the keys.
        registry.counter("pace.slipped_events")
        registry.counter("pace.slipped_seconds")
        registry.counter("pace.clock_jumps")
        registry.gauge("merge.buffered").set(merger.buffered)
        registry.gauge("ring.depth").set(len(self._ring))
        registry.gauge("ring.throttle_episodes").set(self._ring.throttle_episodes)
        registry.gauge("ring.shed_sweeps").set(self._shed_sweeps)
        registry.gauge("ring.shed_total").set(self.shed.total)
        registry.gauge("ring.shed_episodes").set(self.shed.episodes)
        for cohort, count in self.shed.by_cohort.items():
            registry.gauge("ring.shed_events", cohort=cohort).set(count)
        registry.gauge("service.delivered").set(self.delivered)
        registry.gauge("service.merged_total").set(self._merged_total())
        return registry.snapshot()

    # ------------------------------------------------------------------
    def run(
        self,
        *,
        duration: "float | None" = None,
        max_events: "int | None" = None,
        status_every: "float | None" = None,
        on_status=None,
    ) -> ServiceReport:
        """Run the service loop until done, ``duration``, or :meth:`stop`.

        ``status_every`` emits a :class:`ServiceStatus` snapshot every
        that-many wall seconds (each passed to ``on_status`` when
        given); a final snapshot is always taken.  Returns a
        :class:`ServiceReport` carrying the final status, the attached
        simulator's report, and the gate's *final* scorecard.
        """
        self._t0 = self.clock()
        self._rate_mark = (self._t0, 0.0)
        self._merged_before = 0
        statuses: list[ServiceStatus] = []
        next_status = (
            self._t0 + status_every if status_every is not None else None
        )
        next_maintain = self._t0
        state = "running"
        try:
            self.supervisor.start()
            while True:
                self._obs_track = _obs_enabled()
                now = self.clock()
                self._note_clock(now)
                elapsed = now - self._t0
                for fault in self.faults.pop_due(elapsed):
                    self._apply_fault(fault, now)
                if self._burst_until is not None and now >= self._burst_until:
                    self._burst_factor = 1.0
                    self._burst_until = None
                if now >= next_maintain:
                    self._incidents.extend(self.supervisor.maintain())
                    next_maintain = now + _TICK
                self._pump()
                self._controller.update(self._ring.throttled, now)
                self.shed.note_level(self._controller.level)

                if next_status is not None and now >= next_status:
                    snapshot = self.status()
                    statuses.append(snapshot)
                    if on_status is not None:
                        on_status(snapshot)
                    next_status = now + status_every

                if self._stopped:
                    state = "stopped"
                    break
                if duration is not None and elapsed >= duration:
                    state = "stopped"
                    break
                if (
                    max_events is not None
                    and self.delivered + self.shed.total >= max_events
                ):
                    state = "stopped"
                    break
                if self.supervisor.exhausted() and len(self._ring) == 0:
                    cycle_total = self.supervisor.merger.merged_total
                    if not self._maybe_wrap_cycle(cycle_total):
                        state = "done"
                        break
                    self._merged_before += cycle_total
                    self.supervisor.start()
                    continue

                stalled = (
                    self._stall_until is not None and now < self._stall_until
                )
                if self._stall_until is not None and now >= self._stall_until:
                    self._stall_until = None
                    self._incidents.append("fault: consumer stall ended")
                if self._paused or stalled:
                    if not self._shed_sweep():
                        self.sleep(_TICK)
                    continue
                if not self._consume_tick(now):
                    # Nothing due and nothing shed: idle briefly.
                    self.sleep(min(_TICK, 0.005))
        finally:
            self.supervisor.shutdown()
        final = self.status(state=state)
        statuses.append(final)
        if on_status is not None:
            on_status(final)
        scorecard = (
            self.gate.scorecard(final=True) if self.gate is not None else None
        )
        simulation = (
            self._sim_run.finalize() if self._sim_run is not None else None
        )
        return ServiceReport(
            status=final,
            statuses=statuses,
            simulation=simulation,
            scorecard=scorecard,
        )
