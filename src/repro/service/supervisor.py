"""Supervision of chunk-producing shard workers.

One :class:`ShardSupervisor` owns the producer side of a service run:
it partitions the workload's fixed shard plan across ``num_workers``
forked producers (shard ``i`` → worker ``i % num_workers``), each
streaming :class:`~repro.workload.timeline.TimelineChunk` items through
the bounded queues of
:func:`~repro.core.sharding.spawn_stream_worker`, and routes delivered
chunks into a :class:`~repro.service.merge.ChunkMerger`.

The merger's per-shard cursors are the durable restart state: when a
worker crashes (dead process, in-band error) or hangs (stale
heartbeat), the supervisor abandons its channel — dropping any
undelivered chunks — and respawns it with each owned shard's *current*
cursor, so the regenerated stream resumes exactly where delivery
stopped and the merged timeline is provably unchanged.  A worker that
keeps failing past ``max_restarts`` falls back to running its producer
generator inline in the supervisor's process: slower, but deterministic
and dependency-free (the same fallback serves platforms without
``fork`` and the ``num_workers=0`` debugging mode).
"""

from __future__ import annotations

import time
from collections import deque
from typing import Iterator

from ..core.sharding import fork_available, spawn_stream_worker
from .merge import SHARD_DONE, ChunkMerger

__all__ = ["ShardSupervisor"]


class _InlineHandle:
    """A producer generator with the :class:`StreamWorkerHandle` surface.

    Items are pulled synchronously on :meth:`get_nowait` — generation
    happens in the caller's process, so a pull may block while a shard
    buffer builds.  ``kill`` marks the handle failed, which lets fault
    injection and restart-from-cursor be exercised without ``fork``.
    """

    def __init__(self, index: int, resume, generator: Iterator) -> None:
        self.index = index
        self.resume = resume
        self.error: "str | None" = None
        self._generator = generator
        self._done = False

    def get_nowait(self):
        if self._done:
            return None
        try:
            return next(self._generator)
        except StopIteration:
            self._done = True
            return None
        except Exception as exc:
            self.error = f"{type(exc).__name__}: {exc}"
            self._done = True
            return None

    @property
    def pending(self) -> int:
        return 0

    @property
    def finished(self) -> bool:
        return self._done

    @property
    def failed(self) -> bool:
        return self.error is not None

    def alive(self) -> bool:
        return not self._done

    def exhausted(self) -> bool:
        return self._done and self.error is None

    def heartbeat_age(self, now=None) -> float:
        return 0.0

    def kill(self) -> None:
        self.error = "killed"
        self._done = True

    def abandon(self) -> None:
        self._done = True
        self._generator.close()


class ShardSupervisor:
    """Spawn, monitor, restart, and drain the producer workers.

    Parameters
    ----------
    engine:
        The :class:`~repro.workload.Workload` whose shard plan is
        produced.  Generators are prefitted *before* any fork so the
        fitted state is inherited copy-on-write.
    num_workers:
        Producer processes (capped at the shard count).  ``0`` — or any
        value on a platform without ``fork`` — runs every producer
        inline.
    chunk_events:
        Events per chunk (the granularity of both backpressure and the
        durable cursor).
    queue_chunks:
        Bound of each worker's handoff queue, in chunks.
    heartbeat_timeout:
        Seconds of stale heartbeat after which a live worker counts as
        hung and is killed and restarted.
    max_restarts:
        Restarts per worker before it degrades to the inline fallback.
    """

    #: Seconds to keep draining a dead worker's channel before the
    #: remaining undelivered chunks are declared lost and regenerated.
    DEATH_GRACE = 0.6

    def __init__(
        self,
        engine,
        *,
        num_workers: int = 2,
        chunk_events: int = 4096,
        queue_chunks: int = 8,
        heartbeat_timeout: float = 5.0,
        max_restarts: int = 3,
    ) -> None:
        if num_workers < 0:
            raise ValueError("num_workers must be >= 0")
        if chunk_events < 1:
            raise ValueError("chunk_events must be >= 1")
        self.engine = engine
        self.chunk_events = chunk_events
        self.queue_chunks = queue_chunks
        self.heartbeat_timeout = heartbeat_timeout
        self.max_restarts = max_restarts
        self.num_shards = len(engine.planned_shards())
        self.inline = num_workers == 0 or not fork_available()
        self.num_workers = (
            min(num_workers, self.num_shards) if not self.inline else
            min(max(num_workers, 1), self.num_shards)
        )
        self.merger = ChunkMerger(self.num_shards, engine._cell_names())
        self.restarts = [0] * self.num_workers
        self.inline_fallbacks = 0
        self._handles: list = [None] * self.num_workers
        self._is_inline = [self.inline] * self.num_workers
        self._dead_since: dict[int, float] = {}
        self._started = False

    # ------------------------------------------------------------------
    def shards_of(self, worker: int) -> list[int]:
        return list(range(worker, self.num_shards, self.num_workers))

    def _worker_cursors(self, worker: int) -> tuple[int, ...]:
        return tuple(
            self.merger.cursor(shard) for shard in self.shards_of(worker)
        )

    def _producer(self, worker: int, cursors) -> Iterator:
        """The producer generator: round-robin chunks over owned shards.

        Runs in a forked child (or inline).  Chunks interleave across
        the worker's shards so the merger sees a head from every shard
        as early as possible; each exhausted shard announces itself with
        an ``("eof", shard)`` marker.  Shards whose cursor is
        ``SHARD_DONE`` are skipped entirely on restart.
        """
        active: deque = deque()
        for shard, cursor in zip(self.shards_of(worker), cursors):
            if cursor == SHARD_DONE:
                continue
            active.append(
                (
                    shard,
                    self.engine.shard_chunk_stream(
                        shard,
                        chunk_events=self.chunk_events,
                        start_seq=cursor,
                    ),
                )
            )
        while active:
            shard, stream = active.popleft()
            chunk = next(stream, None)
            if chunk is None:
                yield ("eof", shard)
            else:
                yield ("chunk", chunk)
                active.append((shard, stream))

    def _spawn(self, worker: int) -> None:
        cursors = self._worker_cursors(worker)
        if all(cursor == SHARD_DONE for cursor in cursors):
            self._handles[worker] = None
            return
        if self._is_inline[worker]:
            self._handles[worker] = _InlineHandle(
                worker, cursors, self._producer(worker, cursors)
            )
        else:
            self._handles[worker] = spawn_stream_worker(
                self._producer,
                worker,
                cursors,
                queue_items=self.queue_chunks,
            )
        self._dead_since.pop(worker, None)

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        # Prefit before the first fork so children inherit fitted
        # generators copy-on-write instead of each refitting.
        self.engine.planned_shards()
        for worker in range(self.num_workers):
            self._spawn(worker)

    # ------------------------------------------------------------------
    def pump(self, budget: "int | None" = None) -> int:
        """Route delivered items into the merger; returns items pulled.

        Round-robins across workers so no single fast producer starves
        the others' shards out of the merge.  ``budget`` bounds the pull
        (the service sizes it to ring space) — and, for inline handles,
        bounds how much generation work one tick performs.
        """
        if not self._started:
            self.start()
        pulled = 0
        progressed = True
        while progressed and (budget is None or pulled < budget):
            progressed = False
            for handle in self._handles:
                if handle is None:
                    continue
                item = handle.get_nowait()
                if item is None:
                    continue
                kind, payload = item
                if kind == "chunk":
                    self.merger.add_chunk(payload)
                elif kind == "eof":
                    self.merger.finish_shard(payload)
                pulled += 1
                progressed = True
                if budget is not None and pulled >= budget:
                    break
        return pulled

    # ------------------------------------------------------------------
    def kill_worker(self, worker: int) -> bool:
        """SIGKILL producer ``worker`` (fault injection); False if retired."""
        if not 0 <= worker < self.num_workers:
            raise IndexError(
                f"worker must be in [0, {self.num_workers}); got {worker}"
            )
        handle = self._handles[worker]
        if handle is None:
            return False
        handle.kill()
        return True

    def maintain(self) -> list[str]:
        """Detect crashed / hung workers and restart them from cursors.

        Returns human-readable incident lines (restart, fallback,
        retirement) for the service log.  Call *after* :meth:`pump` so
        every already-delivered chunk has advanced its cursor before a
        failed worker's remainder is regenerated.
        """
        incidents: list[str] = []
        now = time.monotonic()
        for worker, handle in enumerate(self._handles):
            if handle is None:
                continue
            if handle.exhausted():
                handle.abandon()
                self._handles[worker] = None
                continue
            inline = self._is_inline[worker]
            crashed = handle.failed
            reason = f"error: {handle.error}" if handle.failed else ""
            if not crashed and not inline and not handle.alive():
                if handle.finished:
                    continue  # clean exit, buffer still draining
                since = self._dead_since.setdefault(worker, now)
                if now - since < self.DEATH_GRACE or handle.pending:
                    continue  # let the drain thread finish first
                crashed = True
                reason = "process died"
            hung = (
                not crashed
                and not inline
                and handle.alive()
                and not handle.finished
                and handle.heartbeat_age(now) > self.heartbeat_timeout
            )
            if hung:
                reason = (
                    f"heartbeat stale {handle.heartbeat_age(now):.1f}s"
                )
            if not crashed and not hung:
                continue
            handle.abandon()
            self._handles[worker] = None
            self.restarts[worker] += 1
            if (
                not inline
                and self.restarts[worker] > self.max_restarts
            ):
                self._is_inline[worker] = True
                self.inline_fallbacks += 1
                incidents.append(
                    f"worker {worker} failed {self.restarts[worker]} times "
                    f"({reason}); falling back to inline generation"
                )
            else:
                incidents.append(
                    f"worker {worker} restarting from cursors "
                    f"{self._worker_cursors(worker)} ({reason})"
                )
            self._spawn(worker)
        return incidents

    # ------------------------------------------------------------------
    def exhausted(self) -> bool:
        """Every producer retired and every merged event emitted."""
        return (
            self._started
            and all(handle is None for handle in self._handles)
            and self.merger.exhausted()
        )

    def worker_status(self) -> list[dict]:
        status = []
        for worker, handle in enumerate(self._handles):
            if handle is None:
                entry = {"worker": worker, "state": "done"}
            else:
                entry = {
                    "worker": worker,
                    "state": (
                        "inline" if self._is_inline[worker] else "forked"
                    ),
                    "alive": handle.alive(),
                    "pending": handle.pending,
                    "heartbeat_age": round(handle.heartbeat_age(), 3),
                }
            entry["restarts"] = self.restarts[worker]
            status.append(entry)
        return status

    def shutdown(self) -> None:
        """Tear down every live producer (idempotent)."""
        for worker, handle in enumerate(self._handles):
            if handle is not None:
                handle.abandon()
                self._handles[worker] = None
