"""Bounded event ring with backpressure watermarks.

The hand-off buffer between the merge and the paced consumer loop in
:class:`~repro.service.service.TrafficService`.  Entries are columnar
:class:`~repro.core.chunks.MergedChunk` batches (or any item), but
capacity, watermarks, and shedding all account in *events*: each entry
carries an event count and ``depth`` is their sum, so a ring of chunks
exerts exactly the backpressure a ring of single events would.

Capacity is a hard bound (a push that would exceed it is rejected — the
producer side simply stops pulling chunks), and the high/low watermarks
implement hysteresis: the service throttles producers when depth
crosses ``high`` and only resumes once it drains below ``low``, so
backpressure doesn't flap at the boundary.  The latch is updated where
depth changes (``push`` / ``pop`` / ``replace_head``); ``throttled`` is
a pure read, so observers (status snapshots, metrics gauges) can poll
it without moving the latch edge under the control path.
"""

from __future__ import annotations

from collections import deque

__all__ = ["EventRing"]


class EventRing:
    """A bounded FIFO of merged timeline batches with event watermarks.

    ``high_watermark`` / ``low_watermark`` are fractions of capacity
    (defaults 0.75 / 0.25).  ``throttled`` latches: it turns True when
    depth reaches the high mark and only returns to False once depth
    falls to the low mark.
    """

    def __init__(
        self,
        capacity: int,
        *,
        high_watermark: float = 0.75,
        low_watermark: float = 0.25,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if not 0.0 < high_watermark <= 1.0:
            raise ValueError("high_watermark must be in (0, 1]")
        if not 0.0 <= low_watermark < high_watermark:
            raise ValueError("low_watermark must be in [0, high_watermark)")
        self.capacity = capacity
        self.high = max(1, int(capacity * high_watermark))
        self.low = int(capacity * low_watermark)
        self._entries: deque = deque()  # (item, event count)
        self._depth = 0
        self._throttled = False
        # How many times the throttle latched (False -> True edges);
        # always counted (one int increment), published as a metric by
        # the service when observability is on.
        self.throttle_episodes = 0

    def __len__(self) -> int:
        """Depth in events (not entries)."""
        return self._depth

    @property
    def space(self) -> int:
        """How many more events fit before the hard bound."""
        return self.capacity - self._depth

    @property
    def full(self) -> bool:
        return self._depth >= self.capacity

    @property
    def throttled(self) -> bool:
        """Hysteresis state: True from the high mark down to the low mark."""
        return self._throttled

    def _update_latch(self) -> None:
        if self._throttled:
            if self._depth <= self.low:
                self._throttled = False
        elif self._depth >= self.high:
            self._throttled = True
            self.throttle_episodes += 1

    def push(self, item, events: int = 1) -> bool:
        """Append one entry of ``events`` events; ``False`` when it won't fit."""
        if self._depth + events > self.capacity:
            return False
        self._entries.append((item, events))
        self._depth += events
        self._update_latch()
        return True

    def peek(self):
        """The next entry without consuming it (``None`` when empty)."""
        return self._entries[0][0] if self._entries else None

    def pop(self):
        """Consume the next whole entry (``None`` when empty)."""
        if not self._entries:
            return None
        item, events = self._entries.popleft()
        self._depth -= events
        self._update_latch()
        return item

    def replace_head(self, item, *, consumed: int):
        """Swap the head entry for its remainder after ``consumed`` events.

        One depth/latch update — partially draining a chunk (pacing cut,
        shed prefix) must not churn the hysteresis latch the way a
        pop+push round trip would.
        """
        if not self._entries:
            raise IndexError("replace_head on an empty ring")
        _, events = self._entries[0]
        self._entries[0] = (item, events - consumed)
        self._depth -= consumed
        self._update_latch()
        return item
