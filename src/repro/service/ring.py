"""Bounded event ring with backpressure watermarks.

The hand-off buffer between the merge and the paced consumer loop in
:class:`~repro.service.service.TrafficService`.  Capacity is a hard
bound (a full ring rejects pushes — the producer side simply stops
pulling chunks), and the high/low watermarks implement hysteresis: the
service throttles producers when depth crosses ``high`` and only
resumes once it drains below ``low``, so backpressure doesn't flap at
the boundary.
"""

from __future__ import annotations

from collections import deque

__all__ = ["EventRing"]


class EventRing:
    """A bounded FIFO of merged timeline events with watermarks.

    ``high_watermark`` / ``low_watermark`` are fractions of capacity
    (defaults 0.75 / 0.25).  ``above_high`` latches the throttle state:
    it turns True when depth reaches the high mark and only returns to
    False once depth falls to the low mark.
    """

    def __init__(
        self,
        capacity: int,
        *,
        high_watermark: float = 0.75,
        low_watermark: float = 0.25,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if not 0.0 < high_watermark <= 1.0:
            raise ValueError("high_watermark must be in (0, 1]")
        if not 0.0 <= low_watermark < high_watermark:
            raise ValueError("low_watermark must be in [0, high_watermark)")
        self.capacity = capacity
        self.high = max(1, int(capacity * high_watermark))
        self.low = int(capacity * low_watermark)
        self._items: deque = deque()
        self._throttled = False
        # How many times the throttle latched (False -> True edges);
        # always counted (one int increment), published as a metric by
        # the service when observability is on.
        self.throttle_episodes = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def space(self) -> int:
        """How many more events fit before the hard bound."""
        return self.capacity - len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    @property
    def throttled(self) -> bool:
        """Hysteresis state: True from the high mark down to the low mark."""
        depth = len(self._items)
        if self._throttled:
            if depth <= self.low:
                self._throttled = False
        elif depth >= self.high:
            self._throttled = True
            self.throttle_episodes += 1
        return self._throttled

    def push(self, item) -> bool:
        """Append one event; ``False`` (and no append) when full."""
        if len(self._items) >= self.capacity:
            return False
        self._items.append(item)
        return True

    def peek(self):
        """The next event without consuming it (``None`` when empty)."""
        return self._items[0] if self._items else None

    def pop(self):
        """Consume the next event (``None`` when empty)."""
        return self._items.popleft() if self._items else None
