"""Incremental k-way merge over per-shard chunk streams.

The batch path (:func:`repro.workload.timeline.merge_timelines`) merges
complete per-shard iterators with ``heapq.merge``.  The service path
receives each shard as a sequence of
:class:`~repro.workload.timeline.TimelineChunk` deliveries spread over
time and across restarts, so the merge must be *incremental*: accept
chunks as they arrive, emit events as soon as emission is provably
safe, and expose the per-shard durable cursor (next expected chunk
``seq``) the supervisor restarts crashed workers from.

Safety rule: the globally minimal buffered event can be emitted exactly
when every unfinished shard has at least one buffered event — any shard
with an empty buffer might still produce something earlier.  Ordering
matches the batch merge bit for bit: the heap key is the merge key
``(timestamp, cohort, ue_id)`` with ties across shards resolved by
shard index (``heapq.merge``'s source order), and within-shard order is
preserved because each shard contributes one head at a time.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Iterator

from ..workload.timeline import TimelineChunk, decode_buffer

__all__ = ["ChunkMerger"]

#: Cursor value marking a shard that has delivered every chunk.
SHARD_DONE = -1


class ChunkMerger:
    """Order-preserving incremental merge of chunked shard streams.

    ``add_chunk`` enforces the cursor contract: a chunk is accepted only
    when its ``seq`` equals the shard's cursor (next expected).  A stale
    chunk (``seq`` below the cursor — a restarted worker double-sent) is
    dropped idempotently; a gap raises, because a missing chunk can
    never be recovered downstream.
    """

    def __init__(
        self, num_shards: int, cell_names: "tuple[str, ...] | None" = None
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self._cell_names = cell_names
        self._pending: list[deque] = [deque() for _ in range(num_shards)]
        self._finished = [False] * num_shards
        self._cursors = [0] * num_shards
        self._heap: list = []
        self._in_heap = [False] * num_shards
        self.merged_total = 0

    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self._pending)

    def cursor(self, shard: int) -> int:
        """Next expected chunk seq (``SHARD_DONE`` when the shard is done)."""
        return SHARD_DONE if self._finished[shard] else self._cursors[shard]

    @property
    def cursors(self) -> tuple[int, ...]:
        return tuple(self.cursor(s) for s in range(self.num_shards))

    @property
    def buffered(self) -> int:
        """Events decoded but not yet emitted."""
        return len(self._heap) + sum(len(d) for d in self._pending)

    def buffered_of(self, shard: int) -> int:
        return len(self._pending[shard]) + (1 if self._in_heap[shard] else 0)

    def exhausted(self) -> bool:
        """Every shard finished and every buffered event emitted."""
        return all(self._finished) and not self._heap

    # ------------------------------------------------------------------
    def add_chunk(self, chunk: TimelineChunk) -> bool:
        """Accept one delivered chunk; ``False`` if it was a stale resend."""
        shard = chunk.shard
        if self._finished[shard]:
            return False
        expected = self._cursors[shard]
        if chunk.seq < expected:
            return False
        if chunk.seq > expected:
            raise ValueError(
                f"chunk gap on shard {shard}: expected seq {expected}, "
                f"got {chunk.seq}"
            )
        self._cursors[shard] = expected + 1
        if chunk.num_events:
            self._pending[shard].extend(
                decode_buffer(chunk.buffer(), chunk.cohort, self._cell_names)
            )
            self._refill(shard)
        return True

    def finish_shard(self, shard: int) -> None:
        """Mark a shard's chunk stream complete (idempotent)."""
        self._finished[shard] = True

    def _refill(self, shard: int) -> None:
        if not self._in_heap[shard] and self._pending[shard]:
            event = self._pending[shard].popleft()
            heapq.heappush(
                self._heap,
                ((event.timestamp, event.cohort, event.ue_id), shard, event),
            )
            self._in_heap[shard] = True

    def _safe(self) -> bool:
        if not self._heap:
            return False
        for shard in range(self.num_shards):
            if not self._finished[shard] and not self._in_heap[shard]:
                return False
        return True

    # ------------------------------------------------------------------
    def pop_ready(self, max_events: int | None = None) -> Iterator:
        """Yield globally ordered events while emission stays safe.

        Stops as soon as some unfinished shard runs out of buffered
        events (more chunks needed) or ``max_events`` have been
        yielded — the bound the caller uses to respect ring space.
        """
        emitted = 0
        while self._safe():
            if max_events is not None and emitted >= max_events:
                return
            _, shard, event = heapq.heappop(self._heap)
            self._in_heap[shard] = False
            self._refill(shard)
            self.merged_total += 1
            emitted += 1
            yield event
