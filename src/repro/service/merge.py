"""Incremental columnar k-way merge over per-shard chunk streams.

The batch path (:func:`repro.core.chunks.merge_buffers`) merges
complete shard buffers with one vectorized lexsort.  The service path
receives each shard as a sequence of
:class:`~repro.workload.timeline.TimelineChunk` deliveries spread over
time and across restarts, so the merge must be *incremental*: accept
chunks as they arrive, emit events as soon as emission is provably
safe, and expose the per-shard durable cursor (next expected chunk
``seq``) the supervisor restarts crashed workers from.

Safety rule: buffered events may be emitted exactly up to the *emission
horizon* — the smallest ``(timestamp, merge rank, shard)`` key over the
**last** buffered event of every unfinished shard.  Anything at or
below that key is final (a shard's future events can only sort at or
after its last buffered one; other unfinished shards are bounded by
their own last keys, which are no smaller); anything above might still
be preceded by an event from a shard that has more chunks coming.  When
any unfinished shard has an empty buffer the horizon is undefined and
nothing is safe — the classic k-way merge starvation rule, tracked here
as a single ``_starved`` counter updated in ``add_chunk`` /
``finish_shard`` / emission instead of an O(num_shards) rescan per
event.

Ordering matches the batch merge (and the heap merge it replaced) bit
for bit: the key is ``(timestamp, cohort, ue_id)`` with ties across
shards resolved by shard index and within-shard order preserved — see
:class:`~repro.core.chunks.MergeTables.rank` for how the merge rank
encodes exactly that.

Emission is columnar: :meth:`ChunkMerger.pop_ready_chunks` returns
globally ordered :class:`~repro.core.chunks.MergedChunk` slices with no
per-event decode anywhere; :meth:`ChunkMerger.pop_ready` remains as the
object-path compatibility shim.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..core.chunks import MergedChunk, MergeTables, merge_order
from ..workload.timeline import TimelineChunk

__all__ = ["ChunkMerger"]

#: Cursor value marking a shard that has delivered every chunk.
SHARD_DONE = -1


class ChunkMerger:
    """Order-preserving incremental merge of chunked shard streams.

    ``add_chunk`` enforces the cursor contract: a chunk is accepted only
    when its ``seq`` equals the shard's cursor (next expected).  A stale
    chunk (``seq`` below the cursor — a restarted worker double-sent) is
    dropped idempotently; a gap raises, because a missing chunk can
    never be recovered downstream.

    Buffered events are kept as per-shard numpy columns (times, global
    UE indices, global event codes, cell codes) — chunks are translated
    into the shared :class:`~repro.core.chunks.MergeTables` on arrival
    and never decoded to event objects.
    """

    def __init__(
        self, num_shards: int, cell_names: "tuple[str, ...] | None" = None
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self._cell_names = cell_names
        self.tables = MergeTables(cell_names)
        self._finished = [False] * num_shards
        self._cursors = [0] * num_shards
        self._counts = [0] * num_shards
        self._ptimes: list[list] = [[] for _ in range(num_shards)]
        self._pues: list[list] = [[] for _ in range(num_shards)]
        self._pevents: list[list] = [[] for _ in range(num_shards)]
        self._pcells: list[list] = [[] for _ in range(num_shards)]
        self._ue_base: list = [None] * num_shards
        self._lookups: list = [None] * num_shards
        self._use_cells: bool | None = None
        #: unfinished shards with zero buffered events; emission is safe
        #: iff this is zero (every unfinished shard has a known head).
        self._starved = num_shards
        self.merged_total = 0

    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self._counts)

    def cursor(self, shard: int) -> int:
        """Next expected chunk seq (``SHARD_DONE`` when the shard is done)."""
        return SHARD_DONE if self._finished[shard] else self._cursors[shard]

    @property
    def cursors(self) -> tuple[int, ...]:
        return tuple(self.cursor(s) for s in range(self.num_shards))

    @property
    def buffered(self) -> int:
        """Events accepted but not yet emitted."""
        return sum(self._counts)

    def buffered_of(self, shard: int) -> int:
        return self._counts[shard]

    def exhausted(self) -> bool:
        """Every shard finished and every buffered event emitted."""
        return all(self._finished) and not any(self._counts)

    # ------------------------------------------------------------------
    def add_chunk(self, chunk: TimelineChunk) -> bool:
        """Accept one delivered chunk; ``False`` if it was a stale resend."""
        shard = chunk.shard
        if self._finished[shard]:
            return False
        expected = self._cursors[shard]
        if chunk.seq < expected:
            return False
        if chunk.seq > expected:
            raise ValueError(
                f"chunk gap on shard {shard}: expected seq {expected}, "
                f"got {chunk.seq}"
            )
        if chunk.cells is not None and self._cell_names is None:
            raise ValueError(
                f"chunk on shard {shard} carries cell annotations but the "
                "merger has no cell_names table; construct ChunkMerger with "
                "the topology's cell names so cell tags are not dropped"
            )
        self._cursors[shard] = expected + 1
        if self._ue_base[shard] is None:
            # First chunk of the shard (even an empty one) carries the
            # whole shard's string tables; register them once.
            self._ue_base[shard] = self.tables.add_ues(
                chunk.cohort, chunk.ue_ids, shard
            )
            self._lookups[shard] = self.tables.event_codes(chunk.event_names)
        if chunk.num_events:
            has_cells = chunk.cells is not None
            if self._use_cells is None:
                self._use_cells = has_cells
            elif self._use_cells != has_cells:
                raise ValueError(
                    "shard chunk streams disagree on cell annotations"
                )
            self._ptimes[shard].append(np.asarray(chunk.times, dtype=np.float64))
            self._pues[shard].append(
                np.asarray(chunk.ue_codes, dtype=np.int64) + self._ue_base[shard]
            )
            self._pevents[shard].append(
                self._lookups[shard][np.asarray(chunk.event_codes, dtype=np.int64)]
            )
            if has_cells:
                self._pcells[shard].append(np.asarray(chunk.cells, dtype=np.int16))
            if self._counts[shard] == 0:
                self._starved -= 1
            self._counts[shard] += chunk.num_events
        return True

    def finish_shard(self, shard: int) -> None:
        """Mark a shard's chunk stream complete (idempotent)."""
        if not self._finished[shard]:
            self._finished[shard] = True
            if self._counts[shard] == 0:
                self._starved -= 1

    # ------------------------------------------------------------------
    def _consolidate(self, shard: int) -> None:
        if len(self._ptimes[shard]) > 1:
            self._ptimes[shard] = [np.concatenate(self._ptimes[shard])]
            self._pues[shard] = [np.concatenate(self._pues[shard])]
            self._pevents[shard] = [np.concatenate(self._pevents[shard])]
            if self._pcells[shard]:
                self._pcells[shard] = [np.concatenate(self._pcells[shard])]

    def pop_ready_chunks(
        self, max_events: int | None = None
    ) -> "list[MergedChunk]":
        """Emit everything provably final as globally ordered chunks.

        Returns at most one :class:`~repro.core.chunks.MergedChunk` per
        call (empty list when nothing is safe yet), capped at
        ``max_events`` events — the bound the caller uses to respect
        ring space.  Events beyond the cap stay buffered and remain
        first in line for the next call.
        """
        if max_events is not None and max_events < 1:
            return []
        if self._starved:
            return []
        counts = self._counts
        n = self.num_shards
        if not any(counts):
            return []
        # Per-shard, not per-event.  repro-lint: allow[hot-path-purity]
        for s in range(n):
            if counts[s]:
                self._consolidate(s)
        rank = self.tables.rank
        if all(self._finished):
            cuts = list(counts)
        else:
            # The emission horizon: min (t, rank, shard) over the last
            # buffered event of every unfinished shard.
            horizon = None
            # Per-shard horizon scan.  repro-lint: allow[hot-path-purity]
            for s in range(n):
                if self._finished[s]:
                    continue
                times = self._ptimes[s][0]
                key = (float(times[-1]), int(rank[self._pues[s][0][-1]]), s)
                if horizon is None or key < horizon:
                    horizon = key
            t_star, g_star, s_star = horizon
            cuts = [0] * n
            # Per-shard cut computation (searchsorted inside, so each
            # iteration is O(log events), never per-event).
            # repro-lint: allow[hot-path-purity]
            for s in range(n):
                if not counts[s]:
                    continue
                if s == s_star:
                    cuts[s] = counts[s]
                    continue
                times = self._ptimes[s][0]
                i1 = int(times.searchsorted(t_star, side="left"))
                i2 = int(times.searchsorted(t_star, side="right"))
                if i1 == i2:
                    cuts[s] = i1
                else:
                    # Within the t == t* window the shard's ranks are
                    # nondecreasing (within-shard sort is by UE string);
                    # ranks are unique per (UE, shard) so none equals
                    # g_star here — count those strictly below it.
                    window = rank[self._pues[s][0][i1:i2]]
                    cuts[s] = i1 + int(
                        np.searchsorted(window, g_star, side="left")
                    )
        if not any(cuts):
            return []
        use_cells = bool(self._use_cells)
        seg_times, seg_ues, seg_events, seg_cells, seg_shards = [], [], [], [], []
        # Gathers one array *segment* per shard; the appends collect
        # whole columns for one concatenate, which is exactly the
        # accumulate-then-concatenate idiom the rule asks for.
        # repro-lint: allow[hot-path-purity]
        for s in range(n):
            c = cuts[s]
            if not c:
                continue
            seg_times.append(self._ptimes[s][0][:c])
            seg_ues.append(self._pues[s][0][:c])
            seg_events.append(self._pevents[s][0][:c])
            if use_cells:
                seg_cells.append(self._pcells[s][0][:c])
            seg_shards.append(np.full(c, s, dtype=np.int32))
        cat_times = np.concatenate(seg_times)
        cat_ues = np.concatenate(seg_ues)
        cat_events = np.concatenate(seg_events)
        cat_cells = np.concatenate(seg_cells) if use_cells else None
        # Stable (time, rank) order; segments are concatenated in shard
        # order, so full-key ties keep within-shard stream order.
        order = merge_order(cat_times, rank[cat_ues])
        if max_events is not None and order.size > max_events:
            # A prefix of the global order is still globally sorted, and
            # each shard's kept events are a prefix of its cut segment.
            order = order[:max_events]
            consumed = np.bincount(
                np.concatenate(seg_shards)[order], minlength=n
            )
        else:
            consumed = cuts
        out_ues = cat_ues[order]
        chunk = MergedChunk(
            times=cat_times[order],
            cohorts=self.tables.ue_cohorts[out_ues],
            ues=out_ues,
            events=cat_events[order],
            cells=None if cat_cells is None else cat_cells[order],
            tables=self.tables,
        )
        # Per-shard consume bookkeeping.  repro-lint: allow[hot-path-purity]
        for s in range(n):
            c = int(consumed[s])
            if not c:
                continue
            if c == counts[s]:
                self._ptimes[s] = []
                self._pues[s] = []
                self._pevents[s] = []
                self._pcells[s] = []
            else:
                self._ptimes[s] = [self._ptimes[s][0][c:]]
                self._pues[s] = [self._pues[s][0][c:]]
                self._pevents[s] = [self._pevents[s][0][c:]]
                if self._pcells[s]:
                    self._pcells[s] = [self._pcells[s][0][c:]]
            counts[s] -= c
            if counts[s] == 0 and not self._finished[s]:
                self._starved += 1
        self.merged_total += chunk.num_events
        return [chunk]

    def pop_ready(self, max_events: int | None = None) -> Iterator:
        """Object-path shim: globally ordered events while emission is safe.

        Decodes :meth:`pop_ready_chunks` output back into
        ``TimelineEvent`` / ``CellTimelineEvent`` tuples.  Stops as soon
        as some unfinished shard runs out of buffered events (more
        chunks needed) or ``max_events`` have been yielded.
        """
        remaining = max_events
        while True:
            chunks = self.pop_ready_chunks(remaining)
            if not chunks:
                return
            for chunk in chunks:
                yield from chunk.decode()
                if remaining is not None:
                    remaining -= chunk.num_events
            if remaining is not None and remaining <= 0:
                return
