"""Declarative fault injection for service soak runs.

A :class:`FaultPlan` is a schedule of faults applied against *service*
elapsed time (seconds since the run started): kill a producer worker,
stall the consumer loop, or scale the replay rate for a window.  The
plan exists so the robustness claims are testable on demand — a CI soak
run injects a worker kill and a consumer stall and asserts the merged
timeline, the fidelity gate, and the shed accounting all survived.

CLI spellings (``repro serve``)::

    --kill-worker N@T      kill producer worker N at elapsed T seconds
    --stall-consumer T:D   stop consuming for D seconds starting at T
    --burst T:F:D          multiply replay speed by F for D seconds at T
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["KillWorker", "StallConsumer", "BurstScale", "FaultPlan"]


@dataclass(frozen=True)
class KillWorker:
    """SIGKILL producer worker ``worker`` at elapsed ``at`` seconds."""

    at: float
    worker: int

    @classmethod
    def parse(cls, spec: str) -> "KillWorker":
        """``"N@T"`` → kill worker N at T seconds."""
        try:
            worker, at = spec.split("@", 1)
            return cls(at=float(at), worker=int(worker))
        except ValueError:
            raise ValueError(
                f"--kill-worker expects N@T (e.g. 0@5.0); got {spec!r}"
            ) from None


@dataclass(frozen=True)
class StallConsumer:
    """Stop the consumer loop for ``duration`` seconds at ``at``."""

    at: float
    duration: float

    @classmethod
    def parse(cls, spec: str) -> "StallConsumer":
        """``"T:D"`` → stall for D seconds starting at T."""
        try:
            at, duration = spec.split(":", 1)
            return cls(at=float(at), duration=float(duration))
        except ValueError:
            raise ValueError(
                f"--stall-consumer expects T:D (e.g. 5:2.5); got {spec!r}"
            ) from None


@dataclass(frozen=True)
class BurstScale:
    """Multiply replay speed by ``factor`` for ``duration`` seconds."""

    at: float
    factor: float
    duration: float

    @classmethod
    def parse(cls, spec: str) -> "BurstScale":
        """``"T:F:D"`` → speed ×F for D seconds starting at T."""
        try:
            at, factor, duration = spec.split(":", 2)
            return cls(
                at=float(at), factor=float(factor), duration=float(duration)
            )
        except ValueError:
            raise ValueError(
                f"--burst expects T:F:D (e.g. 10:4:3); got {spec!r}"
            ) from None


@dataclass
class FaultPlan:
    """An ordered schedule of injected faults.

    ``pop_due(elapsed)`` returns every not-yet-fired fault whose ``at``
    has passed, marking it fired — the service polls this once per loop
    tick, so firing order follows the schedule even when a slow tick
    makes several faults due at once.
    """

    faults: tuple = ()
    _fired: set = field(default_factory=set, repr=False)

    def __post_init__(self) -> None:
        self.faults = tuple(
            sorted(self.faults, key=lambda fault: fault.at)
        )

    def __bool__(self) -> bool:
        return bool(self.faults)

    def pop_due(self, elapsed: float) -> list:
        due = []
        for index, fault in enumerate(self.faults):
            if index in self._fired or fault.at > elapsed:
                continue
            self._fired.add(index)
            due.append(fault)
        return due

    @classmethod
    def parse(
        cls,
        *,
        kill_worker: "list[str] | None" = None,
        stall_consumer: "list[str] | None" = None,
        burst: "list[str] | None" = None,
    ) -> "FaultPlan":
        """Build a plan from the CLI spellings (lists of spec strings)."""
        faults: list = []
        faults.extend(KillWorker.parse(s) for s in (kill_worker or []))
        faults.extend(StallConsumer.parse(s) for s in (stall_consumer or []))
        faults.extend(BurstScale.parse(s) for s in (burst or []))
        return cls(faults=tuple(faults))
