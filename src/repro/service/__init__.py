"""``repro.service`` — the always-on traffic service (robustness layer).

Everything upstream of this package is batch: build a timeline, run it
once, exit.  This package makes the same workload *serveable* — a
long-running, supervised, open-loop traffic source an operator can
point at a core-network testbed and leave running:

* :mod:`~repro.service.supervisor` — supervised producer shards:
  forked chunk-streaming workers with heartbeats, crash/hang detection,
  and restart from per-shard durable cursors (bit-identical merged
  timeline across restarts);
* :mod:`~repro.service.merge` — the incremental k-way chunk merge
  matching the batch merge's total order exactly;
* :mod:`~repro.service.ring` — the bounded event ring whose watermarks
  turn a slow consumer into producer backpressure instead of memory
  growth;
* :mod:`~repro.service.degradation` — deterministic per-cohort load
  shedding with exact accounting, engaged when backpressure persists
  and released when the ring drains;
* :mod:`~repro.service.faults` — the injectable fault plan (worker
  kills, consumer stalls, rate bursts) that makes all of the above
  testable on demand;
* :mod:`~repro.service.status` — live telemetry snapshots;
* :mod:`~repro.service.service` — :class:`TrafficService`, the control
  loop tying it together, surfaced as ``Session.serve`` and the
  ``repro serve`` CLI command.
"""

from .degradation import DegradationPolicy, ShedAccount
from .faults import BurstScale, FaultPlan, KillWorker, StallConsumer
from .merge import ChunkMerger
from .ring import EventRing
from .service import ServiceReport, TrafficService
from .status import ServiceStatus
from .supervisor import ShardSupervisor

__all__ = [
    "TrafficService",
    "ServiceReport",
    "ServiceStatus",
    "ShardSupervisor",
    "ChunkMerger",
    "EventRing",
    "DegradationPolicy",
    "ShedAccount",
    "FaultPlan",
    "KillWorker",
    "StallConsumer",
    "BurstScale",
]
