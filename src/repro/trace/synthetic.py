"""Synthetic operator trace simulator — the proprietary-data substitute.

The paper trains on a proprietary AT&T LTE control-plane trace (73M
events from 430K UEs).  That trace is not publicly available, so this
module implements the closest synthetic equivalent: a ground-truth
simulator that walks the exact 3GPP state machine (Figure 1) with

* device-type behaviour profiles (:mod:`repro.trace.device`),
* per-UE latent activity multipliers (heavy-tailed heterogeneity — the
  diversity that forced SMM to instantiate 20,216 models),
* log-normal-mixture dwell times (long-tailed interarrivals, Figure 7),
* diurnal modulation (hour-of-day drift, the paper's C5).

Every generated stream is state-machine-legal by construction, which the
test suite verifies by replay; the *learning problem* CPT-GPT faces —
recovering stateful grammar, multi-modal marginals and population
diversity from raw streams — is therefore the same as on the real trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..statemachine.base import MachineState, StateMachine
from ..statemachine.events import LTE_EVENTS, NR_EVENTS
from ..statemachine.lte import CONNECTED, DEREGISTERED, IDLE, LTE_SPEC
from ..statemachine.nr import NR_SPEC
from .dataset import TraceDataset
from .device import DeviceProfile, get_profile
from .schema import ControlEvent, DeviceType, Stream

__all__ = ["SyntheticTraceConfig", "generate_trace", "generate_mixed_trace", "generate_hourly_traces"]

_SECONDS_PER_HOUR = 3600.0

#: 4G -> 5G event renaming (Table 1).  TAU does not exist in 5G; its
#: probability mass is folded into the state's dominant event.
_NR_EVENT_MAP = {
    "ATCH": "REGISTER",
    "DTCH": "DEREGISTER",
    "SRV_REQ": "SRV_REQ",
    "S1_CONN_REL": "AN_REL",
    "HO": "HO",
}

#: Landing sub-states for each simulated start condition, per technology.
_START_SUBS = {
    "4G": {
        DEREGISTERED: ("DEREGISTERED", "DEREG_S"),
        CONNECTED: ("CONNECTED", "SRV_REQ_S"),
        IDLE: ("IDLE", "S1_REL_S_1"),
    },
    "5G": {
        DEREGISTERED: ("RM-DEREGISTERED", "DEREG_S"),
        CONNECTED: ("CM-CONNECTED", "SRV_REQ_S"),
        IDLE: ("CM-IDLE", "AN_REL_S"),
    },
}


@dataclass(frozen=True)
class SyntheticTraceConfig:
    """Parameters of one capture window.

    Attributes
    ----------
    num_ues:
        Number of UE streams to simulate.
    device_type:
        One of :class:`repro.trace.schema.DeviceType`.
    hour:
        Hour-of-day at the start of the capture window; drives diurnal
        modulation.
    duration:
        Window length in seconds (default one hour, the unit the paper
        trains per-hour models on).
    technology:
        ``"4G"`` (the paper's evaluated setting) or ``"5G"``.
    seed:
        Base RNG seed; every UE derives an independent child stream.
    time_resolution:
        Timestamp granularity in seconds.  Operator traces record
        second-resolution timestamps; the default of 1.0 floors event
        times accordingly (0 disables quantization).
    """

    num_ues: int
    device_type: str = DeviceType.PHONE
    hour: int = 10
    duration: float = _SECONDS_PER_HOUR
    technology: str = "4G"
    seed: int = 0
    time_resolution: float = 1.0

    def __post_init__(self) -> None:
        DeviceType.validate(self.device_type)
        if self.technology not in ("4G", "5G"):
            raise ValueError(f"technology must be 4G or 5G; got {self.technology!r}")
        if self.num_ues < 0:
            raise ValueError("num_ues must be non-negative")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.time_resolution < 0:
            raise ValueError("time_resolution must be non-negative")


@dataclass
class _UEState:
    """Latent per-UE parameters drawn once per stream."""

    idle_multiplier: float
    connected_multiplier: float
    machine: StateMachine


def _spawn_ue(
    profile: DeviceProfile, technology: str, rng: np.random.Generator
) -> _UEState:
    idle_mult = float(np.exp(rng.normal(0.0, profile.ue_idle_sigma)))
    conn_mult = float(np.exp(rng.normal(0.0, profile.ue_connected_sigma)))
    start_names = (DEREGISTERED, CONNECTED, IDLE)
    start = rng.choice(3, p=np.asarray(profile.start_state_probs))
    top, sub = _START_SUBS[technology][start_names[start]]
    spec = LTE_SPEC if technology == "4G" else NR_SPEC
    machine = StateMachine(spec, MachineState(top, sub))
    return _UEState(idle_mult, conn_mult, machine)


def _translate(event: str, technology: str) -> str:
    if technology == "4G":
        return event
    return _NR_EVENT_MAP[event]


def _pick_event(
    menu: tuple[tuple[str, float], ...],
    technology: str,
    rng: np.random.Generator,
) -> str:
    """Choose the next event from a state's menu.

    In 5G mode, TAU is removed and its probability mass renormalized over
    the remaining menu entries.
    """
    names = [name for name, _ in menu]
    probs = np.array([p for _, p in menu], dtype=np.float64)
    if technology == "5G" and "TAU" in names:
        keep = [i for i, name in enumerate(names) if name != "TAU"]
        names = [names[i] for i in keep]
        probs = probs[keep]
        probs = probs / probs.sum()
    choice = rng.choice(len(names), p=probs)
    return names[choice]


def _simulate_stream(
    ue_id: str,
    profile: DeviceProfile,
    config: SyntheticTraceConfig,
    rng: np.random.Generator,
) -> Stream:
    ue = _spawn_ue(profile, config.technology, rng)
    window_start = config.hour * _SECONDS_PER_HOUR
    window_end = window_start + config.duration

    spec = ue.machine.spec
    connected = spec.connected_state
    idle = spec.idle_state

    events: list[ControlEvent] = []
    t = window_start
    # The walk starts mid-dwell: thin the very first dwell by a uniform
    # fraction so UEs are not phase-synchronized at the window edge.
    first = True
    while True:
        top = ue.machine.state.top
        hour_now = (t / _SECONDS_PER_HOUR) % 24.0
        activity = profile.diurnal.activity(hour_now)
        if top == connected:
            dwell = profile.connected_dwell.sample(rng) * ue.connected_multiplier
            menu = profile.connected_event_menu()
        elif top == idle:
            # Busier hours shorten idle dwells (more sessions per hour).
            dwell = profile.idle_dwell.sample(rng) * ue.idle_multiplier / activity
            menu = profile.idle_event_menu()
        else:
            dwell = profile.deregistered_dwell.sample(rng)
            menu = (("ATCH", 1.0),)
        if first:
            dwell *= float(rng.uniform(0.0, 1.0))
            first = False
        t += dwell
        if t >= window_end:
            break
        raw_event = _pick_event(menu, config.technology, rng)
        event = _translate(raw_event, config.technology)
        legal = ue.machine.step(event)
        if not legal:  # pragma: no cover - guarded by construction
            raise RuntimeError(
                f"simulator bug: illegal event {event} in state {ue.machine.state}"
            )
        recorded = t
        if config.time_resolution > 0:
            recorded = (t // config.time_resolution) * config.time_resolution
        events.append(ControlEvent(timestamp=recorded, event=event))

    return Stream(ue_id=ue_id, device_type=profile.name, events=events)


def generate_trace(config: SyntheticTraceConfig) -> TraceDataset:
    """Simulate one capture window for a single device type."""
    profile = get_profile(config.device_type)
    root = np.random.default_rng(config.seed)
    seeds = root.integers(0, 2**63 - 1, size=config.num_ues)
    streams = []
    # The capture tag keeps UE IDs from different capture runs (seeds)
    # distinct — the paper treats the same UE across days as different UEs.
    capture = f"c{config.seed % 0xFFFF:04x}"
    for i in range(config.num_ues):
        ue_rng = np.random.default_rng(seeds[i])
        ue_id = f"{config.device_type}-{config.hour:02d}h-{capture}-{i:06d}"
        streams.append(_simulate_stream(ue_id, profile, config, ue_rng))
    vocabulary = LTE_EVENTS if config.technology == "4G" else NR_EVENTS
    return TraceDataset(streams=streams, vocabulary=vocabulary)


def generate_mixed_trace(
    counts: dict[str, int],
    hour: int = 10,
    duration: float = _SECONDS_PER_HOUR,
    technology: str = "4G",
    seed: int = 0,
) -> TraceDataset:
    """Simulate a multi-device-type window (e.g. the §4.1 population mix).

    ``counts`` maps device type to UE count; streams of all types are
    pooled into one dataset.
    """
    combined = TraceDataset(
        streams=[],
        vocabulary=LTE_EVENTS if technology == "4G" else NR_EVENTS,
    )
    for offset, (device_type, num) in enumerate(sorted(counts.items())):
        config = SyntheticTraceConfig(
            num_ues=num,
            device_type=device_type,
            hour=hour,
            duration=duration,
            technology=technology,
            seed=seed + offset * 1_000_003,
        )
        for stream in generate_trace(config):
            combined.add(stream)
    return combined


def generate_hourly_traces(
    num_ues: int,
    hours: list[int],
    device_type: str = DeviceType.PHONE,
    technology: str = "4G",
    seed: int = 0,
) -> dict[int, TraceDataset]:
    """One dataset per hour-of-day — the transfer-learning workload (§5.5).

    Diurnal modulation makes each hour's trace statistically distinct,
    which is what the hourly fine-tuning experiments adapt to.
    """
    traces: dict[int, TraceDataset] = {}
    for i, hour in enumerate(hours):
        config = SyntheticTraceConfig(
            num_ues=num_ues,
            device_type=device_type,
            hour=hour,
            technology=technology,
            seed=seed + i * 7_919,
        )
        traces[hour] = generate_trace(config)
    return traces
