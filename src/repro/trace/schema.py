"""Core data model for control-plane traffic traces.

Matches the paper's problem formulation (§3.1): a dataset is a set of
*streams*, one per UE; a stream is a UE identifier, a device type and a
time-ordered sequence of ``(timestamp, event)`` samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

__all__ = ["DeviceType", "ControlEvent", "Stream"]


class DeviceType:
    """The three device populations the paper studies (§4.1)."""

    PHONE = "phone"
    CONNECTED_CAR = "connected_car"
    TABLET = "tablet"

    ALL = (PHONE, CONNECTED_CAR, TABLET)

    @classmethod
    def validate(cls, value: str) -> str:
        if value not in cls.ALL:
            raise ValueError(f"unknown device type {value!r}; expected one of {cls.ALL}")
        return value


@dataclass(frozen=True)
class ControlEvent:
    """A single control-plane sample: an event type at a point in time."""

    timestamp: float
    event: str

    def __post_init__(self) -> None:
        if not np.isfinite(self.timestamp):
            raise ValueError(f"non-finite timestamp: {self.timestamp}")


@dataclass
class Stream:
    """One UE's stream of control events within the capture window.

    Events must be in non-decreasing timestamp order; :meth:`validate`
    enforces this (IO paths call it on load).
    """

    ue_id: str
    device_type: str
    events: list[ControlEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        DeviceType.validate(self.device_type)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[ControlEvent]:
        return iter(self.events)

    def validate(self) -> None:
        """Raise ``ValueError`` if timestamps are not non-decreasing."""
        times = self.timestamps()
        if len(times) > 1 and np.any(np.diff(times) < 0):
            raise ValueError(f"stream {self.ue_id}: timestamps out of order")

    # ------------------------------------------------------------------
    # Views used by tokenizers and metrics
    # ------------------------------------------------------------------
    def timestamps(self) -> np.ndarray:
        """All event timestamps as a float array."""
        return np.array([e.timestamp for e in self.events], dtype=np.float64)

    def event_names(self) -> list[str]:
        return [e.event for e in self.events]

    def interarrivals(self) -> np.ndarray:
        """Interarrival times: first event gets 0, then successive deltas.

        This matches CPT-GPT's training convention (§4.5): the first token
        of every stream carries an interarrival time of zero.
        """
        times = self.timestamps()
        if times.size == 0:
            return times
        deltas = np.empty_like(times)
        deltas[0] = 0.0
        np.subtract(times[1:], times[:-1], out=deltas[1:])
        return deltas

    def as_pairs(self) -> list[tuple[float, str]]:
        """``(timestamp, event)`` pairs, the replay engine's input format."""
        return [(e.timestamp, e.event) for e in self.events]

    def count(self, event: str) -> int:
        """Number of occurrences of ``event`` in this stream."""
        return sum(1 for e in self.events if e.event == event)

    def duration(self) -> float:
        """Time between first and last event (0 for streams of length < 2)."""
        if len(self.events) < 2:
            return 0.0
        return self.events[-1].timestamp - self.events[0].timestamp

    @classmethod
    def from_arrays(
        cls,
        ue_id: str,
        device_type: str,
        timestamps: Sequence[float],
        events: Sequence[str],
    ) -> "Stream":
        """Build a stream from parallel arrays (generator output format)."""
        if len(timestamps) != len(events):
            raise ValueError(
                f"length mismatch: {len(timestamps)} timestamps, {len(events)} events"
            )
        return cls(
            ue_id=ue_id,
            device_type=device_type,
            events=[ControlEvent(float(t), e) for t, e in zip(timestamps, events)],
        )
