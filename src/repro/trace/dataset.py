"""Dataset container: a collection of streams plus its event vocabulary."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from ..statemachine.events import EventVocabulary
from .schema import Stream

__all__ = ["TraceDataset"]


@dataclass
class TraceDataset:
    """A control-plane traffic dataset ``D = {S_1, ..., S_n}`` (§3.1).

    Thin wrapper over a list of :class:`Stream` carrying the event
    vocabulary, with the filtering / statistics helpers the pipeline and
    metrics need.
    """

    streams: list[Stream] = field(default_factory=list)
    vocabulary: EventVocabulary | None = None

    def __len__(self) -> int:
        return len(self.streams)

    def __iter__(self) -> Iterator[Stream]:
        return iter(self.streams)

    def __getitem__(self, index: int) -> Stream:
        return self.streams[index]

    def add(self, stream: Stream) -> None:
        self.streams.append(stream)

    def validate(self) -> None:
        """Validate every stream; also checks events are in-vocabulary."""
        for stream in self.streams:
            stream.validate()
            if self.vocabulary is not None:
                for event in stream.event_names():
                    if event not in self.vocabulary:
                        raise ValueError(
                            f"stream {stream.ue_id}: event {event!r} "
                            f"not in vocabulary {tuple(self.vocabulary)}"
                        )

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def filter(self, predicate: Callable[[Stream], bool]) -> "TraceDataset":
        """New dataset holding the streams for which ``predicate`` is True."""
        return TraceDataset(
            streams=[s for s in self.streams if predicate(s)],
            vocabulary=self.vocabulary,
        )

    def by_device_type(self, device_type: str) -> "TraceDataset":
        return self.filter(lambda s: s.device_type == device_type)

    def sample(self, count: int, rng: np.random.Generator) -> "TraceDataset":
        """Uniform random subset of ``count`` streams (without replacement)."""
        if count > len(self.streams):
            raise ValueError(
                f"cannot sample {count} streams from a dataset of {len(self.streams)}"
            )
        indices = rng.choice(len(self.streams), size=count, replace=False)
        return TraceDataset(
            streams=[self.streams[i] for i in sorted(indices)],
            vocabulary=self.vocabulary,
        )

    def truncate_streams(self, max_length: int) -> "TraceDataset":
        """Drop streams longer than ``max_length``.

        §5.1: models are trained to synthesize streams up to a maximum
        length, disregarding the (0.07%) longer ones.
        """
        return self.filter(lambda s: len(s) <= max_length)

    def drop_singletons(self) -> "TraceDataset":
        """Drop streams of length < 2.

        §4.5: streams of length 1 are excluded from CPT-GPT training
        because the first token always carries a stop flag of zero.
        """
        return self.filter(lambda s: len(s) >= 2)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def total_events(self) -> int:
        return sum(len(s) for s in self.streams)

    def device_types(self) -> list[str]:
        return sorted({s.device_type for s in self.streams})

    def infer_technology(self) -> str:
        """``"4G"`` or ``"5G"``, from the vocabulary or observed events.

        Prefers the attached vocabulary; vocabulary-less datasets (CSV
        imports, headerless traces) are classified by their event names
        — REGISTER / DEREGISTER / AN_REL exist only in 5G (Table 1).
        """
        from ..statemachine.events import NR_EVENTS

        if self.vocabulary is not None:
            return "5G" if self.vocabulary.names == NR_EVENTS.names else "4G"
        nr_only = {"REGISTER", "DEREGISTER", "AN_REL"}
        for stream in self.streams:
            if nr_only.intersection(stream.event_names()):
                return "5G"
        return "4G"

    def event_breakdown(self) -> dict[str, float]:
        """Fraction of each event type across the dataset (Table 7's rows)."""
        counter: Counter[str] = Counter()
        for stream in self.streams:
            counter.update(stream.event_names())
        total = sum(counter.values())
        names = (
            tuple(self.vocabulary) if self.vocabulary is not None else sorted(counter)
        )
        if total == 0:
            return {name: 0.0 for name in names}
        return {name: counter.get(name, 0) / total for name in names}

    def flow_lengths(self, event: str | None = None) -> np.ndarray:
        """Per-stream event counts (all events, or one event type).

        This is the flow-length metric of Table 6 / Figure 5.
        """
        if event is None:
            return np.array([len(s) for s in self.streams], dtype=np.int64)
        return np.array([s.count(event) for s in self.streams], dtype=np.int64)

    def interarrival_pool(self) -> np.ndarray:
        """All within-stream interarrival times, pooled (Figure 7)."""
        pools = [s.interarrivals()[1:] for s in self.streams if len(s) > 1]
        if not pools:
            return np.empty(0)
        return np.concatenate(pools)

    def initial_event_distribution(self) -> dict[str, float]:
        """Distribution of each stream's first event type.

        Extracted at training time and shipped with the model to
        bootstrap generation (Figure 4's operational architecture).
        """
        counter: Counter[str] = Counter(
            s.events[0].event for s in self.streams if len(s) > 0
        )
        total = sum(counter.values())
        if total == 0:
            raise ValueError("cannot derive initial-event distribution: empty dataset")
        return {name: count / total for name, count in sorted(counter.items())}

    def replay_pairs(self) -> list[list[tuple[float, str]]]:
        """Per-stream ``(timestamp, event)`` pairs for the replay engine."""
        return [s.as_pairs() for s in self.streams]
