"""Device-type behaviour profiles for the synthetic operator trace.

The paper's dataset (§4.1) covers three device populations — phones,
connected cars and tablets — whose control-plane behaviour differs
substantially (Table 7): connected cars produce far more handovers and
tracking-area updates; tablets attach/detach more often; phones dominate
by volume with ~47% service requests.

Each profile parameterizes a semi-Markov walk on the ground-truth 4G
state machine:

* per-state dwell-time distributions (log-normal mixtures — traditional
  single distributions do not fit control-plane traffic, per §3.3),
* per-state event-choice probabilities,
* per-UE heterogeneity scales (heavy-tailed activity diversity), and
* a diurnal activity profile (hour-of-day drift).

The numeric targets approximate the paper's Table 7 event breakdown and
Figure 5 sojourn ranges; EXPERIMENTS.md records how close the shipped
profiles land.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .diurnal import DiurnalProfile, Harmonic
from .schema import DeviceType

__all__ = ["LogNormalMixture", "DeviceProfile", "DEVICE_PROFILES", "get_profile"]


@dataclass(frozen=True)
class LogNormalMixture:
    """Mixture of log-normal components ``(weight, mu, sigma)``.

    ``mu``/``sigma`` act on the underlying normal, i.e. a component's
    median is ``exp(mu)`` seconds.
    """

    components: tuple[tuple[float, float, float], ...]

    def __post_init__(self) -> None:
        total = sum(w for w, _, _ in self.components)
        if not np.isclose(total, 1.0):
            raise ValueError(f"mixture weights must sum to 1; got {total}")
        if any(sigma <= 0 for _, _, sigma in self.components):
            raise ValueError("mixture sigmas must be positive")

    def sample(self, rng: np.random.Generator, size: int | None = None) -> np.ndarray | float:
        """Draw samples; scalar when ``size`` is None."""
        n = 1 if size is None else size
        weights = np.array([w for w, _, _ in self.components])
        choices = rng.choice(len(self.components), size=n, p=weights)
        mus = np.array([m for _, m, _ in self.components])[choices]
        sigmas = np.array([s for _, _, s in self.components])[choices]
        values = np.exp(rng.normal(mus, sigmas))
        if size is None:
            return float(values[0])
        return values

    def mean(self) -> float:
        """Analytical mixture mean: ``sum w * exp(mu + sigma^2 / 2)``."""
        return float(
            sum(w * np.exp(mu + 0.5 * sigma**2) for w, mu, sigma in self.components)
        )


@dataclass(frozen=True)
class DeviceProfile:
    """Behavioural parameters for one device type.

    Event-choice probabilities are conditional on the current top-level
    state; each dwell in a state emits exactly one event chosen from the
    state's menu, so e.g. the expected number of handovers per CONNECTED
    visit is ``p_ho / (p_release + p_detach_connected)``.
    """

    name: str
    # Dwell-time distributions (seconds) per top-level state.
    connected_dwell: LogNormalMixture
    idle_dwell: LogNormalMixture
    deregistered_dwell: LogNormalMixture
    # Event choice while CONNECTED: HO / TAU / S1_CONN_REL / DTCH.
    p_ho: float
    p_tau_connected: float
    p_release: float
    p_detach_connected: float
    # Event choice while IDLE: SRV_REQ / TAU / DTCH.
    p_service_request: float
    p_tau_idle: float
    p_detach_idle: float
    # Per-UE heterogeneity: log-normal sigma of the idle/connected dwell
    # multipliers (heavier tails -> more diverse flow lengths).
    ue_idle_sigma: float
    ue_connected_sigma: float
    # Initial top-level state probabilities (DEREGISTERED, CONNECTED, IDLE).
    start_state_probs: tuple[float, float, float] = (0.05, 0.15, 0.80)
    diurnal: DiurnalProfile = field(default_factory=DiurnalProfile.flat)

    def __post_init__(self) -> None:
        connected = (
            self.p_ho + self.p_tau_connected + self.p_release + self.p_detach_connected
        )
        idle = self.p_service_request + self.p_tau_idle + self.p_detach_idle
        if not np.isclose(connected, 1.0):
            raise ValueError(f"{self.name}: CONNECTED event probabilities sum to {connected}")
        if not np.isclose(idle, 1.0):
            raise ValueError(f"{self.name}: IDLE event probabilities sum to {idle}")
        if not np.isclose(sum(self.start_state_probs), 1.0):
            raise ValueError(f"{self.name}: start-state probabilities must sum to 1")

    def connected_event_menu(self) -> tuple[tuple[str, float], ...]:
        return (
            ("HO", self.p_ho),
            ("TAU", self.p_tau_connected),
            ("S1_CONN_REL", self.p_release),
            ("DTCH", self.p_detach_connected),
        )

    def idle_event_menu(self) -> tuple[tuple[str, float], ...]:
        return (
            ("SRV_REQ", self.p_service_request),
            ("TAU", self.p_tau_idle),
            ("DTCH", self.p_detach_idle),
        )


def _ln(median_seconds: float) -> float:
    """Log-normal ``mu`` for a given median in seconds."""
    return float(np.log(median_seconds))


#: Phones: many short data sessions; CONNECTED sojourns mostly 5-50 s
#: (Figure 2); evening activity peak.
_PHONE = DeviceProfile(
    name=DeviceType.PHONE,
    connected_dwell=LogNormalMixture(
        ((0.70, _ln(10.0), 0.70), (0.30, _ln(30.0), 0.60))
    ),
    idle_dwell=LogNormalMixture(((0.60, _ln(60.0), 1.00), (0.40, _ln(300.0), 0.80))),
    deregistered_dwell=LogNormalMixture(((1.0, _ln(600.0), 1.00),)),
    p_ho=0.0555,
    p_tau_connected=0.0060,
    p_release=0.9375,
    p_detach_connected=0.0010,
    p_service_request=0.9730,
    p_tau_idle=0.0250,
    p_detach_idle=0.0020,
    ue_idle_sigma=0.55,
    ue_connected_sigma=0.35,
    diurnal=DiurnalProfile((Harmonic(0.50, peak_hour=20.0),)),
)

#: Connected cars: high mobility (handovers, TAUs), commute-hour peaks,
#: longer idle periods around 200-300 s (Figure 5, middle row).
_CONNECTED_CAR = DeviceProfile(
    name=DeviceType.CONNECTED_CAR,
    connected_dwell=LogNormalMixture(
        ((0.50, _ln(20.0), 0.60), (0.50, _ln(60.0), 0.70))
    ),
    idle_dwell=LogNormalMixture(((0.35, _ln(90.0), 0.60), (0.65, _ln(260.0), 0.70))),
    deregistered_dwell=LogNormalMixture(((1.0, _ln(900.0), 0.90),)),
    p_ho=0.1550,
    p_tau_connected=0.0300,
    p_release=0.8070,
    p_detach_connected=0.0080,
    p_service_request=0.9030,
    p_tau_idle=0.0850,
    p_detach_idle=0.0120,
    ue_idle_sigma=0.35,
    ue_connected_sigma=0.25,
    diurnal=DiurnalProfile(
        (Harmonic(0.35, peak_hour=8.0, cycles_per_day=2), Harmonic(0.20, peak_hour=17.0))
    ),
)

#: Tablets: bursty, less frequent use; more attach/detach churn; longest
#: idle tails.
_TABLET = DeviceProfile(
    name=DeviceType.TABLET,
    connected_dwell=LogNormalMixture(((0.60, _ln(8.0), 0.80), (0.40, _ln(25.0), 0.70))),
    idle_dwell=LogNormalMixture(((0.50, _ln(120.0), 1.10), (0.50, _ln(500.0), 0.90))),
    deregistered_dwell=LogNormalMixture(((1.0, _ln(1200.0), 1.10),)),
    p_ho=0.0500,
    p_tau_connected=0.0120,
    p_release=0.9250,
    p_detach_connected=0.0130,
    p_service_request=0.9450,
    p_tau_idle=0.0450,
    p_detach_idle=0.0100,
    ue_idle_sigma=0.70,
    ue_connected_sigma=0.40,
    start_state_probs=(0.10, 0.10, 0.80),
    diurnal=DiurnalProfile((Harmonic(0.60, peak_hour=21.0),)),
)

DEVICE_PROFILES: dict[str, DeviceProfile] = {
    DeviceType.PHONE: _PHONE,
    DeviceType.CONNECTED_CAR: _CONNECTED_CAR,
    DeviceType.TABLET: _TABLET,
}


def get_profile(device_type: str) -> DeviceProfile:
    """Profile for ``device_type``; raises ``KeyError`` for unknown types."""
    DeviceType.validate(device_type)
    return DEVICE_PROFILES[device_type]
