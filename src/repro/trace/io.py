"""Trace serialization: JSONL (one stream per line) and flat CSV.

JSONL is the primary interchange format — it preserves stream structure
and round-trips exactly.  CSV (``ue_id,device_type,timestamp,event``
rows) is provided for interoperability with dataframe tooling.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from ..statemachine.events import EventVocabulary, LTE_EVENTS, NR_EVENTS
from .dataset import TraceDataset
from .schema import ControlEvent, Stream

__all__ = ["save_jsonl", "load_jsonl", "save_csv", "load_csv"]

_VOCABULARIES = {"4G": LTE_EVENTS, "5G": NR_EVENTS}


def _vocabulary_tag(vocabulary: EventVocabulary | None) -> str | None:
    for tag, vocab in _VOCABULARIES.items():
        if vocabulary is not None and vocabulary.names == vocab.names:
            return tag
    return None


def save_jsonl(dataset: TraceDataset, path: str | Path) -> None:
    """Write ``dataset`` as JSON-lines; first line is a header record."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        header = {
            "format": "repro-cpt-trace-v1",
            "streams": len(dataset),
            "vocabulary": _vocabulary_tag(dataset.vocabulary),
        }
        handle.write(json.dumps(header) + "\n")
        for stream in dataset:
            record = {
                "ue_id": stream.ue_id,
                "device_type": stream.device_type,
                "events": [[event.timestamp, event.event] for event in stream],
            }
            handle.write(json.dumps(record) + "\n")


def load_jsonl(path: str | Path) -> TraceDataset:
    """Load a JSONL trace written by :func:`save_jsonl`."""
    path = Path(path)
    streams: list[Stream] = []
    vocabulary: EventVocabulary | None = None
    with open(path, encoding="utf-8") as handle:
        header_line = handle.readline()
        if not header_line:
            raise ValueError(f"{path}: empty trace file")
        header = json.loads(header_line)
        if header.get("format") != "repro-cpt-trace-v1":
            raise ValueError(f"{path}: unrecognized trace format {header.get('format')!r}")
        tag = header.get("vocabulary")
        if tag is not None:
            vocabulary = _VOCABULARIES.get(tag)
            if vocabulary is None:
                raise ValueError(f"{path}: unknown vocabulary tag {tag!r}")
        for line_number, line in enumerate(handle, start=2):
            if not line.strip():
                continue
            record = json.loads(line)
            stream = Stream(
                ue_id=record["ue_id"],
                device_type=record["device_type"],
                events=[ControlEvent(float(t), e) for t, e in record["events"]],
            )
            stream.validate()
            streams.append(stream)
    dataset = TraceDataset(streams=streams, vocabulary=vocabulary)
    return dataset


def save_csv(dataset: TraceDataset, path: str | Path) -> None:
    """Write ``dataset`` as a flat event-per-row CSV."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["ue_id", "device_type", "timestamp", "event"])
        for stream in dataset:
            for event in stream:
                writer.writerow(
                    [stream.ue_id, stream.device_type, repr(event.timestamp), event.event]
                )


def load_csv(path: str | Path, vocabulary: EventVocabulary | None = None) -> TraceDataset:
    """Load a CSV trace; rows are grouped into streams by ``ue_id``.

    Row order within a UE is preserved, so a file written by
    :func:`save_csv` round-trips exactly.
    """
    path = Path(path)
    by_ue: dict[str, Stream] = {}
    order: list[str] = []
    with open(path, encoding="utf-8", newline="") as handle:
        reader = csv.DictReader(handle)
        required = {"ue_id", "device_type", "timestamp", "event"}
        if reader.fieldnames is None or not required.issubset(reader.fieldnames):
            raise ValueError(f"{path}: CSV must have columns {sorted(required)}")
        for row in reader:
            ue_id = row["ue_id"]
            if ue_id not in by_ue:
                by_ue[ue_id] = Stream(ue_id=ue_id, device_type=row["device_type"])
                order.append(ue_id)
            by_ue[ue_id].events.append(
                ControlEvent(float(row["timestamp"]), row["event"])
            )
    streams = [by_ue[ue_id] for ue_id in order]
    for stream in streams:
        stream.validate()
    return TraceDataset(streams=streams, vocabulary=vocabulary)
