"""Time-of-day (diurnal) activity modulation.

The paper's C5 requires capturing long-term data drifts such as diurnal
variations in UE behaviour.  The synthetic operator trace models this
with a per-device-type activity profile: a strictly positive multiplier
over hour-of-day built from a small number of cosine harmonics.  A
multiplier above one means a busier hour (shorter idle dwells, more
sessions per hour).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Harmonic", "DiurnalProfile"]

_HOURS_PER_DAY = 24.0


@dataclass(frozen=True)
class Harmonic:
    """One cosine component: ``amplitude * cos(2*pi*k*(h - peak_hour)/24)``."""

    amplitude: float
    peak_hour: float
    cycles_per_day: int = 1

    def value(self, hour: float) -> float:
        phase = 2.0 * np.pi * self.cycles_per_day * (hour - self.peak_hour)
        return self.amplitude * float(np.cos(phase / _HOURS_PER_DAY))


@dataclass(frozen=True)
class DiurnalProfile:
    """Activity multiplier over hour-of-day.

    ``activity(h) = exp(sum_k harmonic_k(h))`` — the log-link keeps the
    multiplier positive and makes amplitudes compose multiplicatively.
    """

    harmonics: tuple[Harmonic, ...] = ()

    def activity(self, hour: float) -> float:
        """Multiplier at (possibly fractional) ``hour``; period is 24h."""
        hour = float(hour) % _HOURS_PER_DAY
        return float(np.exp(sum(h.value(hour) for h in self.harmonics)))

    def activity_series(self, hours: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`activity` over an array of hours."""
        return np.array([self.activity(h) for h in np.asarray(hours, dtype=np.float64)])

    @classmethod
    def flat(cls) -> "DiurnalProfile":
        """No modulation (activity identically 1)."""
        return cls(harmonics=())
