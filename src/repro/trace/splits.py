"""Train/validation/test splitting utilities.

The paper trains on seven days of June 2022 and tests on one day of
August 2022, treating the same UE on different days as different UEs
(§5.1).  With the synthetic substrate, distinct capture days are
distinct seeds; these helpers cover the remaining splitting needs:
deterministic UE-level holdouts and time-window slicing.
"""

from __future__ import annotations

import hashlib

import numpy as np

from .dataset import TraceDataset
from .schema import ControlEvent, Stream

__all__ = ["split_by_ue", "split_by_time", "kfold_by_ue"]


def _ue_fraction(ue_id: str, salt: str) -> float:
    """Deterministic hash of a UE id to [0, 1)."""
    digest = hashlib.sha256(f"{salt}:{ue_id}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def split_by_ue(
    dataset: TraceDataset, train_fraction: float, salt: str = "split"
) -> tuple[TraceDataset, TraceDataset]:
    """Deterministic UE-level split into (train, held-out).

    Stable across runs and machine boundaries: assignment depends only
    on the UE id and ``salt``, so re-splitting an extended trace keeps
    previously assigned UEs on their side.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError(f"train_fraction must be in (0, 1); got {train_fraction}")
    train = TraceDataset(streams=[], vocabulary=dataset.vocabulary)
    test = TraceDataset(streams=[], vocabulary=dataset.vocabulary)
    for stream in dataset:
        target = train if _ue_fraction(stream.ue_id, salt) < train_fraction else test
        target.add(stream)
    return train, test


def split_by_time(
    dataset: TraceDataset, boundary: float
) -> tuple[TraceDataset, TraceDataset]:
    """Split every stream at an absolute timestamp.

    Events strictly before ``boundary`` go left, the rest right; streams
    that end up empty on a side are dropped from that side.  Useful for
    within-capture drift studies (first vs second half-hour).
    """
    left = TraceDataset(streams=[], vocabulary=dataset.vocabulary)
    right = TraceDataset(streams=[], vocabulary=dataset.vocabulary)
    for stream in dataset:
        before = [e for e in stream if e.timestamp < boundary]
        after = [e for e in stream if e.timestamp >= boundary]
        if before:
            left.add(
                Stream(
                    ue_id=stream.ue_id,
                    device_type=stream.device_type,
                    events=[ControlEvent(e.timestamp, e.event) for e in before],
                )
            )
        if after:
            right.add(
                Stream(
                    ue_id=stream.ue_id,
                    device_type=stream.device_type,
                    events=[ControlEvent(e.timestamp, e.event) for e in after],
                )
            )
    return left, right


def kfold_by_ue(dataset: TraceDataset, folds: int, salt: str = "fold") -> list[TraceDataset]:
    """Deterministic k-way UE partition (for cross-validated fidelity)."""
    if folds < 2:
        raise ValueError("folds must be >= 2")
    buckets = [
        TraceDataset(streams=[], vocabulary=dataset.vocabulary) for _ in range(folds)
    ]
    for stream in dataset:
        index = int(_ue_fraction(stream.ue_id, salt) * folds)
        buckets[min(index, folds - 1)].add(stream)
    return buckets
