"""``repro.trace`` — trace data model, IO and the synthetic operator simulator."""

from .anonymize import jitter_timestamps, k_anonymous_device_counts, pseudonymize
from .dataset import TraceDataset
from .device import DEVICE_PROFILES, DeviceProfile, LogNormalMixture, get_profile
from .diurnal import DiurnalProfile, Harmonic
from .io import load_csv, load_jsonl, save_csv, save_jsonl
from .schema import ControlEvent, DeviceType, Stream
from .splits import kfold_by_ue, split_by_time, split_by_ue
from .synthetic import (
    SyntheticTraceConfig,
    generate_hourly_traces,
    generate_mixed_trace,
    generate_trace,
)

__all__ = [
    "ControlEvent",
    "Stream",
    "DeviceType",
    "TraceDataset",
    "DeviceProfile",
    "LogNormalMixture",
    "DEVICE_PROFILES",
    "get_profile",
    "DiurnalProfile",
    "Harmonic",
    "SyntheticTraceConfig",
    "generate_trace",
    "generate_mixed_trace",
    "generate_hourly_traces",
    "pseudonymize",
    "jitter_timestamps",
    "k_anonymous_device_counts",
    "split_by_ue",
    "split_by_time",
    "kfold_by_ue",
    "save_jsonl",
    "load_jsonl",
    "save_csv",
    "load_csv",
]
