"""Trace anonymization utilities (paper Appendix A, Ethics).

The paper's dataset was collected "with UE-specific information
obfuscated" so that neither the training trace nor the synthesized one
reveals UE identities.  These helpers implement that pipeline for
operators using this library on real captures:

* :func:`pseudonymize` — replace UE IDs with salted-hash pseudonyms
  (consistent within a dataset, irreversible without the salt);
* :func:`jitter_timestamps` — bounded random time jitter, breaking exact
  temporal fingerprints while preserving interarrival statistics;
* :func:`k_anonymous_device_counts` — verify each device-type population
  is large enough that membership is not identifying.
"""

from __future__ import annotations

import hashlib

import numpy as np

from .dataset import TraceDataset
from .schema import ControlEvent, Stream

__all__ = ["pseudonymize", "jitter_timestamps", "k_anonymous_device_counts"]


def pseudonymize(dataset: TraceDataset, salt: str) -> TraceDataset:
    """Replace every UE ID with a salted SHA-256 pseudonym.

    The same (salt, ue_id) pair always maps to the same pseudonym, so
    multi-capture joins remain possible for the salt holder; without the
    salt the mapping is one-way.
    """
    if not salt:
        raise ValueError("an empty salt defeats pseudonymization")
    out = TraceDataset(streams=[], vocabulary=dataset.vocabulary)
    for stream in dataset:
        digest = hashlib.sha256(f"{salt}:{stream.ue_id}".encode("utf-8")).hexdigest()
        out.add(
            Stream(
                ue_id=digest[:16],
                device_type=stream.device_type,
                events=[ControlEvent(e.timestamp, e.event) for e in stream],
            )
        )
    return out


def jitter_timestamps(
    dataset: TraceDataset, max_jitter_seconds: float, rng: np.random.Generator
) -> TraceDataset:
    """Shift each stream by a uniform offset in ±``max_jitter_seconds``.

    A per-stream (not per-event) shift preserves every interarrival time
    — and therefore all fidelity metrics — while decoupling streams from
    wall-clock instants that could be cross-referenced.
    """
    if max_jitter_seconds < 0:
        raise ValueError("max_jitter_seconds must be non-negative")
    out = TraceDataset(streams=[], vocabulary=dataset.vocabulary)
    for stream in dataset:
        offset = float(rng.uniform(-max_jitter_seconds, max_jitter_seconds))
        out.add(
            Stream(
                ue_id=stream.ue_id,
                device_type=stream.device_type,
                events=[ControlEvent(e.timestamp + offset, e.event) for e in stream],
            )
        )
    return out


def k_anonymous_device_counts(dataset: TraceDataset, k: int) -> dict[str, bool]:
    """Check k-anonymity of the device-type attribute.

    Returns, per device type present, whether at least ``k`` UEs share
    it.  Types failing the check should be dropped or merged before
    release.
    """
    if k < 1:
        raise ValueError("k must be positive")
    counts: dict[str, int] = {}
    for stream in dataset:
        counts[stream.device_type] = counts.get(stream.device_type, 0) + 1
    return {device: count >= k for device, count in sorted(counts.items())}
