"""``repro.core`` — the CPT-GPT model, training, transfer and generation.

The paper's primary contribution: a decoder-only transformer over
multi-modal control-plane tokens, trained with supervised maximum
likelihood (no GAN), with a distribution-parameter head for interarrival
times and transfer learning for hourly drift.
"""

from .config import CPTGPTConfig, TrainingConfig
from .generate import GeneratorPackage, InferenceEngine, random_ue_id
from .model import CPTGPT, FieldPredictions
from .sharding import fork_available, run_sharded, shard_counts, shard_rngs
from .train import (
    EncodedStream,
    EpochStats,
    TrainingResult,
    bucketed_batches,
    encode_training_set,
    iterate_batches,
    train,
)
from .trainer import FusedTrainer, TrainerCheckpoint
from .transfer import HourlyModels, derive_hourly_models, fine_tune

__all__ = [
    "CPTGPTConfig",
    "TrainingConfig",
    "CPTGPT",
    "FieldPredictions",
    "train",
    "FusedTrainer",
    "TrainerCheckpoint",
    "TrainingResult",
    "EpochStats",
    "EncodedStream",
    "encode_training_set",
    "bucketed_batches",
    "iterate_batches",
    "shard_counts",
    "shard_rngs",
    "run_sharded",
    "fork_available",
    "GeneratorPackage",
    "InferenceEngine",
    "random_ue_id",
    "fine_tune",
    "derive_hourly_models",
    "HourlyModels",
]
