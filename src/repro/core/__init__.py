"""``repro.core`` — the CPT-GPT model, training, transfer and generation.

The paper's primary contribution: a decoder-only transformer over
multi-modal control-plane tokens, trained with supervised maximum
likelihood (no GAN), with a distribution-parameter head for interarrival
times and transfer learning for hourly drift.
"""

from .config import CPTGPTConfig, TrainingConfig
from .generate import GeneratorPackage, InferenceEngine, random_ue_id
from .model import CPTGPT, FieldPredictions
from .train import EpochStats, TrainingResult, encode_training_set, iterate_batches, train
from .transfer import HourlyModels, derive_hourly_models, fine_tune

__all__ = [
    "CPTGPTConfig",
    "TrainingConfig",
    "CPTGPT",
    "FieldPredictions",
    "train",
    "TrainingResult",
    "EpochStats",
    "encode_training_set",
    "iterate_batches",
    "GeneratorPackage",
    "InferenceEngine",
    "random_ue_id",
    "fine_tune",
    "derive_hourly_models",
    "HourlyModels",
]
