"""Multi-process sharded generation helpers.

Generation is embarrassingly parallel across streams: a population of
``count`` streams splits into per-worker shards, each driven by an
independent RNG derived from one :class:`numpy.random.SeedSequence`.
The sharded output is *defined* as the concatenation of the shard
outputs in shard order, so it is deterministic given the parent seed and
identical whether shards run in worker processes or inline — platforms
without ``fork`` (and ``num_workers=1``) transparently fall back to the
inline path with byte-identical results.

Workers are forked, so the generator state (model weights, tokenizer)
is inherited copy-on-write and never pickled; only the finished
:class:`~repro.trace.schema.Stream` lists travel back over the pipe.

Two execution styles share the fork-inheritance trick:

* :func:`run_sharded` — batch: run every shard once, collect results in
  shard order.  Teardown is guarded on *every* exit path (context
  manager + ``atexit``): a ``KeyboardInterrupt``/``SIGTERM``-aborted
  run terminates its forked children instead of deadlocking on a map
  that will never finish, and any pool leaked by a hard abort is reaped
  at interpreter exit.
* :func:`spawn_stream_worker` — supervised streaming: one long-lived
  forked producer pushing items through a bounded queue (backpressure:
  the child blocks on a full queue while a daemon heartbeat thread
  keeps proving it alive).  The supervisor side
  (:class:`StreamWorkerHandle`) exposes non-blocking item polling,
  heartbeat age, and kill/abandon — the primitives
  :mod:`repro.service` builds crash/hang detection and
  restart-from-cursor on.
"""

from __future__ import annotations

import atexit
import multiprocessing
import queue as _queue
import threading
import time
import weakref
from contextlib import contextmanager
from typing import Callable, Iterable, Sequence, TypeVar

import numpy as np

__all__ = [
    "shard_counts",
    "shard_rngs",
    "run_sharded",
    "fork_available",
    "spawn_stream_worker",
    "StreamWorkerHandle",
]

T = TypeVar("T")

#: Task table consumed by forked workers.  Set only for the duration of a
#: ``run_sharded`` call (or a ``spawn_stream_worker`` fork); children
#: inherit it through fork, so the parent never serializes the task's
#: closed-over state.  The lock keeps concurrent spawns from racing on
#: it (they serialize).
_ACTIVE_TASK: Callable[[int], object] | None = None
# Parent-side spawn serialization only; forked children never acquire
# it.  repro-lint: allow[fork-safety]
_ACTIVE_TASK_LOCK = threading.Lock()

#: Streaming task inherited by forked stream workers (same trick).
_STREAM_TASK: Callable[[int, int], Iterable] | None = None

#: Live fork pools / stream workers, reaped at interpreter exit so an
#: aborted run can never leak worker processes.
_LIVE_POOLS: "weakref.WeakSet" = weakref.WeakSet()
_LIVE_WORKERS: "weakref.WeakSet" = weakref.WeakSet()


def fork_available() -> bool:
    """Whether this platform can fork workers (Linux/macOS yes, Windows no)."""
    return "fork" in multiprocessing.get_all_start_methods()


def shard_counts(count: int, num_shards: int) -> list[int]:
    """Split ``count`` into ``num_shards`` near-equal non-negative parts.

    The first ``count % num_shards`` shards take the extra stream, and
    empty shards are kept (a worker simply returns no streams) so the
    shard ↔ RNG pairing never depends on the population size.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    base, extra = divmod(count, num_shards)
    return [base + (1 if i < extra else 0) for i in range(num_shards)]


def shard_rngs(rng: np.random.Generator, num_shards: int) -> list[np.random.Generator]:
    """Independent per-shard generators derived from ``rng``.

    One draw from the parent seeds a :class:`~numpy.random.SeedSequence`
    whose spawned children seed the shard RNGs — the standard recipe for
    statistically independent, reproducible parallel streams.  The
    single parent draw means the parent RNG advances identically no
    matter how many shards are requested.
    """
    entropy = int(rng.integers(np.iinfo(np.int64).max))
    children = np.random.SeedSequence(entropy).spawn(num_shards)
    return [np.random.default_rng(child) for child in children]


def _invoke_shard(index: int):
    """Top-level trampoline executed inside forked workers."""
    assert _ACTIVE_TASK is not None, "worker invoked outside run_sharded"
    return _ACTIVE_TASK(index)


@atexit.register
def _reap_leaked_workers() -> None:  # pragma: no cover - interpreter exit
    for pool in list(_LIVE_POOLS):
        try:
            pool.terminate()
        except Exception:
            pass
    for handle in list(_LIVE_WORKERS):
        try:
            handle.abandon()
        except Exception:
            pass


@contextmanager
def _supervised_pool(context, processes: int):
    """A fork pool whose children are torn down on every exit path.

    A clean exit closes and joins; an exceptional exit — including
    ``KeyboardInterrupt`` raised mid-``map`` — terminates the children
    outright instead of waiting for results that will never arrive (the
    interrupted-run deadlock/leak).  The pool is also tracked in
    :data:`_LIVE_POOLS` so a hard abort that skips the ``finally`` is
    still reaped by the ``atexit`` guard.
    """
    pool = context.Pool(processes=processes)
    _LIVE_POOLS.add(pool)
    try:
        yield pool
    except BaseException:
        pool.terminate()
        raise
    else:
        pool.close()
    finally:
        pool.join()
        _LIVE_POOLS.discard(pool)


def run_sharded(
    task: Callable[[int], T], num_shards: int, num_workers: int
) -> list[T]:
    """Run ``task(0..num_shards-1)``, in forked workers when possible.

    Results come back in shard order regardless of completion order, so
    output is deterministic.  With ``num_workers <= 1``, or when the
    platform cannot fork, shards run inline in the calling process and
    produce identical results.  Interrupted runs (``KeyboardInterrupt``,
    ``SIGTERM`` surfaced as an exception) terminate their forked
    children — workers never outlive the call.
    """
    global _ACTIVE_TASK
    if num_workers <= 1 or num_shards <= 1 or not fork_available():
        return [task(i) for i in range(num_shards)]
    context = multiprocessing.get_context("fork")
    with _ACTIVE_TASK_LOCK:
        _ACTIVE_TASK = task
        try:
            with _supervised_pool(
                context, min(num_workers, num_shards)
            ) as pool:
                return pool.map(_invoke_shard, range(num_shards))
        finally:
            _ACTIVE_TASK = None


# ----------------------------------------------------------------------
# Supervised streaming workers
# ----------------------------------------------------------------------
def _stream_worker_main(
    index: int,
    resume: int,
    out_queue,
    heartbeat,
    beat_interval: float,
) -> None:  # pragma: no cover - runs in forked children
    """Child entry point: stream the task's items through the queue.

    A daemon thread refreshes ``heartbeat`` every ``beat_interval``
    seconds even while the main thread blocks on a full queue, so the
    supervisor can tell backpressure (alive, queue full) from a genuine
    hang (heartbeat stale).  Failures are reported as an ``("error",
    message)`` item before the child exits nonzero.
    """
    stop = threading.Event()

    def _beat() -> None:
        while not stop.is_set():
            # Cross-process liveness beacon: must be real wall clock so
            # the parent can detect a hung child.
            # repro-lint: allow[wallclock-in-deterministic-path]
            heartbeat.value = time.monotonic()
            stop.wait(beat_interval)

    threading.Thread(target=_beat, daemon=True).start()
    try:
        task = _STREAM_TASK
        assert task is not None, "stream worker forked outside spawn"
        for item in task(index, resume):
            out_queue.put(("item", item))
        out_queue.put(("done", None))
        out_queue.close()
        out_queue.join_thread()
    except BaseException as exc:
        try:
            out_queue.put(
                ("error", f"{type(exc).__name__}: {exc}"), timeout=1.0
            )
            out_queue.close()
            out_queue.join_thread()  # flush before dying; feeder is a thread
        except Exception:
            pass
        stop.set()
        raise SystemExit(1)
    stop.set()


class StreamWorkerHandle:
    """Supervisor-side view of one forked streaming producer.

    Items flow child → parent through a bounded ``multiprocessing``
    queue, then through a bounded in-process buffer fed by a daemon
    drain thread; the total in-flight bound is ``2 * queue_items + 1``
    per worker.  The drain-thread indirection means the supervisor
    *never* blocks on the pipe — even if the child was killed mid-write
    and left a truncated frame, only the (abandonable) drain thread can
    wedge, and :meth:`abandon` walks away from it.
    """

    def __init__(
        self,
        index: int,
        resume: int,
        process,
        mp_queue,
        heartbeat,
        queue_items: int,
    ) -> None:
        self.index = index
        self.resume = resume
        self.process = process
        self.heartbeat = heartbeat
        self.error: str | None = None
        self._mp_queue = mp_queue
        self._local: _queue.Queue = _queue.Queue(maxsize=max(1, queue_items))
        self._abandoned = threading.Event()
        self._finished = threading.Event()
        self._drainer = threading.Thread(target=self._drain, daemon=True)
        self._drainer.start()

    # ------------------------------------------------------------------
    def _drain(self) -> None:
        """Forward queue items into the bounded local buffer.

        Runs in a daemon thread; blocking on the local buffer's ``put``
        is what propagates consumer backpressure down to the child's
        bounded queue.
        """
        while not self._abandoned.is_set():
            try:
                kind, payload = self._mp_queue.get(timeout=0.2)
            except _queue.Empty:
                if self._finished.is_set():
                    break
                continue
            except (EOFError, OSError):
                break
            if kind == "done":
                self._finished.set()
                break
            if kind == "error":
                self.error = str(payload)
                self._finished.set()
                break
            while not self._abandoned.is_set():
                try:
                    self._local.put(payload, timeout=0.2)
                    break
                except _queue.Full:
                    continue

    # ------------------------------------------------------------------
    def get_nowait(self):
        """The next streamed item, or ``None`` when nothing is buffered."""
        try:
            return self._local.get_nowait()
        except _queue.Empty:
            return None

    @property
    def pending(self) -> int:
        """Items buffered parent-side (approximate, thread-safe)."""
        return self._local.qsize()

    @property
    def finished(self) -> bool:
        """Whether the child reported completion (or a failure)."""
        return self._finished.is_set()

    @property
    def failed(self) -> bool:
        return self.error is not None

    def alive(self) -> bool:
        return self.process.is_alive()

    def exhausted(self) -> bool:
        """Done streaming: child finished cleanly and the buffer is empty."""
        return (
            self._finished.is_set()
            and self.error is None
            and self._local.empty()
        )

    def heartbeat_age(self, now: float | None = None) -> float:
        """Seconds since the child last proved it was alive."""
        # Liveness check against the shared heartbeat: real wall clock
        # by design (injectable via `now` for tests).
        # repro-lint: allow[wallclock-in-deterministic-path]
        reference = time.monotonic() if now is None else now
        return max(0.0, reference - self.heartbeat.value)

    # ------------------------------------------------------------------
    def kill(self) -> None:
        """SIGKILL the child (crash injection / hang recovery)."""
        if self.process.is_alive():
            self.process.kill()

    def abandon(self) -> None:
        """Tear the worker down and walk away from its channel.

        Kills the child if needed, unblocks and retires the drain
        thread, and drops any buffered items — the caller restarts from
        its durable cursor, so nothing is lost, only regenerated.
        """
        self._abandoned.set()
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=5.0)
        try:
            while True:
                self._local.get_nowait()
        except _queue.Empty:
            pass
        try:
            self._mp_queue.close()
        except Exception:
            pass
        _LIVE_WORKERS.discard(self)


def spawn_stream_worker(
    task: Callable[[int, int], Iterable],
    index: int,
    resume: int,
    *,
    queue_items: int = 8,
    beat_interval: float = 0.2,
) -> StreamWorkerHandle:
    """Fork one supervised streaming worker for ``task(index, resume)``.

    ``task`` must be reachable in the parent at fork time (it is
    inherited copy-on-write, never pickled) and return an iterable; the
    worker streams its items through a bounded queue of ``queue_items``
    and reports completion / failure in-band.  ``resume`` is the durable
    cursor handed back to the task so a restarted worker can skip
    already-delivered work.  Requires ``fork``
    (:func:`fork_available`); callers fall back to running the task
    inline otherwise.
    """
    if not fork_available():  # pragma: no cover - exercised on Windows only
        raise RuntimeError(
            "spawn_stream_worker requires the fork start method; "
            "run the task inline instead"
        )
    if queue_items < 1:
        raise ValueError("queue_items must be >= 1")
    global _STREAM_TASK
    context = multiprocessing.get_context("fork")
    mp_queue = context.Queue(maxsize=queue_items)
    # Seed the heartbeat with the spawn instant (wall clock by design).
    # repro-lint: allow[wallclock-in-deterministic-path]
    heartbeat = context.Value("d", time.monotonic())
    with _ACTIVE_TASK_LOCK:
        _STREAM_TASK = task
        try:
            process = context.Process(
                target=_stream_worker_main,
                args=(index, resume, mp_queue, heartbeat, beat_interval),
                daemon=True,
            )
            process.start()
        finally:
            _STREAM_TASK = None
    handle = StreamWorkerHandle(
        index, resume, process, mp_queue, heartbeat, queue_items
    )
    _LIVE_WORKERS.add(handle)
    return handle
