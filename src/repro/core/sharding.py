"""Multi-process sharded generation helpers.

Generation is embarrassingly parallel across streams: a population of
``count`` streams splits into per-worker shards, each driven by an
independent RNG derived from one :class:`numpy.random.SeedSequence`.
The sharded output is *defined* as the concatenation of the shard
outputs in shard order, so it is deterministic given the parent seed and
identical whether shards run in worker processes or inline — platforms
without ``fork`` (and ``num_workers=1``) transparently fall back to the
inline path with byte-identical results.

Workers are forked, so the generator state (model weights, tokenizer)
is inherited copy-on-write and never pickled; only the finished
:class:`~repro.trace.schema.Stream` lists travel back over the pipe.
"""

from __future__ import annotations

import multiprocessing
import threading
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence, TypeVar

import numpy as np

__all__ = ["shard_counts", "shard_rngs", "run_sharded", "fork_available"]

T = TypeVar("T")

#: Task table consumed by forked workers.  Set only for the duration of a
#: ``run_sharded`` call; children inherit it through fork, so the parent
#: never serializes the task's closed-over state.  The lock keeps
#: concurrent ``run_sharded`` calls from racing on it (they serialize).
_ACTIVE_TASK: Callable[[int], object] | None = None
_ACTIVE_TASK_LOCK = threading.Lock()


def fork_available() -> bool:
    """Whether this platform can fork workers (Linux/macOS yes, Windows no)."""
    return "fork" in multiprocessing.get_all_start_methods()


def shard_counts(count: int, num_shards: int) -> list[int]:
    """Split ``count`` into ``num_shards`` near-equal non-negative parts.

    The first ``count % num_shards`` shards take the extra stream, and
    empty shards are kept (a worker simply returns no streams) so the
    shard ↔ RNG pairing never depends on the population size.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    base, extra = divmod(count, num_shards)
    return [base + (1 if i < extra else 0) for i in range(num_shards)]


def shard_rngs(rng: np.random.Generator, num_shards: int) -> list[np.random.Generator]:
    """Independent per-shard generators derived from ``rng``.

    One draw from the parent seeds a :class:`~numpy.random.SeedSequence`
    whose spawned children seed the shard RNGs — the standard recipe for
    statistically independent, reproducible parallel streams.  The
    single parent draw means the parent RNG advances identically no
    matter how many shards are requested.
    """
    entropy = int(rng.integers(np.iinfo(np.int64).max))
    children = np.random.SeedSequence(entropy).spawn(num_shards)
    return [np.random.default_rng(child) for child in children]


def _invoke_shard(index: int):
    """Top-level trampoline executed inside forked workers."""
    assert _ACTIVE_TASK is not None, "worker invoked outside run_sharded"
    return _ACTIVE_TASK(index)


def run_sharded(
    task: Callable[[int], T], num_shards: int, num_workers: int
) -> list[T]:
    """Run ``task(0..num_shards-1)``, in forked workers when possible.

    Results come back in shard order regardless of completion order, so
    output is deterministic.  With ``num_workers <= 1``, or when the
    platform cannot fork, shards run inline in the calling process and
    produce identical results.
    """
    global _ACTIVE_TASK
    if num_workers <= 1 or num_shards <= 1 or not fork_available():
        return [task(i) for i in range(num_shards)]
    context = multiprocessing.get_context("fork")
    with _ACTIVE_TASK_LOCK:
        _ACTIVE_TASK = task
        try:
            with ProcessPoolExecutor(
                max_workers=min(num_workers, num_shards), mp_context=context
            ) as pool:
                return list(pool.map(_invoke_shard, range(num_shards)))
        finally:
            _ACTIVE_TASK = None
