"""Fused flat-buffer training engine with checkpoint/resume and sharding.

:func:`repro.core.train.train` delegates here.  The engine owns three
capabilities the legacy loop lacked:

**Fused optimizer arenas.**  The optimizer adopts every parameter into
one contiguous buffer (:class:`repro.nn.optim.ParameterArena`), so the
Adam update and gradient clipping run as whole-arena NumPy ops.  In
float64 the trajectory is **bit-equivalent** to the legacy
per-parameter loop (pinned by ``tests/core/test_trainer_fused.py``);
``float32=True`` trains in a float32 arena instead — the training
analogue of the inference engine's fast path (statistically equivalent,
not bitwise; weights are cast back to float64 when the run completes).

**Checkpoint/resume.**  :class:`TrainerCheckpoint` captures weights,
Adam moments and per-parameter step counts, the epoch-start RNG state,
the (epoch, batch) cursor and partial epoch loss sums.  Resuming
continues the run **bit-exactly**: the interrupted-and-resumed run
produces the same weights and per-epoch losses as an uninterrupted one
with the same config.

**Deterministic data-parallel fit.**  With ``grad_shards > 1`` in the
:class:`~repro.core.config.TrainingConfig`, each step's batch is split
into a *fixed* plan of stream shards (``shard_counts``); every shard's
gradient is computed independently and the shard gradients are combined
by a fixed binary tree (the same pairing as
:func:`~repro.nn.numpy_ops.stable_last_sum`), scaled by each shard's
mask count so the combined update equals the full-batch weighted mean.
``num_workers`` only chooses *where* shards are evaluated (forked
worker processes vs inline); the shard plan and reduction order never
depend on it, so ``num_workers=k`` reproduces ``num_workers=1``
bit-exactly.  Sharded fit is its own deterministic algorithm: it is not
bitwise-identical to the unsharded path (shard-local padding and the
tree reduction round differently), just statistically equivalent.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from ..nn import Adam, clip_grad_norm
from ..nn.serialization import read_metadata, write_npz
from ..obs import enabled as _obs_enabled, metrics as _obs_metrics
from ..tokenization import StreamTokenizer
from ..trace.dataset import TraceDataset
from .config import TrainingConfig
from .sharding import fork_available, shard_counts
from .train import (
    EpochStats,
    TrainingResult,
    _batch_loss,
    _build_batch,
    bucketed_batches,
    encode_training_set,
)

__all__ = ["FusedTrainer", "TrainerCheckpoint"]

_CHECKPOINT_FORMAT = "repro-trainer-checkpoint-v1"


def _tree_reduce(buffers: list[np.ndarray]) -> np.ndarray:
    """Sum same-shape buffers with a fixed binary tree.

    The pairing mirrors :func:`repro.nn.numpy_ops.stable_last_sum`
    (adjacent pairs, odd tail folded into the last pair), so the
    accumulation order is a pure function of the shard count — never of
    how shards were scheduled across workers.
    """
    if not buffers:
        raise ValueError("cannot reduce zero buffers")
    while len(buffers) > 1:
        n = len(buffers)
        even = n - (n % 2)
        paired = [buffers[i] + buffers[i + 1] for i in range(0, even, 2)]
        if n % 2:
            paired[-1] = paired[-1] + buffers[-1]
        buffers = paired
    return buffers[0]


# ----------------------------------------------------------------------
# Checkpoints
# ----------------------------------------------------------------------
@dataclass
class TrainerCheckpoint:
    """Everything needed to continue a training run bit-exactly.

    ``epoch``/``batch_in_epoch`` is the cursor of the *next* step to
    run; ``rng_state`` is the RNG state at the start of that epoch (the
    resumed run redraws the epoch's batch order from it and skips the
    first ``batch_in_epoch`` batches).  ``partial_sums`` /
    ``partial_batches`` carry the loss accumulators of the epoch in
    progress so the resumed epoch's :class:`EpochStats` match an
    uninterrupted run.
    """

    weights: dict[str, np.ndarray]
    adam_m: dict[str, np.ndarray]
    adam_v: dict[str, np.ndarray]
    step_counts: np.ndarray
    rng_state: dict
    epoch: int
    batch_in_epoch: int
    partial_sums: np.ndarray
    partial_batches: int
    steps: int
    wall_time_seconds: float
    epoch_stats: list[EpochStats] = field(default_factory=list)
    training: dict | None = None
    model_config: dict | None = None
    dtype: str = "float64"

    def save(self, path: str | Path) -> None:
        """Write the checkpoint as an ``.npz`` archive."""
        arrays: dict[str, np.ndarray] = {"step_counts": self.step_counts}
        arrays["partial_sums"] = np.asarray(self.partial_sums, dtype=np.float64)
        arrays["epoch_stats"] = np.asarray(
            [[s.total, s.event, s.interarrival, s.stop] for s in self.epoch_stats],
            dtype=np.float64,
        ).reshape(len(self.epoch_stats), 4)
        for name, value in self.weights.items():
            arrays[f"weights.{name}"] = value
        for name, value in self.adam_m.items():
            arrays[f"adam_m.{name}"] = value
        for name, value in self.adam_v.items():
            arrays[f"adam_v.{name}"] = value
        metadata = {
            "format": _CHECKPOINT_FORMAT,
            "rng_state": self.rng_state,
            "epoch": self.epoch,
            "batch_in_epoch": self.batch_in_epoch,
            "partial_batches": self.partial_batches,
            "steps": self.steps,
            "wall_time_seconds": self.wall_time_seconds,
            "training": self.training,
            "model_config": self.model_config,
            "dtype": self.dtype,
            "param_names": list(self.weights),
        }
        write_npz(path, arrays, metadata)

    @classmethod
    def load(cls, path: str | Path) -> "TrainerCheckpoint":
        metadata = read_metadata(path)
        if metadata.get("format") != _CHECKPOINT_FORMAT:
            raise ValueError(
                f"{path}: not a trainer checkpoint "
                f"(format {metadata.get('format')!r})"
            )
        names = metadata["param_names"]
        with np.load(Path(path)) as archive:
            weights = {name: archive[f"weights.{name}"] for name in names}
            adam_m = {name: archive[f"adam_m.{name}"] for name in names}
            adam_v = {name: archive[f"adam_v.{name}"] for name in names}
            step_counts = archive["step_counts"]
            partial_sums = archive["partial_sums"]
            stats = archive["epoch_stats"]
        return cls(
            weights=weights,
            adam_m=adam_m,
            adam_v=adam_v,
            step_counts=step_counts,
            rng_state=metadata["rng_state"],
            epoch=int(metadata["epoch"]),
            batch_in_epoch=int(metadata["batch_in_epoch"]),
            partial_sums=partial_sums,
            partial_batches=int(metadata["partial_batches"]),
            steps=int(metadata["steps"]),
            wall_time_seconds=float(metadata["wall_time_seconds"]),
            epoch_stats=[EpochStats(*row) for row in stats],
            training=metadata.get("training"),
            model_config=metadata.get("model_config"),
            dtype=metadata.get("dtype", "float64"),
        )


# ----------------------------------------------------------------------
# Worker pool (persistent across the whole fit)
# ----------------------------------------------------------------------
def _pool_worker(conn, compute, arena) -> None:
    """Child loop: install weights, evaluate assigned shards, reply."""
    try:
        while True:
            message = conn.recv()
            if message is None:
                break
            weights, assigned = message
            arena.data[:] = weights
            conn.send([(sid, compute(indices)) for sid, indices in assigned])
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - teardown races
        pass
    finally:
        conn.close()


class _ShardPool:
    """Forked workers that evaluate gradient shards for one fit() call.

    Workers are forked once (inheriting the model, encoded streams and
    arena layout copy-on-write) and receive the current weight arena
    plus their shard assignments each step.  Shard results return to the
    parent keyed by shard index, so the reduction order is independent
    of scheduling.
    """

    def __init__(self, compute, arena, num_workers: int) -> None:
        context = multiprocessing.get_context("fork")
        self._workers = []
        for _ in range(num_workers):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_pool_worker, args=(child_conn, compute, arena), daemon=True
            )
            process.start()
            child_conn.close()
            self._workers.append((process, parent_conn))

    def run(self, weights: np.ndarray, shards: list) -> list:
        assignment = [[] for _ in self._workers]
        for sid, indices in enumerate(shards):
            assignment[sid % len(self._workers)].append((sid, indices))
        # Idle workers (more workers than shards) are skipped entirely —
        # shipping them the weight arena every step would be pure
        # serialization overhead.
        active = [
            (conn, assigned)
            for (_, conn), assigned in zip(self._workers, assignment)
            if assigned
        ]
        for conn, assigned in active:
            conn.send((weights, assigned))
        results: list = [None] * len(shards)
        for conn, _ in active:
            for sid, payload in conn.recv():
                results[sid] = payload
        return results

    def close(self) -> None:
        for _, conn in self._workers:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
        for process, conn in self._workers:
            process.join(timeout=10)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
            conn.close()


# ----------------------------------------------------------------------
# The trainer
# ----------------------------------------------------------------------
class FusedTrainer:
    """Flat-buffer training engine for CPT-GPT-style models.

    Parameters
    ----------
    model:
        The model to optimize (``model.parameters()`` order defines the
        arena layout).
    tokenizer / config:
        Tokenizer for batch encoding and the optimization schedule.
    float32:
        Train in a float32 parameter arena (fast mode).  Weights are
        cast back to float64 when the run completes.
    optimizer:
        An existing fused optimizer to continue (transfer learning's
        moment-carrying path).  Must match the model's parameters in
        count and shape — call :meth:`~repro.nn.optim.Optimizer.rebind`
        first when the model is a fresh copy.  Mutually exclusive with
        ``resume=``.
    """

    def __init__(
        self,
        model,
        tokenizer: StreamTokenizer,
        config: TrainingConfig,
        *,
        float32: bool = False,
        optimizer: Adam | None = None,
        clock=time.perf_counter,
    ) -> None:
        if config.lr_schedule not in ("constant", "cosine"):
            raise ValueError(f"unknown lr_schedule {config.lr_schedule!r}")
        model_dropout = getattr(getattr(model, "config", None), "dropout", 0.0)
        if config.grad_shards > 1 and model_dropout:
            raise ValueError(
                "sharded fit (grad_shards > 1) does not support dropout: "
                "shard-local RNG draws would make results depend on the plan"
            )
        self.model = model
        self.tokenizer = tokenizer
        self.config = config
        self.float32 = bool(float32)
        self.dtype = np.float32 if float32 else np.float64
        self._optimizer = optimizer
        # Injectable wall clock (R002): only used to *report* training
        # wall time — never to drive the deterministic schedule.
        self._clock = clock
        self._encoded: list | None = None
        self._cached_batches: list | None = None
        self._bucket_indices: list[np.ndarray] | None = None

    # ------------------------------------------------------------------
    # Batch plumbing
    # ------------------------------------------------------------------
    def _cast_batch(self, batch):
        if not self.float32:
            return batch
        from dataclasses import replace

        return replace(
            batch,
            tokens=batch.tokens.astype(np.float32),
            iat_targets=batch.iat_targets.astype(np.float32),
        )

    def _prepare(self, dataset: TraceDataset) -> None:
        self._encoded = encode_training_set(
            dataset, self.tokenizer, self.model.config.max_len
        )
        self._cached_batches = None
        self._bucket_indices = None
        if self.config.length_bucketing:
            # Index lists per bucketed batch: the same stable
            # length-sort bucketed_batches uses.
            order = np.argsort(
                [item.length for item in self._encoded], kind="stable"
            )
            size = self.config.batch_size
            self._bucket_indices = [
                order[start : start + size] for start in range(0, len(order), size)
            ]
            if self.config.grad_shards == 1:
                # The sharded path rebuilds shard-local batches from the
                # index lists; materializing padded batches too would
                # double training-set memory for nothing.
                self._cached_batches = [
                    self._cast_batch(batch)
                    for batch in bucketed_batches(
                        self._encoded, self.tokenizer, self.config.batch_size
                    )
                ]

    def _draw_plan(self, rng: np.random.Generator) -> list:
        """One epoch's batch descriptors; mirrors the legacy RNG draws."""
        if self._bucket_indices is not None:
            n = len(self._bucket_indices)
            if self.config.shuffle:
                order = rng.permutation(n)
            else:
                order = np.arange(n)
            return [("bucket", int(i)) for i in order]
        order = np.arange(len(self._encoded))
        if self.config.shuffle:
            rng.shuffle(order)
        size = self.config.batch_size
        return [
            ("chunk", order[start : start + size])
            for start in range(0, len(order), size)
        ]

    def _descriptor_batch(self, descriptor):
        kind, payload = descriptor
        if kind == "bucket":
            return self._cached_batches[payload]
        return self._cast_batch(
            _build_batch([self._encoded[i] for i in payload], self.tokenizer)
        )

    def _descriptor_indices(self, descriptor) -> np.ndarray:
        kind, payload = descriptor
        if kind == "bucket":
            return self._bucket_indices[payload]
        return payload

    # ------------------------------------------------------------------
    # Steps
    # ------------------------------------------------------------------
    def _step_unsharded(self, descriptor, optimizer: Adam) -> np.ndarray:
        """One legacy-identical step: full-batch backward + fused update."""
        batch = self._descriptor_batch(descriptor)
        optimizer.zero_grad()
        total, event_l, iat_l, stop_l = _batch_loss(
            self.model, batch, self.config.loss_weights
        )
        total.backward()
        clip_grad_norm(self.model.parameters(), self.config.grad_clip)
        optimizer.step()
        return np.asarray(
            [float(total.item()), event_l, iat_l, stop_l], dtype=np.float64
        )

    def _shard_grads(self, indices: np.ndarray):
        """Gradient sums for one stream shard (runs in parent or worker)."""
        batch = self._cast_batch(
            _build_batch([self._encoded[i] for i in indices], self.tokenizer)
        )
        self.model.zero_grad()
        total, event_l, iat_l, stop_l = _batch_loss(
            self.model, batch, self.config.loss_weights
        )
        total.backward()
        buffer = self._arena.zeros_buffer()
        present = self._arena.gather_grads(buffer)
        return buffer, present, (event_l, iat_l, stop_l), int(batch.mask.sum())

    def _step_sharded(self, descriptor, optimizer: Adam, pool) -> np.ndarray:
        """One sharded step: fixed shard plan, fixed tree reduction."""
        indices = self._descriptor_indices(descriptor)
        counts = shard_counts(len(indices), self.config.grad_shards)
        shards = []
        cursor = 0
        for count in counts:
            if count:
                shards.append(indices[cursor : cursor + count])
            cursor += count
        if pool is not None:
            results = pool.run(self._arena.data, shards)
        else:
            results = [self._shard_grads(shard) for shard in shards]
        total_positions = sum(count for _, _, _, count in results)
        factors = [count / total_positions for _, _, _, count in results]
        track = _obs_enabled()
        if track:
            t_reduce = self._clock()
        reduced = _tree_reduce(
            [grads * factor for (grads, _, _, _), factor in zip(results, factors)]
        )
        if track:
            _obs_metrics().record_span(
                "train.reduce", self._clock() - t_reduce
            )
        # A parameter is present iff any shard produced a gradient for
        # it; frozen parameters must stay masked so their moments and
        # step counts behave exactly like the unsharded path.
        present = np.zeros(len(self._arena.params), dtype=bool)
        for _, shard_present, _, _ in results:
            present |= shard_present
        norm = self._arena.grad_norm(reduced)
        if norm > self.config.grad_clip:
            reduced *= self.config.grad_clip / norm
        optimizer.step(grads=reduced, present=present)
        event_l = iat_l = stop_l = 0.0
        for (_, _, losses, _), factor in zip(results, factors):
            event_l += factor * losses[0]
            iat_l += factor * losses[1]
            stop_l += factor * losses[2]
        w_event, w_iat, w_stop = self.config.loss_weights
        total = w_event * event_l + w_iat * iat_l + w_stop * stop_l
        return np.asarray([total, event_l, iat_l, stop_l], dtype=np.float64)

    # ------------------------------------------------------------------
    # Resume plumbing
    # ------------------------------------------------------------------
    def _validate_checkpoint(self, ck: TrainerCheckpoint) -> None:
        names = [name for name, _ in self.model.named_parameters()]
        if list(ck.weights) != names:
            raise ValueError(
                "checkpoint parameters do not match the model "
                f"(checkpoint {len(ck.weights)}, model {len(names)})"
            )
        if ck.dtype != np.dtype(self.dtype).name:
            raise ValueError(
                f"checkpoint was trained in {ck.dtype}; "
                f"this trainer runs {np.dtype(self.dtype).name} "
                "(pass the matching float32= setting)"
            )
        if ck.training is not None:
            current = asdict(self.config)
            saved = dict(ck.training)
            saved["loss_weights"] = tuple(saved.get("loss_weights", ()))
            current["loss_weights"] = tuple(current["loss_weights"])
            saved.pop("epochs", None)
            current.pop("epochs", None)
            if saved != current:
                diff = {
                    key
                    for key in set(saved) | set(current)
                    if saved.get(key) != current.get(key)
                }
                raise ValueError(
                    "checkpoint training config differs from the current one "
                    f"(fields {sorted(diff)}); resuming would not reproduce "
                    "an uninterrupted run"
                )
        if ck.epoch > self.config.epochs:
            raise ValueError(
                f"checkpoint is at epoch {ck.epoch} but the config trains "
                f"only {self.config.epochs}"
            )

    def _restore_weights(self, ck: TrainerCheckpoint) -> None:
        own = dict(self.model.named_parameters())
        for name, value in ck.weights.items():
            param = own[name]
            if value.shape != param.data.shape:
                raise ValueError(
                    f"checkpoint shape mismatch for {name}: "
                    f"{value.shape} vs {param.data.shape}"
                )
            param.data = np.asarray(value, dtype=self.dtype).copy()

    def _restore_optimizer(self, ck: TrainerCheckpoint, optimizer: Adam) -> None:
        arena = optimizer.arena
        m = arena.zeros_buffer()
        v = arena.zeros_buffer()
        for i, (name, _) in enumerate(self.model.named_parameters()):
            np.copyto(arena.shaped(m, i), ck.adam_m[name])
            np.copyto(arena.shaped(v, i), ck.adam_v[name])
        optimizer.load_state_buffers(
            {"m": m, "v": v, "steps": ck.step_counts.astype(np.int64)}
        )

    def _snapshot(
        self,
        optimizer: Adam,
        *,
        rng_state: dict,
        epoch: int,
        batch_in_epoch: int,
        partial_sums: np.ndarray,
        partial_batches: int,
        steps: int,
        wall_time: float,
        epoch_stats: list[EpochStats],
    ) -> TrainerCheckpoint:
        arena = optimizer.arena
        state = optimizer.state_buffers()
        names = [name for name, _ in self.model.named_parameters()]
        weights = {}
        adam_m = {}
        adam_v = {}
        for i, name in enumerate(names):
            weights[name] = arena.shaped(arena.data, i).copy()
            adam_m[name] = arena.shaped(state["m"], i).copy()
            adam_v[name] = arena.shaped(state["v"], i).copy()
        model_config = getattr(self.model, "config", None)
        return TrainerCheckpoint(
            weights=weights,
            adam_m=adam_m,
            adam_v=adam_v,
            step_counts=state["steps"],
            rng_state=rng_state,
            epoch=epoch,
            batch_in_epoch=batch_in_epoch,
            partial_sums=np.asarray(partial_sums, dtype=np.float64).copy(),
            partial_batches=partial_batches,
            steps=steps,
            wall_time_seconds=wall_time,
            epoch_stats=list(epoch_stats),
            training=self._config_dict(),
            model_config=(
                model_config.to_dict()
                if hasattr(model_config, "to_dict")
                else None
            ),
            dtype=np.dtype(self.dtype).name,
        )

    def _config_dict(self) -> dict:
        payload = asdict(self.config)
        payload["loss_weights"] = list(payload["loss_weights"])
        return payload

    # ------------------------------------------------------------------
    # Fit
    # ------------------------------------------------------------------
    def fit(
        self,
        dataset: TraceDataset,
        *,
        num_workers: int = 1,
        resume: TrainerCheckpoint | str | Path | None = None,
        checkpoint_path: str | Path | None = None,
        checkpoint_every: int | None = None,
    ) -> TrainingResult:
        """Train the model on ``dataset``; returns per-epoch statistics.

        ``resume`` continues a checkpointed run bit-exactly (path or
        :class:`TrainerCheckpoint`).  When ``checkpoint_path`` is set, a
        checkpoint is written every ``checkpoint_every`` optimizer steps
        (if given) and always when the run finishes.
        """
        config = self.config
        if resume is not None and self._optimizer is not None:
            raise ValueError("pass either resume= or optimizer=, not both")
        if checkpoint_every and checkpoint_path is None:
            raise ValueError(
                "checkpoint_every has no effect without checkpoint_path"
            )
        if num_workers > 1 and config.grad_shards == 1:
            raise ValueError(
                "num_workers > 1 has no effect with grad_shards == 1; set "
                "TrainingConfig.grad_shards (the fixed shard plan workers "
                "evaluate) to parallelize fit"
            )
        ck = (
            TrainerCheckpoint.load(resume)
            if isinstance(resume, (str, Path))
            else resume
        )
        if self.float32:
            for param in self.model.parameters():
                if param.data.dtype != np.float32:
                    param.data = param.data.astype(np.float32)
        if ck is not None:
            self._validate_checkpoint(ck)
            self._restore_weights(ck)
        optimizer = self._optimizer
        if optimizer is None:
            optimizer = Adam(self.model.parameters(), lr=config.learning_rate)
        else:
            if optimizer.arena.dtype != np.dtype(self.dtype):
                raise ValueError(
                    f"optimizer arena is {optimizer.arena.dtype}, "
                    f"trainer runs {np.dtype(self.dtype).name}"
                )
            model_params = self.model.parameters()
            if len(optimizer.params) != len(model_params) or any(
                ours is not theirs
                for ours, theirs in zip(optimizer.params, model_params)
            ):
                # An unbound optimizer would gather no gradients and
                # "train" without ever updating the model.
                raise ValueError(
                    "optimizer is not bound to this model's parameters; "
                    "call optimizer.rebind(model.parameters()) first"
                )
            optimizer.lr = config.learning_rate
        if ck is not None:
            if not isinstance(optimizer, Adam):
                raise ValueError("resume requires an Adam optimizer")
            self._restore_optimizer(ck, optimizer)
        self._arena = optimizer.arena
        self._prepare(dataset)

        rng = np.random.default_rng(config.seed)
        if ck is not None:
            rng.bit_generator.state = ck.rng_state
            start_epoch = ck.epoch
            skip = ck.batch_in_epoch
            sums = np.asarray(ck.partial_sums, dtype=np.float64).copy()
            partial_batches = ck.partial_batches
            epoch_stats = list(ck.epoch_stats)
            steps = ck.steps
            wall_before = ck.wall_time_seconds
        else:
            start_epoch = 0
            skip = 0
            sums = np.zeros(4)
            partial_batches = 0
            epoch_stats = []
            steps = 0
            wall_before = 0.0

        sharded = config.grad_shards > 1
        pool = None
        self.model.train()
        start = self._clock()

        def write_checkpoint(rng_state, epoch, batch_in_epoch) -> None:
            self._snapshot(
                optimizer,
                rng_state=rng_state,
                epoch=epoch,
                batch_in_epoch=batch_in_epoch,
                partial_sums=sums,
                partial_batches=partial_batches,
                steps=steps,
                wall_time=wall_before + (self._clock() - start),
                epoch_stats=epoch_stats,
            ).save(checkpoint_path)

        try:
            if sharded and num_workers > 1 and fork_available():
                pool = _ShardPool(self._shard_grads, self._arena, num_workers)
            for epoch in range(start_epoch, config.epochs):
                epoch_rng_state = rng.bit_generator.state
                if config.lr_schedule == "cosine" and config.epochs > 1:
                    progress = epoch / (config.epochs - 1)
                    floor = config.final_lr_fraction
                    optimizer.lr = config.learning_rate * (
                        floor + (1.0 - floor) * 0.5 * (1.0 + np.cos(np.pi * progress))
                    )
                plan = self._draw_plan(rng)
                track = _obs_enabled()
                if track:
                    registry = _obs_metrics()
                    step_counter = registry.counter("train.steps")
                    step_hist = registry.histogram(
                        "train.step_seconds", low=1e-5, high=1e3, bins=48
                    )
                    steps_per_s = registry.gauge("train.steps_per_second")
                for index, descriptor in enumerate(plan):
                    if epoch == start_epoch and index < skip:
                        continue
                    if track:
                        t_step = self._clock()
                    if sharded:
                        stats = self._step_sharded(descriptor, optimizer, pool)
                    else:
                        stats = self._step_unsharded(descriptor, optimizer)
                    if track:
                        dt = self._clock() - t_step
                        step_counter.inc()
                        step_hist.observe(dt)
                        if dt > 0:
                            steps_per_s.set(1.0 / dt)
                    sums += stats
                    partial_batches += 1
                    steps += 1
                    if (
                        checkpoint_path is not None
                        and checkpoint_every
                        and steps % checkpoint_every == 0
                    ):
                        write_checkpoint(epoch_rng_state, epoch, index + 1)
                average = sums / max(partial_batches, 1)
                epoch_stats.append(EpochStats(*average))
                sums = np.zeros(4)
                partial_batches = 0
            result = TrainingResult(
                epochs=epoch_stats,
                wall_time_seconds=wall_before + (self._clock() - start),
                steps=steps,
            )
            if checkpoint_path is not None:
                # Written while the arena still holds the run's dtype.
                write_checkpoint(rng.bit_generator.state, config.epochs, 0)
        finally:
            if pool is not None:
                pool.close()
            # Leave the model usable even when the run aborts mid-epoch
            # (e.g. an unwritable checkpoint path): eval mode, float64.
            self.model.eval()
            if self.float32:
                for param in self.model.parameters():
                    if param.data.dtype != np.float64:
                        param.data = param.data.astype(np.float64)
        return result
