"""Autoregressive generation with batched KV-cache inference.

Implements the inference side of Figure 4: the released artifact is a
:class:`GeneratorPackage` — trained weights, the fitted tokenizer and
the initial-event-type distribution.  Generation bootstraps each stream
by sampling the first event type from that distribution, building a
first token with interarrival 0 and stop 0, then recursively sampling
next tokens until a stop flag of 1 (or the configured maximum length).

The autograd engine is bypassed here: a dedicated numpy path with
per-layer key/value caches makes one decoder step O(context) instead of
O(context²), and whole batches of streams advance in a single step.
Equivalence with the training-time forward pass is covered by tests.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..nn import MLP, no_grad
from ..nn.serialization import load_checkpoint, read_metadata, save_checkpoint
from ..tokenization import StreamTokenizer
from ..trace.dataset import TraceDataset
from ..trace.schema import Stream
from .config import CPTGPTConfig
from .model import CPTGPT

__all__ = ["GeneratorPackage", "InferenceEngine", "random_ue_id"]

#: Must match the floor used by repro.nn.losses.gaussian_nll.
_MIN_SCALE = 1e-3


def random_ue_id(rng: np.random.Generator, length: int = 16) -> str:
    """Random hex UE identifier.

    §4.2.1: UE IDs in the real trace are hashed strings with no semantic
    content, so both CPT-GPT and the NetShare adaptation generate them
    with a plain random string generator.
    """
    digits = rng.integers(0, 16, size=length)
    return "".join("0123456789abcdef"[d] for d in digits)


def _layer_norm(x: np.ndarray, gain: np.ndarray, shift: np.ndarray) -> np.ndarray:
    mean = x.mean(axis=-1, keepdims=True)
    centered = x - mean
    var = (centered * centered).mean(axis=-1, keepdims=True)
    return centered / np.sqrt(var + 1e-5) * gain + shift


_GELU_C = np.sqrt(2.0 / np.pi)


def _gelu(x: np.ndarray) -> np.ndarray:
    return 0.5 * x * (1.0 + np.tanh(_GELU_C * (x + 0.044715 * x**3)))


def _softmax(x: np.ndarray) -> np.ndarray:
    shifted = x - x.max(axis=-1, keepdims=True)
    exps = np.exp(shifted)
    return exps / exps.sum(axis=-1, keepdims=True)


def _softplus(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0) + np.log1p(np.exp(-np.abs(x)))


def _mlp(x: np.ndarray, head: MLP) -> np.ndarray:
    hidden = x @ head.fc1.weight.data + head.fc1.bias.data
    if head.activation == "gelu":
        hidden = _gelu(hidden)
    elif head.activation == "relu":
        hidden = np.maximum(hidden, 0.0)
    else:
        hidden = np.tanh(hidden)
    return hidden @ head.fc2.weight.data + head.fc2.bias.data


@dataclass
class _Cache:
    """Per-layer key/value cache for one generation batch."""

    keys: list[np.ndarray]  # each (B, H, max_steps, head_dim)
    values: list[np.ndarray]
    position: int = 0


class InferenceEngine:
    """Fast numpy forward pass over a trained :class:`CPTGPT`.

    Holds *references* to the model's parameter arrays, so an engine
    built once stays valid as the model trains further.
    """

    def __init__(self, model: CPTGPT) -> None:
        self.model = model
        self.config = model.config

    # ------------------------------------------------------------------
    def new_cache(self, batch: int, max_steps: int) -> _Cache:
        cfg = self.config
        head_dim = cfg.d_model // cfg.num_heads
        shape = (batch, cfg.num_heads, max_steps, head_dim)
        return _Cache(
            keys=[np.zeros(shape) for _ in range(cfg.num_layers)],
            values=[np.zeros(shape) for _ in range(cfg.num_layers)],
        )

    def step(self, tokens: np.ndarray, cache: _Cache) -> dict[str, np.ndarray]:
        """Advance one position for the whole batch.

        Parameters
        ----------
        tokens:
            ``(batch, d_token)`` tokens at the current position.
        cache:
            The KV cache; ``cache.position`` is the index of this token.

        Returns
        -------
        dict with ``event_logits`` (B, E), ``iat_mean`` (B,),
        ``iat_raw_scale`` (B,) or absent, ``stop_logits`` (B, 2).
        """
        model = self.model
        cfg = self.config
        pos = cache.position
        if pos >= cfg.max_len:
            raise ValueError(f"position {pos} exceeds model max_len {cfg.max_len}")
        decoder = model.decoder
        x = (
            tokens @ decoder.input_proj.weight.data
            + decoder.input_proj.bias.data
            + decoder.positional.data[pos]
        )
        batch = x.shape[0]
        heads = cfg.num_heads
        head_dim = cfg.d_model // heads
        for layer, block in enumerate(decoder.blocks):
            normed = _layer_norm(x, block.norm1.gain.data, block.norm1.shift.data)
            qkv = normed @ block.attn.qkv.weight.data + block.attn.qkv.bias.data
            qkv = qkv.reshape(batch, 3, heads, head_dim)
            q, k, v = qkv[:, 0], qkv[:, 1], qkv[:, 2]  # (B, H, hd)
            cache.keys[layer][:, :, pos] = k
            cache.values[layer][:, :, pos] = v
            seen_k = cache.keys[layer][:, :, : pos + 1]  # (B, H, t, hd)
            seen_v = cache.values[layer][:, :, : pos + 1]
            scores = np.einsum("bhd,bhtd->bht", q, seen_k) / np.sqrt(head_dim)
            weights = _softmax(scores)
            context = np.einsum("bht,bhtd->bhd", weights, seen_v)
            context = context.reshape(batch, cfg.d_model)
            attn_out = context @ block.attn.out.weight.data + block.attn.out.bias.data
            x = x + attn_out
            normed2 = _layer_norm(x, block.norm2.gain.data, block.norm2.shift.data)
            hidden = _gelu(normed2 @ block.ff1.weight.data + block.ff1.bias.data)
            x = x + hidden @ block.ff2.weight.data + block.ff2.bias.data
        x = _layer_norm(x, decoder.final_norm.gain.data, decoder.final_norm.shift.data)
        cache.position = pos + 1

        out = {
            "event_logits": _mlp(x, model.event_head),
            "stop_logits": _mlp(x, model.stop_head),
        }
        iat = _mlp(x, model.iat_head)
        out["iat_mean"] = iat[:, 0]
        if cfg.distribution_head:
            out["iat_raw_scale"] = iat[:, 1]
        return out


@dataclass
class GeneratorPackage:
    """The deployable artifact of Figure 4.

    Bundles the trained model, the fitted tokenizer and the
    initial-event-type distribution extracted from the training set.
    """

    model: CPTGPT
    tokenizer: StreamTokenizer
    initial_event_distribution: dict[str, float]
    device_type: str

    def __post_init__(self) -> None:
        total = sum(self.initial_event_distribution.values())
        if not np.isclose(total, 1.0):
            raise ValueError(f"initial-event distribution sums to {total}, expected 1")
        for name in self.initial_event_distribution:
            if name not in self.tokenizer.vocabulary:
                raise ValueError(f"initial-event distribution names unknown event {name!r}")

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def generate(
        self,
        count: int,
        rng: np.random.Generator,
        start_time: float = 0.0,
        batch_size: int = 128,
        temperature: float = 1.0,
        max_len: int | None = None,
    ) -> TraceDataset:
        """Synthesize ``count`` streams.

        Each stream is bootstrapped from the initial-event distribution
        and extended token-by-token until its sampled stop flag is 1 or
        ``max_len`` tokens have been produced.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        limit = self.model.config.max_len if max_len is None else max_len
        if limit > self.model.config.max_len:
            raise ValueError(
                f"max_len {limit} exceeds the model's trained horizon "
                f"{self.model.config.max_len}"
            )
        streams: list[Stream] = []
        with no_grad():
            remaining = count
            while remaining > 0:
                size = min(batch_size, remaining)
                streams.extend(
                    self._generate_batch(size, rng, start_time, temperature, limit)
                )
                remaining -= size
        return TraceDataset(streams=streams, vocabulary=self.tokenizer.vocabulary)

    def _generate_batch(
        self,
        batch: int,
        rng: np.random.Generator,
        start_time: float,
        temperature: float,
        limit: int,
    ) -> list[Stream]:
        engine = InferenceEngine(self.model)
        tokenizer = self.tokenizer
        names = list(self.initial_event_distribution)
        probs = np.array([self.initial_event_distribution[n] for n in names])
        first_names = rng.choice(len(names), size=batch, p=probs)
        first_indices = np.array(
            [tokenizer.vocabulary.index(names[i]) for i in first_names], dtype=np.int64
        )

        events = np.zeros((batch, limit), dtype=np.int64)
        iats = np.zeros((batch, limit), dtype=np.float64)
        stops = np.zeros((batch, limit), dtype=np.int64)
        lengths = np.ones(batch, dtype=np.int64)
        events[:, 0] = first_indices

        cache = engine.new_cache(batch, limit)
        active = np.ones(batch, dtype=bool)
        current = tokenizer.assemble(
            first_indices, np.zeros(batch), np.zeros(batch, dtype=np.int64)
        )
        for pos in range(limit - 1):
            out = engine.step(current, cache)
            event_probs = _softmax(out["event_logits"] / temperature)
            next_events = _sample_rows(event_probs, rng)
            stop_probs = _softmax(out["stop_logits"] / temperature)
            next_stops = _sample_rows(stop_probs, rng)
            if "iat_raw_scale" in out:
                scale = _softplus(out["iat_raw_scale"]) + _MIN_SCALE
                next_iats = rng.normal(out["iat_mean"], scale)
            else:
                next_iats = out["iat_mean"]
            next_iats = np.clip(next_iats, 0.0, 1.0)

            slot = pos + 1
            events[active, slot] = next_events[active]
            iats[active, slot] = next_iats[active]
            stops[active, slot] = next_stops[active]
            lengths[active] = slot + 1
            active = active & (next_stops == 0)
            if not active.any():
                break
            current = tokenizer.assemble(next_events, next_iats, next_stops)

        streams = []
        for i in range(batch):
            length = int(lengths[i])
            tokens = tokenizer.assemble(
                events[i, :length], iats[i, :length], stops[i, :length]
            )
            streams.append(
                tokenizer.decode(
                    tokens,
                    ue_id=random_ue_id(rng),
                    device_type=self.device_type,
                    start_time=start_time,
                )
            )
        return streams

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Write weights + tokenizer + initial-event distribution."""
        metadata = {
            "config": self.model.config.to_dict(),
            "tokenizer": self.tokenizer.to_dict(),
            "initial_event_distribution": self.initial_event_distribution,
            "device_type": self.device_type,
        }
        save_checkpoint(self.model, path, metadata)

    @classmethod
    def load(cls, path: str | Path) -> "GeneratorPackage":
        """Load a package written by :meth:`save`."""
        # Model shape is in the metadata, so peek at it first.
        metadata = read_metadata(path)
        config = CPTGPTConfig.from_dict(metadata["config"])
        model = CPTGPT(config, np.random.default_rng(0))
        load_checkpoint(model, path)
        return cls(
            model=model,
            tokenizer=StreamTokenizer.from_dict(metadata["tokenizer"]),
            initial_event_distribution=metadata["initial_event_distribution"],
            device_type=metadata["device_type"],
        )


def _sample_rows(probs: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Sample one category per row from a (B, K) probability matrix."""
    cumulative = np.cumsum(probs, axis=1)
    draws = rng.random((probs.shape[0], 1))
    return (draws < cumulative).argmax(axis=1)
