"""Autoregressive generation: a continuous-batching numpy inference engine.

Implements the inference side of Figure 4: the released artifact is a
:class:`GeneratorPackage` — trained weights, the fitted tokenizer and
the initial-event-type distribution.  Generation bootstraps each stream
by sampling the first event type from that distribution, building a
first token with interarrival 0 and stop 0, then recursively sampling
next tokens until a stop flag of 1 (or the configured maximum length).

The autograd engine is bypassed here in favor of a dedicated numpy path
built for throughput:

* **Continuous batching** — every batch slot always carries a *live*
  stream.  When a stream samples its stop flag, the finished stream is
  decoded immediately and the slot is re-bootstrapped from the
  initial-event distribution (position reset, cache rows reused in
  place), so batch utilization stays ~100% instead of decaying as
  streams die.  Once no new streams remain to start, retired slots are
  compacted out so the step cost tracks the number of live streams.
* **Per-layer KV caches with ragged positions** — one decoder step is
  O(window) instead of O(context²), and each slot advances at its own
  position.  Caches are pooled and reused across batches.
* **A float32 fast path** — ``float32=True`` threads a reduced dtype
  through weight views, cache allocation, activations and sampling.
  The float64 engine in its default *exact* mode is bit-equivalent to
  the autograd forward pass: attention uses the same ``einsum`` kernels
  as :mod:`repro.nn.attention` (shape-independent accumulation),
  activations come from :mod:`repro.nn.numpy_ops` (the single source
  shared with the training losses), and matmuls are padded to the
  training call shapes.  Throughput generation drops the padding
  (``exact=False``, ~1e-15 agreement).
* **Vectorized sampling** — categorical fields are drawn with the
  Gumbel-argmax trick in one shot per step; the first-token lookup is a
  precomputed index table instead of per-stream ``vocabulary.index``.
* **Sharded generation** — ``num_workers`` splits the population into
  per-worker shards with :class:`numpy.random.SeedSequence`-derived
  RNGs (see :mod:`repro.core.sharding`); output is deterministic given
  the seed and identical to the single-process run of the same shards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter

import numpy as np

from ..nn import MLP
from ..obs import enabled as _obs_enabled, metrics as _obs_metrics
from ..nn.numpy_ops import (
    MIN_SCALE as _MIN_SCALE,
    gelu as _gelu,
    layer_norm as _layer_norm,
    softmax as _softmax,
    softplus as _softplus,
)
from ..nn.serialization import load_checkpoint, read_metadata, save_checkpoint
from ..tokenization import StreamTokenizer
from ..trace.dataset import TraceDataset
from ..trace.schema import Stream
from .config import CPTGPTConfig
from .model import CPTGPT
from .sharding import run_sharded, shard_counts, shard_rngs

__all__ = ["GeneratorPackage", "InferenceEngine", "random_ue_id"]

#: Additive mask value for out-of-window attention scores; matches
#: :func:`repro.nn.functional.causal_mask` so masked weights underflow
#: to exactly 0.0 on both paths.
_MASK_VALUE = -1e9


def random_ue_id(rng: np.random.Generator, length: int = 16) -> str:
    """Random hex UE identifier.

    §4.2.1: UE IDs in the real trace are hashed strings with no semantic
    content, so both CPT-GPT and the NetShare adaptation generate them
    with a plain random string generator.
    """
    digits = rng.integers(0, 16, size=length)
    return "".join("0123456789abcdef"[d] for d in digits)


def _sample_rows(probs: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Sample one category per row from a (B, K) probability matrix.

    Retained for reference and statistical tests; the generation hot
    loop uses :func:`_gumbel_argmax`, which needs no normalization and
    no cumulative-sum scan.
    """
    cumulative = np.cumsum(probs, axis=1)
    draws = rng.random((probs.shape[0], 1))
    return (draws < cumulative).argmax(axis=1)


def _gumbel_argmax(
    logits: np.ndarray, temperature: float, rng: np.random.Generator
) -> np.ndarray:
    """Sample per row from ``softmax(logits / temperature)``.

    ``argmax(logits / T + g)`` with i.i.d. Gumbel noise is distributed
    exactly as the tempered softmax — one vectorized pass, no
    normalization, no cumulative sums.
    """
    noise = rng.gumbel(size=logits.shape).astype(logits.dtype, copy=False)
    if temperature != 1.0:
        logits = logits / temperature
    return (logits + noise).argmax(axis=1)


# ----------------------------------------------------------------------
# Weight binding
# ----------------------------------------------------------------------
class _BoundHead:
    """Dtype-cast weight views of one output :class:`~repro.nn.MLP`."""

    __slots__ = ("w1", "b1", "w2", "b2", "activation")

    def __init__(self, head: MLP, cast) -> None:
        self.w1 = cast(head.fc1.weight.data)
        self.b1 = cast(head.fc1.bias.data)
        self.w2 = cast(head.fc2.weight.data)
        self.b2 = cast(head.fc2.bias.data)
        self.activation = head.activation

    def __call__(self, x: np.ndarray, mm) -> np.ndarray:
        hidden = mm(x, self.w1) + self.b1
        if self.activation == "gelu":
            hidden = _gelu(hidden)
        elif self.activation == "relu":
            hidden = np.maximum(hidden, 0.0)
        else:
            hidden = np.tanh(hidden)
        return mm(hidden, self.w2) + self.b2


class _BoundLayer:
    """Dtype-cast weight views of one decoder block."""

    __slots__ = (
        "norm1_gain", "norm1_shift", "qkv_w", "qkv_b", "out_w", "out_b",
        "norm2_gain", "norm2_shift", "ff1_w", "ff1_b", "ff2_w", "ff2_b",
    )

    def __init__(self, block, cast) -> None:
        self.norm1_gain = cast(block.norm1.gain.data)
        self.norm1_shift = cast(block.norm1.shift.data)
        self.qkv_w = cast(block.attn.qkv.weight.data)
        self.qkv_b = cast(block.attn.qkv.bias.data)
        self.out_w = cast(block.attn.out.weight.data)
        self.out_b = cast(block.attn.out.bias.data)
        self.norm2_gain = cast(block.norm2.gain.data)
        self.norm2_shift = cast(block.norm2.shift.data)
        self.ff1_w = cast(block.ff1.weight.data)
        self.ff1_b = cast(block.ff1.bias.data)
        self.ff2_w = cast(block.ff2.weight.data)
        self.ff2_b = cast(block.ff2.bias.data)


@dataclass
class _Cache:
    """Per-layer key/value cache for one generation batch.

    ``positions`` is per-slot: with continuous batching each slot sits at
    its own depth, and a recycled slot simply resets its position to 0 —
    the stale rows beyond a slot's position are masked out of attention,
    so cache memory is reused ring-style without clearing.
    """

    keys: list[np.ndarray]  # each (B, H, max_steps, head_dim)
    values: list[np.ndarray]
    positions: np.ndarray  # (B,) int64, next write index per slot
    steps: np.ndarray  # (max_steps,) arange, reused for window masks

    @property
    def batch(self) -> int:
        return self.keys[0].shape[0]

    @property
    def max_steps(self) -> int:
        return self.keys[0].shape[2]

    @property
    def position(self) -> int:
        """The deepest slot position (the only one in uniform batches)."""
        return int(self.positions.max())

    @position.setter
    def position(self, value: int) -> None:
        self.positions[:] = value

    def compact(self, keep: np.ndarray) -> "_Cache":
        """A cache holding only the ``keep``-masked slots (copies rows)."""
        return _Cache(
            keys=[k[keep] for k in self.keys],
            values=[v[keep] for v in self.values],
            positions=self.positions[keep],
            steps=self.steps,
        )


class InferenceEngine:
    """Fast numpy forward pass over a trained :class:`CPTGPT`.

    Parameters
    ----------
    model:
        The trained model.  Weight views are (re)bound from the model's
        parameters whenever they change, so an engine built once stays
        valid as the model trains further.
    dtype:
        Inference precision.  float32 halves memory traffic and is the
        throughput mode (logits agree with the autograd forward to
        ~1e-4); float64 (default) agrees to machine precision.
    exact:
        When True (the default for float64), every step is
        *bit-equivalent* to the autograd forward pass of a
        length-``max_steps`` sequence.  The attention contractions
        already use the training ``einsum`` kernels (whose accumulation
        is shape-independent), but BLAS GEMM accumulation is not: a
        ``(B, d) @ (d, k)`` step product can differ from the training
        ``(B, T, d) @ (d, k)`` product in the last bit.  Exact mode
        therefore pads each step matmul to the training call shape —
        about ``max_steps``× more matmul work, the right trade for
        validation and small populations.  Throughput generation
        (:meth:`GeneratorPackage.generate`) uses ``exact=False``, which
        agrees with the autograd forward to ~1e-15 relative.
    """

    def __init__(self, model: CPTGPT, dtype=np.float64, exact: bool | None = None) -> None:
        self.model = model
        self.config = model.config
        self.dtype = np.dtype(dtype)
        self.exact = (self.dtype == np.float64) if exact is None else exact
        self._layers: list[_BoundLayer] | None = None
        self._sources: list[np.ndarray] = []
        self._pooled: _Cache | None = None
        # Python float: a numpy scalar would promote float32 scores.
        self._scale = float(
            1.0 / np.sqrt(self.config.d_model // self.config.num_heads)
        )

    # ------------------------------------------------------------------
    # Weight binding (hoisted out of the step loop)
    # ------------------------------------------------------------------
    def _cast(self, array: np.ndarray) -> np.ndarray:
        if array.dtype == self.dtype:
            return array  # float64: live view, no copy
        return array.astype(self.dtype)

    def bind(self) -> None:
        """Snapshot dtype-cast views of every weight the step loop reads."""
        model = self.model
        decoder = model.decoder
        cast = self._cast
        self._input_w = cast(decoder.input_proj.weight.data)
        self._input_b = cast(decoder.input_proj.bias.data)
        self._positional = cast(decoder.positional.data)
        self._layers = [_BoundLayer(block, cast) for block in decoder.blocks]
        self._final_gain = cast(decoder.final_norm.gain.data)
        self._final_shift = cast(decoder.final_norm.shift.data)
        self._event_head = _BoundHead(model.event_head, cast)
        self._iat_head = _BoundHead(model.iat_head, cast)
        self._stop_head = _BoundHead(model.stop_head, cast)
        self._params = model.parameters()
        # Hold references (not just ids) to the source arrays: a freed
        # array's address can be reused, which would defeat an id check
        # in the float32 path where the bound views are copies.
        self._sources = [p.data for p in self._params]

    def _ensure_bound(self) -> None:
        """Rebind if any parameter array was replaced (e.g. by Adam)."""
        if self._layers is None or any(
            p.data is not source for p, source in zip(self._params, self._sources)
        ):
            self.bind()

    # ------------------------------------------------------------------
    # Cache management
    # ------------------------------------------------------------------
    def new_cache(self, batch: int, max_steps: int) -> _Cache:
        """A KV cache for ``batch`` slots, reusing pooled allocations.

        Returned caches may hold stale keys/values from earlier batches;
        attention masks everything beyond each slot's position, so no
        clearing is needed (ring reuse).
        """
        self._ensure_bound()
        pooled = self._pooled
        if (
            pooled is not None
            and pooled.batch == batch
            and pooled.max_steps == max_steps
        ):
            self._pooled = None
            pooled.positions[:] = 0
            if _obs_enabled():
                _obs_metrics().counter("engine.cache_reuse").inc()
            return pooled
        if _obs_enabled():
            _obs_metrics().counter("engine.cache_alloc").inc()
        cfg = self.config
        head_dim = cfg.d_model // cfg.num_heads
        shape = (batch, cfg.num_heads, max_steps, head_dim)
        return _Cache(
            keys=[np.zeros(shape, dtype=self.dtype) for _ in range(cfg.num_layers)],
            values=[np.zeros(shape, dtype=self.dtype) for _ in range(cfg.num_layers)],
            positions=np.zeros(batch, dtype=np.int64),
            steps=np.arange(max_steps),
        )

    def release_cache(self, cache: _Cache) -> None:
        """Return a cache for reuse by the next batch.

        Only the most recently released cache is retained, so pool
        memory stays bounded at one allocation no matter how many
        distinct batch shapes an engine serves over its lifetime.
        """
        self._pooled = cache

    # ------------------------------------------------------------------
    def step(self, tokens: np.ndarray, cache: _Cache) -> dict[str, np.ndarray]:
        """Advance one position for the whole batch.

        Parameters
        ----------
        tokens:
            ``(batch, d_token)`` tokens at each slot's current position.
        cache:
            The KV cache; ``cache.positions[i]`` is the index slot ``i``'s
            token is written to (per-slot — slots may sit at different
            depths under continuous batching).

        Returns
        -------
        dict with ``event_logits`` (B, E), ``iat_mean`` (B,),
        ``iat_raw_scale`` (B,) or absent, ``stop_logits`` (B, 2).
        """
        self._ensure_bound()
        cfg = self.config
        positions = cache.positions
        deepest = int(positions.max())
        if deepest >= cfg.max_len:
            raise ValueError(
                f"position {deepest} exceeds model max_len {cfg.max_len}"
            )
        if deepest >= cache.max_steps:
            raise ValueError(
                f"position {deepest} exceeds cache window {cache.max_steps}"
            )
        batch = tokens.shape[0]
        heads = cfg.num_heads
        head_dim = cfg.d_model // heads
        rows = np.arange(batch)
        dtype = self.dtype
        if self.exact:
            window = cache.max_steps
            arange = rows

            def mm(a: np.ndarray, w: np.ndarray) -> np.ndarray:
                # Same gufunc call shape as the training forward on a
                # length-`window` sequence: (B, S, d) @ (d, k), every row
                # a copy of the step input.  GEMM output rows depend only
                # on their own input row, but the *kernel path* a row
                # takes depends on its index (skinny-n kernels handle the
                # odd trailing row specially), so the result is read at
                # each slot's sequence position — exactly the row the
                # training forward computed.  The padded operand must
                # also be contiguous: stride-0 inputs push numpy off the
                # BLAS path entirely.
                padded = np.ascontiguousarray(
                    np.broadcast_to(a[:, None, :], (a.shape[0], window, a.shape[1]))
                )
                return (padded @ w)[arange, positions]

        else:
            def mm(a: np.ndarray, w: np.ndarray) -> np.ndarray:
                return a @ w

        x = (
            mm(tokens.astype(dtype, copy=False), self._input_w)
            + self._input_b
            + self._positional[positions]
        )
        # Attention window: exact mode always spans the whole cache so the
        # softmax row length matches the training forward; the throughput
        # mode only reaches the deepest live position.
        window = cache.max_steps if self.exact else deepest + 1
        # (B, 1, W) mask: slot i attends to cache rows 0..pos_i.
        allowed = cache.steps[None, None, :window] <= positions[:, None, None]
        masked = np.array(_MASK_VALUE, dtype=dtype)
        for layer, (keys, values) in zip(
            self._layers, zip(cache.keys, cache.values)
        ):
            normed = _layer_norm(x, layer.norm1_gain, layer.norm1_shift)
            qkv = mm(normed, layer.qkv_w) + layer.qkv_b
            qkv = qkv.reshape(batch, 3, heads, head_dim)
            q, k, v = qkv[:, 0], qkv[:, 1], qkv[:, 2]  # (B, H, hd)
            keys[rows, :, positions] = k
            values[rows, :, positions] = v
            # Same einsum kernels as repro.nn.attention (single-row form):
            # einsum accumulation is shape-independent, so these match the
            # training contractions bitwise in float64.
            scores = (
                np.einsum("bhd,bhsd->bhs", q, keys[:, :, :window]) * self._scale
            )
            scores = np.where(allowed, scores, masked)
            weights = _softmax(scores)
            context = np.einsum("bhs,bhsd->bhd", weights, values[:, :, :window])
            context = context.reshape(batch, cfg.d_model)
            x = x + (mm(context, layer.out_w) + layer.out_b)
            normed2 = _layer_norm(x, layer.norm2_gain, layer.norm2_shift)
            hidden = _gelu(mm(normed2, layer.ff1_w) + layer.ff1_b)
            # Parenthesized to match training's `x + ff2(...)` association.
            x = x + (mm(hidden, layer.ff2_w) + layer.ff2_b)
        x = _layer_norm(x, self._final_gain, self._final_shift)
        cache.positions = positions + 1

        out = {
            "event_logits": self._event_head(x, mm),
            "stop_logits": self._stop_head(x, mm),
        }
        iat = self._iat_head(x, mm)
        out["iat_mean"] = iat[:, 0]
        if cfg.distribution_head:
            out["iat_raw_scale"] = iat[:, 1]
        return out


@dataclass
class GeneratorPackage:
    """The deployable artifact of Figure 4.

    Bundles the trained model, the fitted tokenizer and the
    initial-event-type distribution extracted from the training set.
    """

    model: CPTGPT
    tokenizer: StreamTokenizer
    initial_event_distribution: dict[str, float]
    device_type: str
    _engines: dict[str, InferenceEngine] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        total = sum(self.initial_event_distribution.values())
        if not np.isclose(total, 1.0):
            raise ValueError(f"initial-event distribution sums to {total}, expected 1")
        for name in self.initial_event_distribution:
            if name not in self.tokenizer.vocabulary:
                raise ValueError(f"initial-event distribution names unknown event {name!r}")
        names = list(self.initial_event_distribution)
        self._initial_probs = np.array(
            [self.initial_event_distribution[n] for n in names]
        )
        # Vectorized first-token lookup: one vocabulary.index per *event
        # type* here, then a table gather per stream at bootstrap time.
        self._initial_indices = np.array(
            [self.tokenizer.vocabulary.index(n) for n in names], dtype=np.int64
        )

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def engine(self, float32: bool = False) -> InferenceEngine:
        """The persistent inference engine for the requested precision.

        Generation engines run with ``exact=False`` — the throughput
        mode, which agrees with the autograd forward to ~1e-15 (float64)
        / ~1e-4 (float32); construct :class:`InferenceEngine` directly
        for the bit-exact validation mode.
        """
        key = "float32" if float32 else "float64"
        if key not in self._engines:
            self._engines[key] = InferenceEngine(
                self.model, dtype=np.float32 if float32 else np.float64, exact=False
            )
        return self._engines[key]

    def generate(
        self,
        count: int,
        rng: np.random.Generator,
        start_time: float = 0.0,
        batch_size: int = 128,
        temperature: float = 1.0,
        max_len: int | None = None,
        float32: bool = False,
        num_workers: int = 1,
        continuous: bool = True,
    ) -> TraceDataset:
        """Synthesize ``count`` streams.

        Each stream is bootstrapped from the initial-event distribution
        and extended token-by-token until its sampled stop flag is 1 or
        ``max_len`` tokens have been produced.

        ``float32`` switches the engine to the reduced-precision
        throughput mode; ``num_workers > 1`` shards the population
        across forked worker processes (deterministic given ``rng`` —
        see :mod:`repro.core.sharding`); ``continuous=False`` falls back
        to static batching (each batch steps until every member stops),
        kept for equivalence testing.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        limit = self.model.config.max_len if max_len is None else max_len
        if limit > self.model.config.max_len:
            raise ValueError(
                f"max_len {limit} exceeds the model's trained horizon "
                f"{self.model.config.max_len}"
            )
        if num_workers > 1:
            counts = shard_counts(count, num_workers)
            rngs = shard_rngs(rng, num_workers)

            def shard(i: int) -> list[Stream]:
                return self._generate_streams(
                    counts[i], rngs[i], start_time, batch_size, temperature,
                    limit, float32, continuous,
                )

            shards = run_sharded(shard, num_workers, num_workers)
            streams = [stream for part in shards for stream in part]
        else:
            streams = self._generate_streams(
                count, rng, start_time, batch_size, temperature, limit,
                float32, continuous,
            )
        return TraceDataset(streams=streams, vocabulary=self.tokenizer.vocabulary)

    # ------------------------------------------------------------------
    def _sample_initial(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Vocabulary indices of ``size`` bootstrap events."""
        picks = rng.choice(len(self._initial_probs), size=size, p=self._initial_probs)
        return self._initial_indices[picks]

    def _generate_streams(
        self,
        count: int,
        rng: np.random.Generator,
        start_time: float,
        batch_size: int,
        temperature: float,
        limit: int,
        float32: bool,
        continuous: bool,
    ) -> list[Stream]:
        if count == 0:
            return []
        engine = self.engine(float32)
        # A horizon of 1 leaves nothing to step (streams are bootstrap
        # only); the static loop handles that degenerate case directly.
        if continuous and limit > 1:
            return self._generate_continuous(
                count, rng, start_time, batch_size, temperature, limit, engine
            )
        streams: list[Stream] = []
        remaining = count
        while remaining > 0:
            size = min(batch_size, remaining)
            streams.extend(
                self._generate_static(size, rng, start_time, temperature, limit, engine)
            )
            remaining -= size
        return streams

    def _sample_step(
        self,
        out: dict[str, np.ndarray],
        temperature: float,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Draw (events, iats, stops) for one step from engine outputs."""
        next_events = _gumbel_argmax(out["event_logits"], temperature, rng)
        next_stops = _gumbel_argmax(out["stop_logits"], temperature, rng)
        if "iat_raw_scale" in out:
            scale = _softplus(out["iat_raw_scale"]) + _MIN_SCALE
            next_iats = rng.normal(out["iat_mean"], scale)
        else:
            next_iats = np.asarray(out["iat_mean"], dtype=np.float64)
        return next_events, np.clip(next_iats, 0.0, 1.0), next_stops

    def _decode_slot(
        self,
        events: np.ndarray,
        iats: np.ndarray,
        length: int,
        rng: np.random.Generator,
        start_time: float,
    ) -> Stream:
        """Build the finished stream straight from the sampled fields.

        Equivalent to ``tokenizer.decode(tokenizer.assemble(...))`` but
        without the one-hot round-trip: the generation loop already
        holds the decoded event indices and (clipped) scaled
        interarrivals.
        """
        tokenizer = self.tokenizer
        seconds = tokenizer.scaler.inverse(iats[:length])
        seconds[0] = 0.0
        timestamps = start_time + np.cumsum(seconds)
        names = [tokenizer.vocabulary.name(int(i)) for i in events[:length]]
        return Stream.from_arrays(
            random_ue_id(rng), self.device_type, timestamps, names
        )

    def _generate_continuous(
        self,
        count: int,
        rng: np.random.Generator,
        start_time: float,
        batch_size: int,
        temperature: float,
        limit: int,
        engine: InferenceEngine,
    ) -> list[Stream]:
        """Continuous batching: recycle slots the moment streams stop.

        A finished slot is immediately re-bootstrapped from the
        initial-event distribution.  While streams remain to start, the
        new rollout counts toward the population; once all ``count``
        streams have started, finished slots keep cycling as *scrap*
        (their rollouts are discarded) so the batch never carries dead
        rows — when half the batch is scrap, it is compacted away so the
        tail drain cost tracks the number of live streams.  Every
        started stream completes exactly once, so the returned
        population carries no length bias.
        """
        track = _obs_enabled()
        # Metrics-only timing: feeds engine.steps_per_second, never the
        # sampled trajectory.  repro-lint: allow[wallclock-in-deterministic-path]
        t_start = perf_counter() if track else 0.0
        steps = slot_steps = live_slot_steps = recycled = compactions = 0
        tokenizer = self.tokenizer
        batch = min(batch_size, count)
        cache = engine.new_cache(batch, limit)
        full_size_cache = True
        events = np.zeros((batch, limit), dtype=np.int64)
        iats = np.zeros((batch, limit), dtype=np.float64)
        lengths = np.ones(batch, dtype=np.int64)
        scrap = np.zeros(batch, dtype=bool)
        first = self._sample_initial(rng, batch)
        events[:, 0] = first
        started = batch
        rows = np.arange(batch)
        streams: list[Stream] = []
        current = tokenizer.assemble(
            first, np.zeros(batch), np.zeros(batch, dtype=np.int64)
        )
        while True:
            if track:
                steps += 1
                slot_steps += batch
                live_slot_steps += batch - int(scrap.sum())
            out = engine.step(current, cache)
            next_events, next_iats, next_stops = self._sample_step(
                out, temperature, rng
            )
            slots = lengths  # next write index per slot
            events[rows, slots] = next_events
            iats[rows, slots] = next_iats
            lengths = lengths + 1
            finished = (next_stops == 1) | (lengths >= limit)
            if finished.any():
                finished_idx = np.flatnonzero(finished)
                for i in finished_idx:
                    if not scrap[i]:
                        streams.append(
                            self._decode_slot(
                                events[i], iats[i], int(lengths[i]),
                                rng, start_time,
                            )
                        )
                if len(streams) >= count:
                    break
                # Re-bootstrap every finished slot: the first `refill`
                # carry new population streams, the rest cycle as scrap.
                refill = min(count - started, len(finished_idx))
                started += refill
                recycled += len(finished_idx)
                new_first = self._sample_initial(rng, len(finished_idx))
                events[finished_idx, 0] = new_first
                lengths[finished_idx] = 1
                cache.positions[finished_idx] = 0
                next_events[finished_idx] = new_first
                next_iats[finished_idx] = 0.0
                next_stops[finished_idx] = 0
                scrap[finished_idx[:refill]] = False
                scrap[finished_idx[refill:]] = True
                if batch > 8 and int(scrap.sum()) * 2 >= batch:
                    keep = ~scrap
                    events = events[keep]
                    iats = iats[keep]
                    lengths = lengths[keep]
                    next_events = next_events[keep]
                    next_iats = next_iats[keep]
                    next_stops = next_stops[keep]
                    scrap = scrap[keep]
                    cache = cache.compact(keep)
                    full_size_cache = False
                    batch = len(lengths)
                    rows = np.arange(batch)
                    compactions += 1
            current = tokenizer.assemble(next_events, next_iats, next_stops)
        if full_size_cache:
            engine.release_cache(cache)
        if track:
            # Publish once per generate call: the hot loop above only
            # touches plain local integers.
            # repro-lint: allow[wallclock-in-deterministic-path]
            elapsed = perf_counter() - t_start
            registry = _obs_metrics()
            registry.counter("engine.steps").inc(steps)
            registry.counter("engine.slot_steps").inc(slot_steps)
            registry.counter("engine.recycled_slots").inc(recycled)
            registry.counter("engine.compactions").inc(compactions)
            registry.counter("engine.streams").inc(len(streams))
            if slot_steps:
                registry.gauge("engine.slot_utilization").set(
                    live_slot_steps / slot_steps
                )
            if elapsed > 0:
                registry.gauge("engine.steps_per_second").set(steps / elapsed)
        return streams

    def _generate_static(
        self,
        batch: int,
        rng: np.random.Generator,
        start_time: float,
        temperature: float,
        limit: int,
        engine: InferenceEngine,
    ) -> list[Stream]:
        """Static batching: the whole batch steps until every stream stops."""
        tokenizer = self.tokenizer
        first_indices = self._sample_initial(rng, batch)
        events = np.zeros((batch, limit), dtype=np.int64)
        iats = np.zeros((batch, limit), dtype=np.float64)
        lengths = np.ones(batch, dtype=np.int64)
        events[:, 0] = first_indices

        cache = engine.new_cache(batch, limit)
        active = np.ones(batch, dtype=bool)
        current = tokenizer.assemble(
            first_indices, np.zeros(batch), np.zeros(batch, dtype=np.int64)
        )
        for pos in range(limit - 1):
            out = engine.step(current, cache)
            next_events, next_iats, next_stops = self._sample_step(
                out, temperature, rng
            )
            slot = pos + 1
            events[active, slot] = next_events[active]
            iats[active, slot] = next_iats[active]
            lengths[active] = slot + 1
            active = active & (next_stops == 0)
            if not active.any():
                break
            current = tokenizer.assemble(next_events, next_iats, next_stops)
        engine.release_cache(cache)

        return [
            self._decode_slot(events[i], iats[i], int(lengths[i]), rng, start_time)
            for i in range(batch)
        ]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Write weights + tokenizer + initial-event distribution."""
        metadata = {
            "config": self.model.config.to_dict(),
            "tokenizer": self.tokenizer.to_dict(),
            "initial_event_distribution": self.initial_event_distribution,
            "device_type": self.device_type,
        }
        save_checkpoint(self.model, path, metadata)

    @classmethod
    def load(cls, path: str | Path) -> "GeneratorPackage":
        """Load a package written by :meth:`save`."""
        # Model shape is in the metadata, so peek at it first.
        metadata = read_metadata(path)
        config = CPTGPTConfig.from_dict(metadata["config"])
        model = CPTGPT(config, np.random.default_rng(0))
        load_checkpoint(model, path)
        return cls(
            model=model,
            tokenizer=StreamTokenizer.from_dict(metadata["tokenizer"]),
            initial_event_distribution=metadata["initial_event_distribution"],
            device_type=metadata["device_type"],
        )
