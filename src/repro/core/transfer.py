"""Transfer learning across hours-of-day (Design 3, §5.5).

The operator trains a base model on one hour's trace, then adapts it to
each subsequent hour by fine-tuning — far cheaper per hour than training
from scratch, because supervised transformer training converges quickly
from a pretrained initialization (unlike GAN fine-tuning; the paper's
L3).  ``derive_hourly_models`` reproduces the recursive protocol used in
Tables 4 and 9: hour h's model initializes hour h+1's fine-tune.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np

from ..tokenization import StreamTokenizer
from ..trace.dataset import TraceDataset
from .config import TrainingConfig
from .model import CPTGPT
from .train import TrainingResult, train

__all__ = ["fine_tune", "derive_hourly_models", "HourlyModels"]


def fine_tune(
    base: CPTGPT,
    dataset: TraceDataset,
    tokenizer: StreamTokenizer,
    config: TrainingConfig,
) -> tuple[CPTGPT, TrainingResult]:
    """Adapt a copy of ``base`` to ``dataset``.

    The base model is left untouched; the returned model starts from its
    weights.  ``config`` should typically use fewer epochs and a lower
    learning rate than from-scratch training.
    """
    adapted = copy.deepcopy(base)
    result = train(adapted, dataset, tokenizer, config)
    return adapted, result


@dataclass
class HourlyModels:
    """Ensemble of per-hour models plus their training costs."""

    models: dict[int, CPTGPT]
    results: dict[int, TrainingResult]

    @property
    def total_wall_time(self) -> float:
        return sum(r.wall_time_seconds for r in self.results.values())


def derive_hourly_models(
    model_factory,
    hourly_traces: dict[int, TraceDataset],
    tokenizer: StreamTokenizer,
    scratch_config: TrainingConfig,
    finetune_config: TrainingConfig,
) -> HourlyModels:
    """Train the first hour from scratch, then fine-tune recursively.

    Parameters
    ----------
    model_factory:
        Zero-argument callable returning a fresh :class:`CPTGPT`.
    hourly_traces:
        Hour-of-day -> training trace, in chronological order.
    scratch_config / finetune_config:
        Training configurations for the base hour and for each
        subsequent fine-tune.
    """
    if not hourly_traces:
        raise ValueError("hourly_traces is empty")
    hours = sorted(hourly_traces)
    models: dict[int, CPTGPT] = {}
    results: dict[int, TrainingResult] = {}

    first = hours[0]
    base = model_factory()
    results[first] = train(base, hourly_traces[first], tokenizer, scratch_config)
    models[first] = base

    previous = base
    for hour in hours[1:]:
        adapted, result = fine_tune(
            previous, hourly_traces[hour], tokenizer, finetune_config
        )
        models[hour] = adapted
        results[hour] = result
        previous = adapted
    return HourlyModels(models=models, results=results)
