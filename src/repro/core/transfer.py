"""Transfer learning across hours-of-day (Design 3, §5.5).

The operator trains a base model on one hour's trace, then adapts it to
each subsequent hour by fine-tuning — far cheaper per hour than training
from scratch, because supervised transformer training converges quickly
from a pretrained initialization (unlike GAN fine-tuning; the paper's
L3).  ``derive_hourly_models`` reproduces the recursive protocol used in
Tables 4 and 9: hour h's model initializes hour h+1's fine-tune.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np

from ..nn import Adam
from ..tokenization import StreamTokenizer
from ..trace.dataset import TraceDataset
from .config import TrainingConfig
from .model import CPTGPT
from .train import TrainingResult, train

__all__ = ["fine_tune", "derive_hourly_models", "HourlyModels"]


def fine_tune(
    base: CPTGPT,
    dataset: TraceDataset,
    tokenizer: StreamTokenizer,
    config: TrainingConfig,
    optimizer: Adam | None = None,
) -> tuple[CPTGPT, TrainingResult]:
    """Adapt a copy of ``base`` to ``dataset``.

    The base model is left untouched; the returned model starts from its
    weights.  ``config`` should typically use fewer epochs and a lower
    learning rate than from-scratch training.

    ``optimizer`` continues an existing optimizer's moment estimates
    into the fine-tune (Design 3's recursive per-hour protocol).  The
    optimizer is **rebound** onto the adapted copy's parameters before
    training: it previously held the pre-copy ``Parameter`` objects, so
    stepping it unrebound would silently update the *base* model.
    """
    adapted = copy.deepcopy(base)
    if optimizer is not None:
        optimizer.rebind(adapted.parameters())
    result = train(adapted, dataset, tokenizer, config, optimizer=optimizer)
    return adapted, result


@dataclass
class HourlyModels:
    """Ensemble of per-hour models plus their training costs."""

    models: dict[int, CPTGPT]
    results: dict[int, TrainingResult]

    @property
    def total_wall_time(self) -> float:
        return sum(r.wall_time_seconds for r in self.results.values())


def derive_hourly_models(
    model_factory,
    hourly_traces: dict[int, TraceDataset],
    tokenizer: StreamTokenizer,
    scratch_config: TrainingConfig,
    finetune_config: TrainingConfig,
    carry_optimizer: bool = True,
) -> HourlyModels:
    """Train the first hour from scratch, then fine-tune recursively.

    Parameters
    ----------
    model_factory:
        Zero-argument callable returning a fresh :class:`CPTGPT`.
    hourly_traces:
        Hour-of-day -> training trace, in chronological order.
    scratch_config / finetune_config:
        Training configurations for the base hour and for each
        subsequent fine-tune.
    carry_optimizer:
        Thread one Adam optimizer through the whole chain (rebound onto
        each hour's adapted copy), so moment estimates genuinely carry
        hour-to-hour instead of restarting cold at every fine-tune.
        ``False`` restores the old fresh-optimizer-per-hour behavior.
    """
    if not hourly_traces:
        raise ValueError("hourly_traces is empty")
    hours = sorted(hourly_traces)
    models: dict[int, CPTGPT] = {}
    results: dict[int, TrainingResult] = {}

    first = hours[0]
    base = model_factory()
    optimizer = (
        Adam(base.parameters(), lr=scratch_config.learning_rate)
        if carry_optimizer
        else None
    )
    results[first] = train(
        base, hourly_traces[first], tokenizer, scratch_config, optimizer=optimizer
    )
    models[first] = base

    previous = base
    for hour in hours[1:]:
        adapted, result = fine_tune(
            previous, hourly_traces[hour], tokenizer, finetune_config,
            optimizer=optimizer,
        )
        models[hour] = adapted
        results[hour] = result
        previous = adapted
    return HourlyModels(models=models, results=results)
