"""Configuration objects for CPT-GPT."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

__all__ = ["CPTGPTConfig", "TrainingConfig"]


@dataclass(frozen=True)
class CPTGPTConfig:
    """Model hyperparameters.

    The paper's tuned model (§5.1) uses 2 attention blocks, embedding
    dimension 128 and MLP hidden size 1024 (725K parameters).  The
    defaults here are a CPU-friendly scale-down with the same shape;
    pass ``paper()`` for the published configuration.
    """

    num_event_types: int = 6
    d_model: int = 32
    num_layers: int = 2
    num_heads: int = 4
    d_ff: int = 64
    head_hidden: int = 64
    max_len: int = 128
    dropout: float = 0.0
    #: Predict (mean, scale) for interarrival time (Design 2).  The
    #: Table 8 ablation sets this to False to predict a single scalar.
    distribution_head: bool = True

    @property
    def d_token(self) -> int:
        """Token width: one-hot events + interarrival + stop flag."""
        return self.num_event_types + 1 + 2

    @classmethod
    def paper(cls, num_event_types: int = 6, max_len: int = 500) -> "CPTGPTConfig":
        """The configuration §5.1 reports (≈725K parameters)."""
        return cls(
            num_event_types=num_event_types,
            d_model=128,
            num_layers=2,
            num_heads=4,
            d_ff=1024,
            head_hidden=256,
            max_len=max_len,
        )

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "CPTGPTConfig":
        return cls(**payload)


@dataclass(frozen=True)
class TrainingConfig:
    """Optimization hyperparameters.

    ``loss_weights`` are the per-field weights of the total loss
    (event : interarrival : stop flag); the paper trains at 1:1:1 and
    Table 8 sweeps 3:1:1 / 1:3:1 / 1:1:3.
    """

    epochs: int = 10
    batch_size: int = 32
    learning_rate: float = 3e-3
    grad_clip: float = 1.0
    loss_weights: tuple[float, float, float] = (1.0, 1.0, 1.0)
    seed: int = 0
    shuffle: bool = True
    #: "constant" or "cosine" — cosine decays the learning rate to
    #: ``final_lr_fraction * learning_rate`` over the run, which sharpens
    #: the rare-context predictions (post-detach grammar) noticeably.
    lr_schedule: str = "cosine"
    final_lr_fraction: float = 0.05
    #: Group same-length streams into batches (fast, little padding) or
    #: mix lengths randomly.  Bucketing correlates batch composition with
    #: stream length: per-batch mean losses then give positions in
    #: short-stream batches outsized influence, biasing the stop-flag
    #: hazard upward (generated flows come out too short).  Random
    #: batching costs extra padding compute but is statistically unbiased,
    #: so it is the default.
    length_bucketing: bool = False
    #: Gradient shards per optimizer step.  With ``grad_shards > 1`` the
    #: fused trainer splits every batch into this fixed number of stream
    #: shards, computes each shard's gradient independently and combines
    #: them with a fixed tree reduction — ``train(num_workers=k)`` then
    #: evaluates shards in worker processes without ever changing the
    #: result.  Part of the *config* (not an execution knob) because the
    #: sharded trajectory, while deterministic, rounds differently from
    #: the unsharded one.
    grad_shards: int = 1

    def __post_init__(self) -> None:
        if not self.grad_clip > 0:
            raise ValueError(
                f"grad_clip must be positive; got {self.grad_clip} "
                "(a non-positive clip would zero every gradient)"
            )
        if self.grad_shards < 1:
            raise ValueError(f"grad_shards must be >= 1; got {self.grad_shards}")

    def replace(self, **kwargs) -> "TrainingConfig":
        payload = asdict(self)
        payload.update(kwargs)
        payload["loss_weights"] = tuple(payload["loss_weights"])
        return TrainingConfig(**payload)
