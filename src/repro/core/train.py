"""Supervised next-token training for CPT-GPT.

CPT-GPT needs no GAN: it trains with plain maximum likelihood (§4.3's
point (4)) — cross-entropy on the categorical fields plus Gaussian NLL
on the interarrival field, summed with configurable weights (§5.3's
Table 8 sweeps those weights).  Variable-length streams are padded per
batch and masked out of every loss term.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn import Adam, Tensor, cross_entropy, gaussian_nll, mse
from ..tokenization import StreamTokenizer
from ..trace.dataset import TraceDataset
from .config import TrainingConfig
from .model import CPTGPT

__all__ = [
    "TrainingResult",
    "EpochStats",
    "EncodedStream",
    "encode_training_set",
    "bucketed_batches",
    "iterate_batches",
    "train",
]


@dataclass(frozen=True)
class EpochStats:
    """Average losses over one epoch."""

    total: float
    event: float
    interarrival: float
    stop: float


@dataclass
class TrainingResult:
    """Outcome of a training run."""

    epochs: list[EpochStats] = field(default_factory=list)
    wall_time_seconds: float = 0.0
    steps: int = 0

    @property
    def final_loss(self) -> float:
        if not self.epochs:
            raise ValueError("no epochs recorded")
        return self.epochs[-1].total


@dataclass(frozen=True)
class EncodedStream:
    """One tokenized stream with next-token targets pre-extracted.

    Target extraction (the per-field ``argmax`` over one-hot columns)
    happens once at encoding time instead of every epoch in
    ``_build_batch`` — batch assembly then only pads and copies.
    """

    tokens: np.ndarray  # (L-1, d_token) inputs (positions 0..L-2)
    event_targets: np.ndarray  # (L-1,) int
    iat_targets: np.ndarray  # (L-1,) float
    stop_targets: np.ndarray  # (L-1,) int

    @property
    def length(self) -> int:
        """Number of supervised positions (stream length minus one)."""
        return self.tokens.shape[0]

    @classmethod
    def from_matrix(
        cls, matrix: np.ndarray, tokenizer: StreamTokenizer
    ) -> "EncodedStream":
        """Split a raw ``(L, d_token)`` token matrix into inputs/targets."""
        targets = matrix[1:]
        num_events = tokenizer.num_events
        return cls(
            tokens=matrix[:-1],
            event_targets=targets[:, :num_events].argmax(axis=1),
            iat_targets=targets[:, tokenizer.iat_column],
            stop_targets=targets[:, tokenizer.stop_columns].argmax(axis=1),
        )


def encode_training_set(
    dataset: TraceDataset, tokenizer: StreamTokenizer, max_len: int
) -> list[EncodedStream]:
    """Tokenize the training streams.

    Applies the paper's §4.5/§5.1 filters: streams of length 1 are
    excluded (their first token would carry a stop flag), and streams
    longer than ``max_len`` are disregarded.  Next-token targets are
    extracted here, once, rather than on every epoch.
    """
    usable = dataset.drop_singletons().truncate_streams(max_len)
    encoded = [
        EncodedStream.from_matrix(tokenizer.encode(stream), tokenizer)
        for stream in usable
    ]
    if not encoded:
        raise ValueError(
            "no trainable streams: all streams are singletons or exceed max_len"
        )
    return encoded


@dataclass(frozen=True)
class Batch:
    """One padded training batch with next-token targets."""

    tokens: np.ndarray  # (B, T, d_token) inputs (positions 0..T-1)
    event_targets: np.ndarray  # (B, T) int
    iat_targets: np.ndarray  # (B, T) float
    stop_targets: np.ndarray  # (B, T) int
    mask: np.ndarray  # (B, T) bool — True where a target exists


def _as_encoded(item, tokenizer: StreamTokenizer) -> EncodedStream:
    """Accept raw ``(L, d_token)`` matrices alongside ``EncodedStream``s."""
    if isinstance(item, EncodedStream):
        return item
    return EncodedStream.from_matrix(np.asarray(item), tokenizer)


def _build_batch(encoded: list, tokenizer: StreamTokenizer) -> Batch:
    items = [_as_encoded(item, tokenizer) for item in encoded]
    batch = len(items)
    longest = max(item.length for item in items)
    width = tokenizer.d_token
    # Inputs feed positions 0..L-2; targets are tokens 1..L-1.
    tokens = np.zeros((batch, longest, width), dtype=np.float64)
    event_targets = np.zeros((batch, longest), dtype=np.int64)
    iat_targets = np.zeros((batch, longest), dtype=np.float64)
    stop_targets = np.zeros((batch, longest), dtype=np.int64)
    mask = np.zeros((batch, longest), dtype=bool)
    for i, item in enumerate(items):
        length = item.length
        tokens[i, :length] = item.tokens
        event_targets[i, :length] = item.event_targets
        iat_targets[i, :length] = item.iat_targets
        stop_targets[i, :length] = item.stop_targets
        mask[i, :length] = True
    return Batch(tokens, event_targets, iat_targets, stop_targets, mask)


def bucketed_batches(
    encoded: list, tokenizer: StreamTokenizer, batch_size: int
) -> list[Batch]:
    """Padded length-bucketed batches, built once and reusable every epoch.

    Bucketing sorts streams by length, so batch membership is a pure
    function of the encoded set — shuffling between epochs only permutes
    *batch order*.  The padded arrays can therefore be cached across the
    whole run instead of being rebuilt from Python lists each epoch
    (``train`` relies on exactly that).
    """
    items = [_as_encoded(item, tokenizer) for item in encoded]
    order = np.argsort([item.length for item in items], kind="stable")
    return [
        _build_batch([items[i] for i in order[start : start + batch_size]], tokenizer)
        for start in range(0, len(order), batch_size)
    ]


def iterate_batches(
    encoded: list,
    tokenizer: StreamTokenizer,
    batch_size: int,
    rng: np.random.Generator,
    shuffle: bool = True,
    length_bucketing: bool = False,
):
    """Yield training batches.

    With ``length_bucketing`` streams are sorted by length so batch
    padding stays small — faster, but it correlates batch composition
    with stream length and biases per-batch mean losses (see
    ``TrainingConfig.length_bucketing``).  The default mixes lengths
    randomly.
    """
    if length_bucketing:
        batches = bucketed_batches(encoded, tokenizer, batch_size)
        if shuffle:
            rng.shuffle(batches)
        yield from batches
    else:
        order = np.arange(len(encoded))
        if shuffle:
            rng.shuffle(order)
        for start in range(0, len(order), batch_size):
            chunk = order[start : start + batch_size]
            yield _build_batch([encoded[i] for i in chunk], tokenizer)


def _batch_loss(model: CPTGPT, batch: Batch, weights: tuple[float, float, float]):
    """Weighted multi-field loss for one batch.

    Returns (total, event, iat, stop) — the last three as floats for
    logging.
    """
    predictions = model(Tensor(batch.tokens))
    w_event, w_iat, w_stop = weights
    event_loss = cross_entropy(predictions.event_logits, batch.event_targets, batch.mask)
    if model.config.distribution_head:
        iat_loss = gaussian_nll(
            predictions.iat_mean,
            predictions.iat_raw_scale,
            batch.iat_targets,
            batch.mask,
        )
    else:
        iat_loss = mse(predictions.iat_mean, batch.iat_targets, batch.mask)
    stop_loss = cross_entropy(predictions.stop_logits, batch.stop_targets, batch.mask)
    total = event_loss * w_event + iat_loss * w_iat + stop_loss * w_stop
    return total, float(event_loss.item()), float(iat_loss.item()), float(stop_loss.item())


def train(
    model: CPTGPT,
    dataset: TraceDataset,
    tokenizer: StreamTokenizer,
    config: TrainingConfig,
    optimizer: Adam | None = None,
    *,
    num_workers: int = 1,
    resume=None,
    checkpoint_path=None,
    checkpoint_every: int | None = None,
    float32: bool = False,
) -> TrainingResult:
    """Train ``model`` on ``dataset``; returns per-epoch loss statistics.

    Runs on the fused flat-buffer engine
    (:class:`~repro.core.trainer.FusedTrainer`); in float64 with the
    default config the trajectory is bit-equivalent to the original
    per-parameter loop.

    Passing an existing ``optimizer`` continues its moment estimates —
    used by transfer learning to fine-tune smoothly (the optimizer is
    rebound to ``config.learning_rate``; a cosine schedule then anneals
    from there).  ``resume`` continues a checkpointed run bit-exactly,
    and ``checkpoint_path`` / ``checkpoint_every`` emit
    :class:`~repro.core.trainer.TrainerCheckpoint` archives during the
    run.  With ``config.grad_shards > 1`` each step's gradient is
    computed over a fixed shard plan that ``num_workers`` worker
    processes evaluate in parallel (the result never depends on
    ``num_workers``).  ``float32`` trains in a float32 parameter arena
    (the fast mode; statistically equivalent, not bitwise).
    """
    from .trainer import FusedTrainer

    trainer = FusedTrainer(
        model, tokenizer, config, float32=float32, optimizer=optimizer
    )
    return trainer.fit(
        dataset,
        num_workers=num_workers,
        resume=resume,
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
    )
