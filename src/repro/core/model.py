"""The CPT-GPT model: transformer decoder + three per-field MLP heads.

Architecture (Figure 3):

* tokens (``d_token = |events| + 1 + 2``) are mapped by a linear layer to
  ``d_model`` and summed with learned positional embeddings,
* N causal decoder blocks produce hidden states,
* three MLP heads read each hidden state and predict the *next* token's
  fields: event-type logits, interarrival-time distribution parameters
  (mean and raw scale — Design 2), and stop-flag logits.

With ``distribution_head=False`` (the Table 8 ablation) the interarrival
head outputs a single scalar and generation becomes deterministic for
that field.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn import MLP, Module, Tensor, TransformerDecoder
from .config import CPTGPTConfig

__all__ = ["CPTGPT", "FieldPredictions"]


@dataclass
class FieldPredictions:
    """Per-position predictions for the three token fields.

    All tensors have leading shape ``(batch, time)``; position ``t``
    predicts token ``t + 1``.
    """

    event_logits: Tensor  # (B, T, num_events)
    iat_mean: Tensor  # (B, T)
    iat_raw_scale: Tensor | None  # (B, T); None for the ablated model
    stop_logits: Tensor  # (B, T, 2)


class CPTGPT(Module):
    """Decoder-only transformer for control-plane traffic generation."""

    def __init__(self, config: CPTGPTConfig, rng: np.random.Generator) -> None:
        super().__init__()
        self.config = config
        self.decoder = TransformerDecoder(
            d_token=config.d_token,
            d_model=config.d_model,
            num_layers=config.num_layers,
            num_heads=config.num_heads,
            d_ff=config.d_ff,
            max_len=config.max_len,
            rng=rng,
            dropout=config.dropout,
        )
        self.event_head = MLP(
            config.d_model, config.head_hidden, config.num_event_types, rng
        )
        iat_out = 2 if config.distribution_head else 1
        self.iat_head = MLP(config.d_model, config.head_hidden, iat_out, rng)
        self.stop_head = MLP(config.d_model, config.head_hidden, 2, rng)

    def forward(self, tokens: Tensor) -> FieldPredictions:
        """Predict next-token fields for every position.

        Parameters
        ----------
        tokens:
            ``(batch, time, d_token)`` input tokens.
        """
        hidden = self.decoder(tokens)
        event_logits = self.event_head(hidden)
        iat = self.iat_head(hidden)
        stop_logits = self.stop_head(hidden)
        batch, time, _ = tokens.shape
        if self.config.distribution_head:
            iat_mean = iat[:, :, 0]
            iat_raw_scale = iat[:, :, 1]
        else:
            iat_mean = iat[:, :, 0]
            iat_raw_scale = None
        return FieldPredictions(
            event_logits=event_logits,
            iat_mean=iat_mean,
            iat_raw_scale=iat_raw_scale,
            stop_logits=stop_logits,
        )
