"""Columnar merged-timeline chunks: the pipeline's event interchange.

The per-event object boundary was the pipeline's throughput ceiling:
every stage decoded compact shard buffers into one ``TimelineEvent``
tuple per pull (ROADMAP item 1).  This module defines the columnar
replacement that flows between stages instead:

* :class:`MergeTables` — append-only global string tables (cohorts,
  event names, UE ids) shared by every chunk of one merged timeline,
  plus the precomputed *merge rank* per UE that makes the global
  ``(timestamp, cohort, ue_id)`` order a plain integer sort;
* :class:`MergedChunk` — one globally ordered slice of the merged
  timeline as numpy columns, with :meth:`~MergedChunk.decode` as the
  compatibility shim back to event objects;
* :func:`merge_buffers` — the batch chunk merge: one ``np.lexsort``
  over the concatenated shard columns, bit-identical in event order to
  the k-way heap merge it replaces.

Ordering contract (shared with ``heapq.merge`` over per-shard decoded
streams): events sort by ``(timestamp, cohort, ue_id)``; cross-shard
ties on the full key resolve by shard index, within-shard ties keep
stream order.  The merge rank encodes exactly that — UEs rank by
``(cohort name, ue id, owning shard)`` — so ``np.lexsort((rank[ues],
times))`` over shard-order-concatenated columns reproduces the heap
merge bit for bit.

This module must stay import-light (numpy only): workload, service,
mcn, and validate all import it.
"""

from __future__ import annotations

from typing import Iterator, NamedTuple, Sequence

import numpy as np

from ..analysis.hotpath import hot_path

__all__ = [
    "TimelineEvent",
    "CellTimelineEvent",
    "MergeTables",
    "MergedChunk",
    "merge_buffers",
    "merge_order",
]


@hot_path
def merge_order(times: np.ndarray, rank_keys: np.ndarray) -> np.ndarray:
    """Stable order by ``(times, rank_keys)`` — lexsort semantics, faster.

    ``np.lexsort((rank_keys, times))`` runs a full stable sort per key;
    merged timelines are nearly unique in time, so sort by time once and
    re-sort only the tie runs by the rank key.  Output is bit-identical
    to the two-key lexsort: within an equal-time run the stable sub-sort
    orders by rank and keeps original (shard-concatenation) order on
    full-key ties, exactly as lexsort would.
    """
    order = np.argsort(times, kind="stable")
    sorted_times = times[order]
    ties = np.flatnonzero(sorted_times[1:] == sorted_times[:-1])
    if ties.size == 0:
        return order
    in_run = np.zeros(times.size, dtype=bool)
    in_run[ties] = True
    in_run[ties + 1] = True
    pos = np.flatnonzero(in_run)
    run_values = sorted_times[pos]
    run_ids = np.cumsum(np.r_[True, run_values[1:] != run_values[:-1]])
    sub = order[pos]
    sub_rank = rank_keys[sub]
    # Merge ranks are dense non-negative ints, so (run, rank) packs into
    # one int64 key and sorts with a single stable (radix) pass instead
    # of a two-key lexsort.  Equal keys = full-key ties, which the stable
    # sort keeps in original (shard-concatenation) order.
    span = int(sub_rank.max()) + 1
    if int(sub_rank.min()) >= 0 and int(run_ids[-1]) < (2**62) // span:
        sub_order = np.argsort(run_ids * span + sub_rank, kind="stable")
    else:
        sub_order = np.lexsort((sub_rank, run_ids))
    order[pos] = sub[sub_order]
    return order


class TimelineEvent(NamedTuple):
    """One control-plane event on the merged population timeline."""

    timestamp: float
    cohort: str
    ue_id: str
    event: str


class CellTimelineEvent(NamedTuple):
    """A timeline event annotated with the cell it was emitted from.

    Emitted instead of :class:`TimelineEvent` when the workload runs
    against a topology; the first four fields (and the merge key) are
    identical, so every plain-timeline consumer keeps working.
    """

    timestamp: float
    cohort: str
    ue_id: str
    event: str
    cell: str


class MergeTables:
    """Append-only global string tables for one merged timeline.

    Every shard registers its UE and event-name tables once (on its
    first chunk); codes already handed out never move, so chunks emitted
    earlier stay valid as later shards register.  The derived arrays
    (:attr:`rank`, :attr:`ue_cohorts`) are rebuilt lazily whenever the
    UE table has grown.
    """

    __slots__ = (
        "cell_names",
        "cohort_names",
        "event_names",
        "ue_ids",
        "_cohort_code",
        "_event_code",
        "_ue_cohort",
        "_ue_shard",
        "_rank",
        "_ue_cohorts",
        "_keys",
    )

    def __init__(self, cell_names: "Sequence[str] | None" = None) -> None:
        self.cell_names = None if cell_names is None else tuple(cell_names)
        self.cohort_names: list[str] = []
        self.event_names: list[str] = []
        self.ue_ids: list[str] = []
        self._cohort_code: dict[str, int] = {}
        self._event_code: dict[str, int] = {}
        self._ue_cohort: list[int] = []
        self._ue_shard: list[int] = []
        self._rank: np.ndarray | None = None
        self._ue_cohorts: np.ndarray | None = None
        self._keys: dict[int, list] = {}

    @property
    def num_ues(self) -> int:
        return len(self.ue_ids)

    def cohort_code(self, name: str) -> int:
        code = self._cohort_code.get(name)
        if code is None:
            code = self._cohort_code[name] = len(self.cohort_names)
            self.cohort_names.append(name)
        return code

    def event_codes(self, names: Sequence[str]) -> np.ndarray:
        """Global int32 codes for a shard's event-name table."""
        out = np.empty(len(names), dtype=np.int32)
        table = self._event_code
        for i, name in enumerate(names):
            code = table.get(name)
            if code is None:
                code = table[name] = len(self.event_names)
                self.event_names.append(name)
            out[i] = code
        return out

    def add_ues(self, cohort: str, ue_ids: Sequence[str], shard: int) -> int:
        """Register one shard's UE table; returns its global base index."""
        base = len(self.ue_ids)
        code = self.cohort_code(cohort)
        self.ue_ids.extend(ue_ids)
        self._ue_cohort.extend([code] * len(ue_ids))
        self._ue_shard.extend([shard] * len(ue_ids))
        return base

    @property
    def rank(self) -> np.ndarray:
        """int64 merge rank per global UE.

        Order-isomorphic to ``(cohort name, ue id, owning shard)`` —
        the shard component resolves cross-shard ties on identical
        ``(cohort, ue_id)`` strings exactly the way ``heapq.merge``
        resolves them (by source index).  Rebuilt lazily when new UEs
        registered; relative ranks of existing UEs stay consistent with
        the string order, so chunks already emitted remain correctly
        comparable.
        """
        if self._rank is None or self._rank.size != len(self.ue_ids):
            n = len(self.ue_ids)
            names = self.cohort_names
            cohorts = self._ue_cohort
            ids = self.ue_ids
            shards = self._ue_shard
            order = sorted(
                range(n), key=lambda i: (names[cohorts[i]], ids[i], shards[i])
            )
            rank = np.empty(n, dtype=np.int64)
            rank[order] = np.arange(n, dtype=np.int64)
            self._rank = rank
        return self._rank

    @property
    def ue_cohorts(self) -> np.ndarray:
        """int32 cohort code per global UE index."""
        if self._ue_cohorts is None or self._ue_cohorts.size != len(self.ue_ids):
            self._ue_cohorts = np.asarray(self._ue_cohort, dtype=np.int32)
        return self._ue_cohorts

    def ue_keys(self, cycle: int = 0) -> list:
        """``(cohort name, ue id)`` pairs per global UE index.

        ``cycle > 0`` tags the UE id ``"{ue}#c{cycle}"`` — the service
        loop-mode relabeling.  The list is cached per cycle and extended
        in place as new UEs register.
        """
        keys = self._keys.get(cycle)
        if keys is None:
            keys = self._keys[cycle] = []
        if len(keys) < len(self.ue_ids):
            names = self.cohort_names
            cohorts = self._ue_cohort
            suffix = f"#c{cycle}" if cycle else ""
            for i in range(len(keys), len(self.ue_ids)):
                keys.append((names[cohorts[i]], self.ue_ids[i] + suffix))
        return keys


class MergedChunk(NamedTuple):
    """One globally ordered slice of the merged timeline, columnar.

    ``ues`` holds *global* UE indices and ``events`` *global* event
    codes — both into :attr:`tables` — so a chunk is self-describing and
    chunks from the same merge share one table set.  ``cohorts`` is the
    per-event cohort code (denormalized from the UE for vectorized
    shedding masks).  ``cycle`` is the service loop-mode replay cycle
    (0 for the first pass); it only affects :meth:`decode`'s UE ids.
    """

    times: np.ndarray
    cohorts: np.ndarray
    ues: np.ndarray
    events: np.ndarray
    cells: "np.ndarray | None"
    tables: MergeTables
    cycle: int = 0

    @property
    def num_events(self) -> int:
        return int(self.times.size)

    def slice(self, lo: int, hi: int) -> "MergedChunk":
        return self._replace(
            times=self.times[lo:hi],
            cohorts=self.cohorts[lo:hi],
            ues=self.ues[lo:hi],
            events=self.events[lo:hi],
            cells=None if self.cells is None else self.cells[lo:hi],
        )

    def shifted(self, offset: float, cycle: int) -> "MergedChunk":
        """Loop-mode relabeling: shift times, tag the replay cycle."""
        return self._replace(times=self.times + offset, cycle=cycle)

    def decode(self) -> Iterator:
        """The compatibility shim: this chunk as per-event objects."""
        tables = self.tables
        keys = tables.ue_keys(self.cycle)
        names = tables.event_names
        times = self.times.tolist()
        ues = self.ues.tolist()
        events = self.events.tolist()
        if self.cells is not None:
            cell_names = tables.cell_names
            if cell_names is None:
                raise ValueError(
                    "chunk carries cell annotations but its tables have no "
                    "cell_names; construct the merge with the topology's "
                    "cell names"
                )
            cells = self.cells.tolist()
            for i in range(len(times)):
                key = keys[ues[i]]
                yield CellTimelineEvent(
                    times[i], key[0], key[1], names[events[i]], cell_names[cells[i]]
                )
            return
        for i in range(len(times)):
            key = keys[ues[i]]
            yield TimelineEvent(times[i], key[0], key[1], names[events[i]])


@hot_path
def merge_buffers(
    buffers: Sequence,
    cohorts: Sequence[str],
    *,
    cell_names: "Sequence[str] | None" = None,
    chunk_events: int = 65536,
) -> "list[MergedChunk]":
    """Batch columnar merge of sorted shard buffers into global chunks.

    Each buffer is the ``(times, ue_codes, event_codes, ue_ids,
    event_names[, cells])`` layout of ``Workload._shard_buffer``, already
    sorted by the merge key within the shard.  One stable ``np.lexsort``
    over ``(merge rank, time)`` of the shard-order-concatenated columns
    yields exactly the k-way heap merge's order (see module docstring),
    sliced into chunks of at most ``chunk_events`` events.  The chunk
    columns are views of the merged arrays — together they *are* the
    merged timeline, so no memory is pinned beyond it.
    """
    if chunk_events < 1:
        raise ValueError("chunk_events must be >= 1")
    if len(buffers) != len(cohorts):
        raise ValueError("need one cohort name per shard buffer")
    tables = MergeTables(cell_names)
    time_cols: list[np.ndarray] = []
    ue_cols: list[np.ndarray] = []
    event_cols: list[np.ndarray] = []
    cell_cols: list[np.ndarray] = []
    # Per-shard column gather (appends collect whole columns for one
    # concatenate).  repro-lint: allow[hot-path-purity]
    for shard, (buffer, cohort) in enumerate(zip(buffers, cohorts)):
        times, ues, codes, ue_ids, event_names = buffer[:5]
        cells = buffer[5] if len(buffer) > 5 else None
        base = tables.add_ues(cohort, ue_ids, shard)
        lookup = tables.event_codes(event_names)
        time_cols.append(np.asarray(times, dtype=np.float64))
        ue_cols.append(np.asarray(ues, dtype=np.int64) + base)
        event_cols.append(lookup[np.asarray(codes, dtype=np.int64)])
        if cells is not None:
            if cell_names is None:
                raise ValueError(
                    f"shard {shard} buffer carries cell annotations but no "
                    "cell_names table was given; pass the topology's cell "
                    "names to merge_buffers"
                )
            cell_cols.append(np.asarray(cells, dtype=np.int16))
    if cell_cols and len(cell_cols) != len(time_cols):
        raise ValueError("shard buffers disagree on cell annotations")
    all_times = np.concatenate(time_cols) if time_cols else np.empty(0)
    all_ues = (
        np.concatenate(ue_cols) if ue_cols else np.empty(0, dtype=np.int64)
    )
    all_events = (
        np.concatenate(event_cols) if event_cols else np.empty(0, dtype=np.int32)
    )
    all_cells = np.concatenate(cell_cols) if cell_cols else None
    order = merge_order(all_times, tables.rank[all_ues])
    all_times = all_times[order]
    all_ues = all_ues[order]
    all_events = all_events[order]
    if all_cells is not None:
        all_cells = all_cells[order]
    all_cohorts = tables.ue_cohorts[all_ues] if all_ues.size else np.empty(
        0, dtype=np.int32
    )
    total = int(all_times.size)
    chunks: list[MergedChunk] = []
    # Per-chunk slicing: total/chunk_events iterations over views.
    # repro-lint: allow[hot-path-purity]
    for lo in range(0, total, chunk_events):
        hi = min(total, lo + chunk_events)
        chunks.append(
            MergedChunk(
                times=all_times[lo:hi],
                cohorts=all_cohorts[lo:hi],
                ues=all_ues[lo:hi],
                events=all_events[lo:hi],
                cells=None if all_cells is None else all_cells[lo:hi],
                tables=tables,
            )
        )
    return chunks
