"""Loss functions.

CPT-GPT trains with a weighted sum of:

* cross-entropy for categorical fields (event type, stop flag), and
* Gaussian negative log-likelihood for the numerical field (interarrival
  time), whose head predicts a mean and a standard deviation (Design 2).

The NetShare GAN baseline additionally uses binary cross-entropy with
logits for its discriminator.  All losses support an optional boolean
mask so that padded positions in a batch of variable-length streams do
not contribute.
"""

from __future__ import annotations

import numpy as np

from .functional import log_softmax, softplus
from .numpy_ops import MIN_SCALE
from .tensor import Tensor, as_tensor

__all__ = [
    "cross_entropy",
    "gaussian_nll",
    "bce_with_logits",
    "mse",
]


def _masked_mean(values: Tensor, mask: np.ndarray | None) -> Tensor:
    """Mean of ``values`` over positions where ``mask`` is True."""
    if mask is None:
        return values.mean()
    mask = np.asarray(mask, dtype=np.float64)
    count = float(mask.sum())
    if count == 0:
        raise ValueError("loss mask selects zero positions")
    return (values * mask).sum() / count


def cross_entropy(
    logits: Tensor, targets: np.ndarray, mask: np.ndarray | None = None
) -> Tensor:
    """Mean cross-entropy between ``logits`` and integer ``targets``.

    Parameters
    ----------
    logits:
        Shape ``(..., num_classes)``.
    targets:
        Integer array of shape ``(...)``.
    mask:
        Optional boolean array of shape ``(...)``; False positions are
        excluded from the mean.
    """
    targets = np.asarray(targets)
    log_probs = log_softmax(logits, axis=-1)
    num_classes = logits.shape[-1]
    if targets.size and (targets.min() < 0 or targets.max() >= num_classes):
        raise ValueError(
            f"targets must lie in [0, {num_classes}); got max {targets.max()}"
        )
    gather = np.zeros(logits.shape, dtype=np.float64)
    np.put_along_axis(gather, targets[..., None], 1.0, axis=-1)
    picked = (log_probs * gather).sum(axis=-1)
    return -_masked_mean(picked, mask)


def gaussian_nll(
    mean: Tensor,
    raw_scale: Tensor,
    targets: np.ndarray,
    mask: np.ndarray | None = None,
    min_scale: float = MIN_SCALE,
) -> Tensor:
    """Gaussian negative log-likelihood with a learned scale.

    ``raw_scale`` is unconstrained; it is mapped through softplus (plus a
    floor) so that the predicted standard deviation stays positive, which
    keeps the NLL well-defined throughout training.  The default floor is
    :data:`repro.nn.numpy_ops.MIN_SCALE`, the same constant generation
    applies when sampling interarrival times — training and inference
    must parameterize the same distribution.
    """
    targets = as_tensor(np.asarray(targets, dtype=np.float64))
    scale = softplus(raw_scale) + min_scale
    var = scale * scale
    diff = targets - mean
    nll = 0.5 * (var.log() + diff * diff / var + np.log(2.0 * np.pi))
    return _masked_mean(nll, mask)


def bce_with_logits(
    logits: Tensor, targets: np.ndarray, mask: np.ndarray | None = None
) -> Tensor:
    """Binary cross-entropy on logits, the GAN discriminator loss.

    Uses the numerically stable form
    ``max(x, 0) - x * y + log(1 + exp(-|x|))``.
    """
    targets_arr = np.asarray(targets, dtype=np.float64)
    loss = logits.relu() - logits * targets_arr + ((-logits.abs()).exp() + 1.0).log()
    return _masked_mean(loss, mask)


def mse(pred: Tensor, targets: np.ndarray, mask: np.ndarray | None = None) -> Tensor:
    """Mean squared error; used by the no-distribution-head ablation."""
    targets = as_tensor(np.asarray(targets, dtype=np.float64))
    diff = pred - targets
    return _masked_mean(diff * diff, mask)
