"""Plain-ndarray math shared by training and the inference fast path.

The autograd ops in :mod:`repro.nn.tensor` / :mod:`repro.nn.functional`
and the numpy-only inference engine in :mod:`repro.core.generate` must
compute *the same functions with the same floating-point expressions*:
any drift between the two silently breaks train/inference equivalence
(the model is then sampled from a different distribution than it was
trained to parameterize).  This module is the single source of truth
for those expressions — both sides import from here, and the fast-path
equivalence tests enforce bit-identical float64 results.

Everything here is dtype-preserving: float32 inputs stay float32, which
is how the inference engine threads its reduced-precision mode through
every activation.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "MIN_SCALE",
    "GELU_TANH_C",
    "gelu",
    "softplus",
    "softmax",
    "stable_last_sum",
    "layer_norm",
    "LAYER_NORM_EPS",
]

#: Floor added to predicted standard deviations.  Shared by the
#: Gaussian-NLL training loss and generation-time sampling.
MIN_SCALE = 1e-3

#: ``sqrt(2 / pi)`` — the tanh-approximation GELU constant.  A Python
#: float: numpy scalar constants are "strong" under NEP 50 and would
#: promote float32 activations back to float64.
GELU_TANH_C = float(np.sqrt(2.0 / np.pi))

#: Epsilon used by every layer norm (training and inference).
LAYER_NORM_EPS = 1e-5


def gelu(x: np.ndarray) -> np.ndarray:
    """Tanh-approximation GELU, the exact expression autograd uses.

    The cube is spelled ``x * x * x``: ``x**3`` routes through
    ``np.power`` (~60× slower) and rounds differently, and this
    expression must stay bitwise identical between training and the
    inference fast path.
    """
    return 0.5 * x * (1.0 + np.tanh(GELU_TANH_C * (x + 0.044715 * (x * x * x))))


def softplus(x: np.ndarray) -> np.ndarray:
    """Stable ``log(1 + exp(x))`` = ``max(x, 0) + log1p(exp(-|x|))``."""
    return np.maximum(x, 0.0) + np.log1p(np.exp(-np.abs(x)))


def stable_last_sum(x: np.ndarray) -> np.ndarray:
    """Sum over the last axis with a layout-independent rounding order.

    ``np.sum`` (and ``np.einsum``) reduce with SIMD kernels whose
    accumulation grouping depends on the array's shape and buffer
    alignment, so summing bitwise-identical rows embedded in
    differently-shaped arrays can differ in the last bit.  Here the
    pairing is fixed by explicit slicing — a binary tree of elementwise
    adds, which are bitwise deterministic on any layout — so training
    (``(B, H, T, T)`` scores) and inference (``(B, H, S)`` windows)
    round identically.  Returns the ``keepdims`` shape ``(..., 1)``.
    """
    while x.shape[-1] > 1:
        n = x.shape[-1]
        even = n - (n % 2)
        paired = x[..., 0:even:2] + x[..., 1:even:2]
        if n % 2:
            # Fold the odd element into the last pair (fixed position).
            paired[..., -1] = paired[..., -1] + x[..., -1]
        x = paired
    return x


def softmax(x: np.ndarray) -> np.ndarray:
    """Numerically stable softmax along the last axis.

    Mirrors :func:`repro.nn.functional.softmax` term by term (shift by
    the max, exponentiate, normalize through :func:`stable_last_sum`) so
    inference softmax is bitwise identical to the training-time op on
    equal input rows.
    """
    shifted = x - x.max(axis=-1, keepdims=True)
    exps = np.exp(shifted)
    return exps / stable_last_sum(exps)


def layer_norm(x: np.ndarray, gain: np.ndarray, shift: np.ndarray) -> np.ndarray:
    """Layer norm over the last axis, matching :class:`repro.nn.LayerNorm`."""
    mean = x.mean(axis=-1, keepdims=True)
    centered = x - mean
    var = (centered * centered).mean(axis=-1, keepdims=True)
    return centered / np.sqrt(var + LAYER_NORM_EPS) * gain + shift
