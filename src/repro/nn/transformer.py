"""Decoder-only transformer backbone (GPT-style).

CPT-GPT (Figure 3 of the paper) replaces the NLP embedding table with a
linear projection from the multi-modal token space (``d_token = 9``) to
``d_model``, adds learned positional embeddings, stacks pre-norm decoder
blocks, and exposes the final hidden states to per-field MLP heads.
The backbone here implements everything up to the hidden states; heads
live with the model in :mod:`repro.core.model`.
"""

from __future__ import annotations

import numpy as np

from . import init
from .attention import MultiHeadSelfAttention
from .functional import causal_mask
from .layers import Dropout, LayerNorm, Linear, Module, Parameter
from .tensor import Tensor

__all__ = ["DecoderBlock", "TransformerDecoder"]


class DecoderBlock(Module):
    """Pre-norm transformer decoder block: attention + position-wise MLP."""

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        d_ff: int,
        rng: np.random.Generator,
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        self.norm1 = LayerNorm(d_model)
        self.attn = MultiHeadSelfAttention(d_model, num_heads, rng, dropout)
        self.norm2 = LayerNorm(d_model)
        self.ff1 = Linear(d_model, d_ff, rng)
        self.ff2 = Linear(d_ff, d_model, rng)
        self.ff_dropout = Dropout(dropout, rng)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        x = x + self.attn(self.norm1(x), mask)
        hidden = self.ff2(self.ff1(self.norm2(x)).gelu())
        return x + self.ff_dropout(hidden)


class TransformerDecoder(Module):
    """Stack of causal decoder blocks over linearly-projected tokens.

    Parameters
    ----------
    d_token:
        Dimension of the raw multi-modal tokens (9 for CPT-GPT: 6-way
        one-hot event type + 1 interarrival + 2-way stop flag).
    d_model:
        Attention hidden size.
    num_layers / num_heads / d_ff:
        Standard transformer hyperparameters.
    max_len:
        Maximum sequence length for the learned positional embedding.
    """

    def __init__(
        self,
        d_token: int,
        d_model: int,
        num_layers: int,
        num_heads: int,
        d_ff: int,
        max_len: int,
        rng: np.random.Generator,
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        self.d_token = d_token
        self.d_model = d_model
        self.max_len = max_len
        self.input_proj = Linear(d_token, d_model, rng)
        self.positional = Parameter(init.normal((max_len, d_model), rng, std=0.02))
        self.blocks: list[DecoderBlock] = []
        for i in range(num_layers):
            block = DecoderBlock(d_model, num_heads, d_ff, rng, dropout)
            setattr(self, f"block{i}", block)
            self.blocks.append(block)
        self.final_norm = LayerNorm(d_model)
        self.embed_dropout = Dropout(dropout, rng)

    def forward(self, tokens: Tensor) -> Tensor:
        """Map ``(batch, time, d_token)`` tokens to hidden states.

        Returns the ``(batch, time, d_model)`` hidden-state sequence after
        the final layer norm; position ``t`` encodes the prefix up to and
        including token ``t`` (causal masking).
        """
        batch, time, d_token = tokens.shape
        if d_token != self.d_token:
            raise ValueError(f"expected token dim {self.d_token}, got {d_token}")
        if time > self.max_len:
            raise ValueError(
                f"sequence length {time} exceeds positional table ({self.max_len})"
            )
        x = self.input_proj(tokens) + self.positional[:time]
        x = self.embed_dropout(x)
        mask = causal_mask(time)
        for block in self.blocks:
            x = block(x, mask)
        return self.final_norm(x)
