"""Neural-network layers: Module base class, Linear, LayerNorm, MLP.

The :class:`Module` container mirrors the familiar torch API at a small
scale: named parameters, sub-module registration, ``state_dict`` /
``load_state_dict``, and train/eval mode switching (used by Dropout).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from . import init
from .tensor import Tensor

__all__ = ["Parameter", "Module", "Linear", "LayerNorm", "Dropout", "Sequential", "MLP"]


class Parameter(Tensor):
    """A :class:`Tensor` that is always trainable."""

    def __init__(self, data) -> None:
        super().__init__(np.asarray(data, dtype=np.float64), requires_grad=True)


class Module:
    """Base class for layers and models.

    Sub-modules and parameters are discovered through attribute
    assignment, exactly like torch's ``nn.Module``.
    """

    def __init__(self) -> None:
        self._parameters: dict[str, Parameter] = {}
        self._modules: dict[str, "Module"] = {}
        self.training = True

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Parameter access
    # ------------------------------------------------------------------
    def parameters(self) -> list[Parameter]:
        """All trainable parameters of this module and its children."""
        return [param for _, param in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix + name + ".")

    def num_parameters(self) -> int:
        """Total scalar parameter count (the paper quotes 725K for CPT-GPT)."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    # ------------------------------------------------------------------
    # Mode switching
    # ------------------------------------------------------------------
    def train(self) -> "Module":
        self.training = True
        for module in self._modules.values():
            module.train()
        return self

    def eval(self) -> "Module":
        self.training = False
        for module in self._modules.values():
            module.eval()
        return self

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every named parameter's data."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(
        self, state: dict[str, np.ndarray], dtype: np.dtype | type = np.float64
    ) -> None:
        """Load parameters in-place; shapes must match exactly.

        ``dtype`` is the precision parameters are cast to.  The default
        (float64) is what training requires; inference-only consumers can
        pass ``np.float32`` to halve resident weight memory.
        """
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)} "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=dtype)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"expected {param.data.shape}, got {value.shape}"
                )
            param.data = value.copy()

    # ------------------------------------------------------------------
    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError


class Linear(Module):
    """Affine layer ``y = x @ W + b`` with ``W`` stored ``(in, out)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
        init_std: float | None = None,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        if init_std is None:
            weight = init.xavier_uniform((in_features, out_features), rng)
        else:
            weight = init.normal((in_features, out_features), rng, std=init_std)
        self.weight = Parameter(weight)
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class LayerNorm(Module):
    """Layer normalization over the last axis."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gain = Parameter(np.ones(dim))
        self.shift = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / (var + self.eps).sqrt()
        return normed * self.gain + self.shift


class Dropout(Module):
    """Inverted dropout; identity when ``p == 0`` or in eval mode."""

    def __init__(self, p: float, rng: np.random.Generator) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1); got {p}")
        self.p = p
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = self._rng.random(x.shape) < keep
        return x * (mask.astype(np.float64) / keep)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._order: list[str] = []
        for i, module in enumerate(modules):
            name = f"layer{i}"
            setattr(self, name, module)
            self._order.append(name)

    def forward(self, x: Tensor) -> Tensor:
        for name in self._order:
            x = getattr(self, name)(x)
        return x

    def __iter__(self):
        return (getattr(self, name) for name in self._order)


class MLP(Module):
    """Two-layer perceptron head: ``Linear -> activation -> Linear``.

    CPT-GPT attaches one such head per output field (event type,
    interarrival time, stop flag) after the final attention block.
    """

    def __init__(
        self,
        in_features: int,
        hidden: int,
        out_features: int,
        rng: np.random.Generator,
        activation: str = "gelu",
    ) -> None:
        super().__init__()
        if activation not in ("gelu", "relu", "tanh"):
            raise ValueError(f"unsupported activation: {activation!r}")
        self.fc1 = Linear(in_features, hidden, rng)
        self.fc2 = Linear(hidden, out_features, rng)
        self.activation = activation

    def forward(self, x: Tensor) -> Tensor:
        hidden = self.fc1(x)
        if self.activation == "gelu":
            hidden = hidden.gelu()
        elif self.activation == "relu":
            hidden = hidden.relu()
        else:
            hidden = hidden.tanh()
        return self.fc2(hidden)
