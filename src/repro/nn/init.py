"""Weight initialization schemes for :mod:`repro.nn` layers."""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "kaiming_uniform", "normal", "zeros", "ones"]


def xavier_uniform(
    shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0
) -> np.ndarray:
    """Glorot/Xavier uniform initialization.

    Suitable for tanh/linear layers; ``fan_in``/``fan_out`` are taken from
    the last two axes (weights here are stored ``(in, out)``).
    """
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He uniform initialization, suited to ReLU-family activations."""
    fan_in, _ = _fans(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def normal(
    shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.02
) -> np.ndarray:
    """GPT-style small-variance normal initialization."""
    return rng.normal(0.0, std, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("initialization requires at least a 1-D shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[:-2])) if len(shape) > 2 else 1
    return shape[-2] * receptive, shape[-1] * receptive
