"""``repro.nn`` — a from-scratch neural-network substrate on numpy.

The paper implements CPT-GPT in PyTorch; this environment has no torch,
so the package provides the minimal-but-complete pieces both CPT-GPT and
the NetShare GAN baseline need: a reverse-mode autograd engine, linear /
layer-norm / attention / transformer-decoder / LSTM layers, Adam and SGD
optimizers, and the three loss families used in the paper (cross-entropy,
Gaussian NLL, binary cross-entropy).
"""

from .attention import MultiHeadSelfAttention, attention_mix, attention_scores
from .functional import causal_mask, log_softmax, one_hot, softmax, softplus
from .numpy_ops import MIN_SCALE
from .layers import (
    MLP,
    Dropout,
    LayerNorm,
    Linear,
    Module,
    Parameter,
    Sequential,
)
from .losses import bce_with_logits, cross_entropy, gaussian_nll, mse
from .lstm import LSTM, LSTMCell
from .optim import SGD, Adam, ParameterArena, clip_grad_norm
from .serialization import load_checkpoint, save_checkpoint
from .tensor import Tensor, as_tensor, concatenate, is_grad_enabled, no_grad, stack, where
from .transformer import DecoderBlock, TransformerDecoder

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "concatenate",
    "stack",
    "where",
    "softmax",
    "log_softmax",
    "softplus",
    "one_hot",
    "causal_mask",
    "Module",
    "Parameter",
    "Linear",
    "LayerNorm",
    "Dropout",
    "Sequential",
    "MLP",
    "MultiHeadSelfAttention",
    "attention_scores",
    "attention_mix",
    "MIN_SCALE",
    "DecoderBlock",
    "TransformerDecoder",
    "LSTM",
    "LSTMCell",
    "SGD",
    "Adam",
    "ParameterArena",
    "clip_grad_norm",
    "cross_entropy",
    "gaussian_nll",
    "bce_with_logits",
    "mse",
    "save_checkpoint",
    "load_checkpoint",
]
