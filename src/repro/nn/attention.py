"""Multi-head self-attention with causal masking.

This is the core of the CPT-GPT decoder (§4.3 of the paper): attention
lets the model capture dependencies between control events regardless of
their distance in the stream, which LSTMs struggle with (the paper's L4).

The two attention contractions (query·key scores and weight·value
mixing) are computed with ``np.einsum`` rather than batched ``matmul``.
``einsum``'s accumulation order per output element is independent of the
other operand dimensions, so the single-position inference engine in
:mod:`repro.core.generate` — which contracts one query row against a
cached key/value window — reproduces the training forward pass *bitwise*
in float64.  BLAS ``matmul`` kernels do not have that property (a
``m=1`` GEMV accumulates differently from a ``m=T`` GEMM).  Gradients
carry no bitwise contract, so the backward passes keep fast BLAS
``matmul``.
"""

from __future__ import annotations

import numpy as np

from .functional import softmax
from .layers import Dropout, Linear, Module
from .tensor import Tensor, as_tensor

__all__ = ["MultiHeadSelfAttention", "attention_scores", "attention_mix"]

#: Subscripts shared with the inference engine; single-position steps use
#: the same contractions with the ``t`` axis dropped.
SCORES_SUBSCRIPTS = "bhtd,bhsd->bhts"
MIX_SUBSCRIPTS = "bhts,bhsd->bhtd"


def attention_scores(q: Tensor, k: Tensor) -> Tensor:
    """``q @ k^T`` over heads: ``(B,H,T,hd),(B,H,S,hd) -> (B,H,T,S)``.

    Forward is ``einsum`` (bitwise shape-independent, see module
    docstring); backward uses ``matmul``.
    """
    q, k = as_tensor(q), as_tensor(k)
    data = np.einsum(SCORES_SUBSCRIPTS, q.data, k.data)

    def backward(grad: np.ndarray):
        dq = grad @ k.data  # (B,H,T,S)@(B,H,S,hd)
        dk = grad.transpose(0, 1, 3, 2) @ q.data  # (B,H,S,T)@(B,H,T,hd)
        return dq, dk

    return Tensor._make(data, (q, k), backward)


def attention_mix(weights: Tensor, v: Tensor) -> Tensor:
    """``weights @ v``: ``(B,H,T,S),(B,H,S,hd) -> (B,H,T,hd)``."""
    weights, v = as_tensor(weights), as_tensor(v)
    data = np.einsum(MIX_SUBSCRIPTS, weights.data, v.data)

    def backward(grad: np.ndarray):
        dw = grad @ v.data.transpose(0, 1, 3, 2)  # (B,H,T,hd)@(B,H,hd,S)
        dv = weights.data.transpose(0, 1, 3, 2) @ grad  # (B,H,S,T)@(B,H,T,hd)
        return dw, dv

    return Tensor._make(data, (weights, v), backward)


class MultiHeadSelfAttention(Module):
    """Causal multi-head self-attention over ``(batch, time, d_model)``.

    Parameters
    ----------
    d_model:
        Attention hidden size (the paper's ``d_model``).
    num_heads:
        Number of attention heads; must divide ``d_model``.
    rng:
        Source of initialization randomness.
    dropout:
        Dropout probability applied to attention weights and output.
    """

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        rng: np.random.Generator,
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        if d_model % num_heads != 0:
            raise ValueError(
                f"d_model ({d_model}) must be divisible by num_heads ({num_heads})"
            )
        self.d_model = d_model
        self.num_heads = num_heads
        self.head_dim = d_model // num_heads
        self.qkv = Linear(d_model, 3 * d_model, rng)
        self.out = Linear(d_model, d_model, rng)
        self.attn_dropout = Dropout(dropout, rng)
        self.out_dropout = Dropout(dropout, rng)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        """Apply attention.

        Parameters
        ----------
        x:
            Input of shape ``(batch, time, d_model)``.
        mask:
            Additive attention mask broadcastable to
            ``(batch, heads, time, time)``; typically the causal mask from
            :func:`repro.nn.functional.causal_mask`.
        """
        batch, time, _ = x.shape
        qkv = self.qkv(x)  # (B, T, 3*D)
        qkv = qkv.reshape((batch, time, 3, self.num_heads, self.head_dim))
        qkv = qkv.transpose((2, 0, 3, 1, 4))  # (3, B, H, T, hd)
        q, k, v = qkv[0], qkv[1], qkv[2]

        scale = 1.0 / np.sqrt(self.head_dim)
        scores = attention_scores(q, k) * scale  # (B, H, T, T)
        if mask is not None:
            scores = scores + mask
        weights = softmax(scores, axis=-1)
        weights = self.attn_dropout(weights)

        context = attention_mix(weights, v)  # (B, H, T, hd)
        context = context.transpose((0, 2, 1, 3)).reshape((batch, time, self.d_model))
        return self.out_dropout(self.out(context))
