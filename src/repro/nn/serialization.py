"""Checkpoint (de)serialization for :class:`repro.nn.layers.Module`.

Checkpoints are ``.npz`` archives holding every named parameter plus a
JSON metadata blob (model configuration, training provenance).  The
paper's operational model (Figure 4) packages trained weights together
with the initial-event-type distribution for public release; metadata is
where that distribution travels.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .layers import Module

__all__ = [
    "METADATA_KEY",
    "save_checkpoint",
    "load_checkpoint",
    "write_npz",
    "read_metadata",
]

METADATA_KEY = "__metadata__"


def write_npz(
    path: str | Path, arrays: dict[str, np.ndarray], metadata: dict | None = None
) -> None:
    """Write named arrays plus a JSON metadata blob to an npz archive."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if METADATA_KEY in arrays:
        raise ValueError(f"array name {METADATA_KEY!r} is reserved")
    payload = dict(arrays)
    payload[METADATA_KEY] = np.frombuffer(
        json.dumps(metadata or {}).encode("utf-8"), dtype=np.uint8
    )
    # Write through a file object so numpy honors the exact path rather
    # than appending ".npz" to suffix-less filenames.
    with open(path, "wb") as handle:
        np.savez(handle, **payload)


def read_metadata(path: str | Path) -> dict:
    """The JSON metadata blob of an archive written by :func:`write_npz`."""
    with np.load(Path(path)) as archive:
        if METADATA_KEY not in archive.files:
            raise ValueError(f"{path}: npz archive has no metadata block")
        return json.loads(archive[METADATA_KEY].tobytes().decode("utf-8"))


def save_checkpoint(module: Module, path: str | Path, metadata: dict | None = None) -> None:
    """Write ``module``'s parameters and optional JSON metadata to ``path``."""
    write_npz(path, module.state_dict(), metadata)


def load_checkpoint(
    module: Module, path: str | Path, dtype: np.dtype | type = np.float64
) -> dict:
    """Load parameters into ``module`` in-place; returns the metadata dict.

    ``dtype`` selects the parameter precision (see
    :meth:`Module.load_state_dict`); pass ``np.float32`` for
    inference-only deployments where weight memory matters.
    """
    path = Path(path)
    with np.load(path) as archive:
        metadata_bytes = archive[METADATA_KEY].tobytes()
        state = {
            name: archive[name] for name in archive.files if name != METADATA_KEY
        }
    module.load_state_dict(state, dtype=dtype)
    return json.loads(metadata_bytes.decode("utf-8"))
