"""Checkpoint (de)serialization for :class:`repro.nn.layers.Module`.

Checkpoints are ``.npz`` archives holding every named parameter plus a
JSON metadata blob (model configuration, training provenance).  The
paper's operational model (Figure 4) packages trained weights together
with the initial-event-type distribution for public release; metadata is
where that distribution travels.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .layers import Module

__all__ = ["save_checkpoint", "load_checkpoint"]

_METADATA_KEY = "__metadata__"


def save_checkpoint(module: Module, path: str | Path, metadata: dict | None = None) -> None:
    """Write ``module``'s parameters and optional JSON metadata to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays = module.state_dict()
    if _METADATA_KEY in arrays:
        raise ValueError(f"parameter name {_METADATA_KEY!r} is reserved")
    payload = dict(arrays)
    payload[_METADATA_KEY] = np.frombuffer(
        json.dumps(metadata or {}).encode("utf-8"), dtype=np.uint8
    )
    np.savez(path, **payload)


def load_checkpoint(module: Module, path: str | Path) -> dict:
    """Load parameters into ``module`` in-place; returns the metadata dict."""
    path = Path(path)
    with np.load(path) as archive:
        metadata_bytes = archive[_METADATA_KEY].tobytes()
        state = {
            name: archive[name] for name in archive.files if name != _METADATA_KEY
        }
    module.load_state_dict(state)
    return json.loads(metadata_bytes.decode("utf-8"))
