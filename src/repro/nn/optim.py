"""Optimizers and gradient utilities on flat parameter arenas.

Every optimizer here *adopts* its parameters into a
:class:`ParameterArena`: one contiguous buffer holding all parameter
data, with each :class:`~repro.nn.layers.Parameter` rebound to a view of
its segment (the model keeps holding the very same ``Parameter``
objects).  Moment estimates live in sibling buffers with the same
layout, so an optimizer step is a handful of whole-arena elementwise
NumPy ops instead of a Python loop over parameters.

Elementwise arithmetic is bitwise independent of how the operands are
chunked, so the fused float64 step is **bit-equivalent** to the
per-parameter reference loop this module used to contain (pinned by
``tests/core/test_trainer_fused.py``).  The only reduction —
:func:`clip_grad_norm`'s global norm — keeps the reference accumulation
order (one ``.sum()`` per parameter, Python-float accumulated in
parameter order) for exactly that reason.

Two behaviors are new relative to the reference loop:

* **Per-parameter step counts.**  Adam's bias correction is tracked per
  parameter, so parameters whose gradient is absent for some steps
  (frozen layers during fine-tuning) get the correction matching the
  number of moment updates they actually received, rather than the
  shared global count.  For full training (every parameter updated
  every step) the counts stay uniform and the math is unchanged.
* **Rebinding.**  :meth:`Optimizer.rebind` re-adopts a *different* list
  of parameters (matching shapes) while keeping the moment buffers —
  how transfer learning carries Adam state from a base model onto its
  fine-tuned copy (:func:`repro.core.transfer.fine_tune`).
"""

from __future__ import annotations

import numpy as np

from .layers import Parameter

__all__ = ["ParameterArena", "Optimizer", "SGD", "Adam", "clip_grad_norm"]

#: Segment starts are padded to this many elements so every parameter
#: view keeps the alignment class of a standalone allocation (64 bytes
#: for float64) — reductions in NumPy may round differently on
#: differently-aligned buffers, and bit-equivalence with the reference
#: loop must not depend on where a segment happens to start.
_ALIGN_ELEMENTS = 8


class ParameterArena:
    """A contiguous flat buffer over a list of parameters.

    Construction copies every parameter's current values into the
    buffer and rebinds ``param.data`` to a view of its segment.  The
    parameters are the same objects the model holds, so the model's
    forward pass reads — and in-place arena updates write — one shared
    allocation.

    After mutating the buffer, call :meth:`refresh_views`: it rebinds
    every ``param.data`` to a *new* view object of the same memory.
    Consumers that cache derived weights (the inference engine's
    dtype-cast bindings) detect weight changes by array identity, which
    in-place updates alone would not trip.
    """

    def __init__(self, params: list[Parameter], dtype=None) -> None:
        self.params = list(params)
        if len({id(p) for p in self.params}) != len(self.params):
            raise ValueError("duplicate Parameter objects in arena")
        if dtype is None:
            dtype = self.params[0].data.dtype if self.params else np.float64
        self.dtype = np.dtype(dtype)
        self.shapes = [p.data.shape for p in self.params]
        self.sizes = [int(np.prod(shape)) if shape else 1 for shape in self.shapes]
        self.offsets: list[int] = []
        cursor = 0
        for size in self.sizes:
            self.offsets.append(cursor)
            cursor += -(-size // _ALIGN_ELEMENTS) * _ALIGN_ELEMENTS
        self.total = cursor
        self.data = np.zeros(self.total, dtype=self.dtype)
        self._views: list[np.ndarray] = [None] * len(self.params)
        for i, param in enumerate(self.params):
            view = self._segment_view(self.data, i)
            np.copyto(view, param.data)
            param.data = view
            self._views[i] = view

    # ------------------------------------------------------------------
    def _segment_view(self, buffer: np.ndarray, i: int) -> np.ndarray:
        offset, size = self.offsets[i], self.sizes[i]
        return buffer[offset : offset + size].reshape(self.shapes[i])

    def zeros_buffer(self) -> np.ndarray:
        """A fresh zeroed flat buffer with this arena's layout."""
        return np.zeros(self.total, dtype=self.dtype)

    def shaped(self, buffer: np.ndarray, i: int) -> np.ndarray:
        """Parameter ``i``'s segment of ``buffer``, in parameter shape."""
        return self._segment_view(buffer, i)

    def sync(self) -> None:
        """Re-adopt parameters whose ``.data`` was rebound externally.

        ``load_state_dict`` and friends *replace* ``param.data``; without
        a resync the optimizer would keep stepping a stale buffer the
        model no longer reads (the silent-divergence bug class the
        transfer fine-tune fix is about).  Values are copied back into
        the arena and the view is restored.

        The check also verifies the view still *aliases this buffer*:
        ``copy.deepcopy`` of a model-plus-optimizer graph preserves the
        ``param.data is view`` identity while materializing the view as
        a standalone array, so an identity check alone could be fooled
        into stepping a detached buffer.
        """
        for i, param in enumerate(self.params):
            view = self._views[i]
            if param.data is not view or view.base is not self.data:
                view = self._segment_view(self.data, i)
                np.copyto(view, param.data)
                param.data = view
                self._views[i] = view

    def refresh_views(self) -> None:
        """Rebind every parameter to a fresh view object of its segment."""
        for i, param in enumerate(self.params):
            view = self._segment_view(self.data, i)
            param.data = view
            self._views[i] = view

    def gather_grads(self, out: np.ndarray) -> np.ndarray:
        """Copy ``param.grad`` values into ``out``; returns a presence mask."""
        present = np.zeros(len(self.params), dtype=bool)
        for i, param in enumerate(self.params):
            if param.grad is not None:
                present[i] = True
                np.copyto(self._segment_view(out, i), param.grad)
        return present

    def grad_norm(self, grads: np.ndarray) -> float:
        """Global L2 norm of a flat gradient buffer.

        Accumulated exactly like :func:`clip_grad_norm`: one ``.sum()``
        per parameter segment (in parameter shape), Python-float added
        in parameter order.
        """
        total = 0.0
        for i in range(len(self.params)):
            segment = self._segment_view(grads, i)
            total += float((segment**2).sum())
        return float(np.sqrt(total))


class Optimizer:
    """Base optimizer over a flat list of parameters (arena-adopted)."""

    def __init__(self, params: list[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive; got {lr}")
        self.params = list(params)
        self.lr = lr
        self._arena = ParameterArena(self.params)
        self._grads = self._arena.zeros_buffer()

    @property
    def arena(self) -> ParameterArena:
        """The flat parameter arena this optimizer adopted."""
        return self._arena

    def zero_grad(self) -> None:
        for param in self.params:
            param.grad = None

    def step(
        self,
        grads: np.ndarray | None = None,
        present: np.ndarray | None = None,
    ) -> None:
        """Apply one update.

        Without arguments, gradients are gathered from ``param.grad``
        (parameters with ``grad is None`` are skipped).  ``grads`` may
        instead supply a pre-reduced flat buffer in arena layout — the
        sharded data-parallel trainer's path — with ``present`` marking
        which parameters actually received gradients (default: all).
        Frozen parameters must be masked out here too: a zero segment
        with ``present`` set would still decay moments and advance the
        step count.
        """
        self._arena.sync()
        if grads is None:
            present = self._arena.gather_grads(self._grads)
            grads = self._grads
        else:
            if grads.shape != (self._arena.total,):
                raise ValueError(
                    f"flat gradient buffer has size {grads.shape}, "
                    f"expected ({self._arena.total},)"
                )
            if present is None:
                present = np.ones(len(self.params), dtype=bool)
        if present.any():
            self._apply(grads, present)
            self._arena.refresh_views()

    def _apply(self, grads: np.ndarray, present: np.ndarray) -> None:
        raise NotImplementedError

    def rebind(self, params: list[Parameter]) -> "Optimizer":
        """Re-adopt ``params`` (same count/shapes), keeping moment state.

        Transfer learning deep-copies the base model, which leaves an
        existing optimizer holding the *pre-copy* parameter objects —
        stepping it would silently train the base model.  Rebinding
        swaps the arena onto the new parameters (adopting their current
        values) while the moment buffers, per-parameter step counts and
        hyperparameters carry over unchanged.
        """
        params = list(params)
        if len(params) != len(self.params):
            raise ValueError(
                f"rebind expects {len(self.params)} parameters, got {len(params)}"
            )
        for i, (old_shape, param) in enumerate(zip(self._arena.shapes, params)):
            if param.data.shape != old_shape:
                raise ValueError(
                    f"rebind shape mismatch at parameter {i}: "
                    f"expected {old_shape}, got {param.data.shape}"
                )
        self.params = params
        self._arena = ParameterArena(params, dtype=self._arena.dtype)
        return self


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum (fused)."""

    def __init__(
        self, params: list[Parameter], lr: float, momentum: float = 0.0
    ) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self._velocity = self._arena.zeros_buffer()

    def _apply(self, grads: np.ndarray, present: np.ndarray) -> None:
        data = self._arena.data
        if present.all():
            if self.momentum:
                self._velocity *= self.momentum
                self._velocity += grads
                update = self._velocity
            else:
                update = grads
            data -= self.lr * update
            return
        for i in np.flatnonzero(present):
            g = self._arena.shaped(grads, i)
            d = self._arena.shaped(data, i)
            if self.momentum:
                v = self._arena.shaped(self._velocity, i)
                v *= self.momentum
                v += g
                update = v
            else:
                update = g
            d -= self.lr * update

    def rebind(self, params: list[Parameter]) -> "SGD":
        super().rebind(params)
        return self


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with per-parameter bias correction (fused).

    Both CPT-GPT and the NetShare baseline train with Adam; transfer
    learning (Design 3) fine-tunes with the *same* optimizer instance,
    rebound onto the adapted model so the moment estimates carry over.

    Bias correction uses a per-parameter step count: a parameter whose
    gradient is absent for some steps (a frozen layer during fine-tune)
    receives the correction for the updates it actually accumulated,
    not the shared global count.
    """

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = self._arena.zeros_buffer()
        self._v = self._arena.zeros_buffer()
        self._steps = np.zeros(len(self.params), dtype=np.int64)

    @property
    def step_counts(self) -> np.ndarray:
        """Per-parameter update counts (copy)."""
        return self._steps.copy()

    def _apply(self, grads: np.ndarray, present: np.ndarray) -> None:
        b1, b2 = self.beta1, self.beta2
        self._steps[present] += 1
        uniform = present.all() and bool((self._steps == self._steps[0]).all())
        if uniform:
            # Fast path: one shared step count -> scalar bias terms and
            # whole-arena ops.  The expressions mirror the reference
            # per-parameter loop term by term (elementwise arithmetic is
            # bitwise chunking-independent, so this IS the reference
            # update applied to all parameters at once).
            count = int(self._steps[0])
            bias1 = 1.0 - b1**count
            bias2 = 1.0 - b2**count
            data = self._arena.data
            grad = grads
            if self.weight_decay:
                grad = grad + self.weight_decay * data
            m, v = self._m, self._v
            m *= b1
            m += (1 - b1) * grad
            v *= b2
            v += (1 - b2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
            return
        for i in np.flatnonzero(present):
            count = int(self._steps[i])
            bias1 = 1.0 - b1**count
            bias2 = 1.0 - b2**count
            data = self._arena.shaped(self._arena.data, i)
            grad = self._arena.shaped(grads, i)
            if self.weight_decay:
                grad = grad + self.weight_decay * data
            m = self._arena.shaped(self._m, i)
            v = self._arena.shaped(self._v, i)
            m *= b1
            m += (1 - b1) * grad
            v *= b2
            v += (1 - b2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def rebind(self, params: list[Parameter]) -> "Adam":
        super().rebind(params)
        return self

    # ------------------------------------------------------------------
    # Moment-state (de)serialization — consumed by TrainerCheckpoint.
    # ------------------------------------------------------------------
    def state_buffers(self) -> dict[str, np.ndarray]:
        """Copies of the moment buffers and step counts."""
        return {
            "m": self._m.copy(),
            "v": self._v.copy(),
            "steps": self._steps.copy(),
        }

    def load_state_buffers(self, state: dict[str, np.ndarray]) -> None:
        """Restore buffers produced by :meth:`state_buffers`."""
        if state["m"].shape != self._m.shape or state["v"].shape != self._v.shape:
            raise ValueError("optimizer state buffers do not match arena layout")
        self._m[:] = state["m"]
        self._v[:] = state["v"]
        self._steps[:] = state["steps"]


def clip_grad_norm(params: list[Parameter], max_norm: float) -> float:
    """Clip gradients in-place to a global L2 norm; returns the pre-clip norm.

    ``max_norm`` must be positive: a non-positive ceiling used to fall
    into the ``norm > max_norm`` branch and silently *zero* every
    gradient (scale ``0 / norm``), which is never what a caller wants.
    """
    if not max_norm > 0:
        raise ValueError(f"max_norm must be positive; got {max_norm}")
    total = 0.0
    for param in params:
        if param.grad is not None:
            total += float((param.grad**2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm:
        scale = max_norm / norm
        for param in params:
            if param.grad is not None:
                param.grad *= scale
    return norm
