"""Optimizers and gradient utilities."""

from __future__ import annotations

import numpy as np

from .layers import Parameter

__all__ = ["SGD", "Adam", "clip_grad_norm"]


class Optimizer:
    """Base optimizer over a flat list of parameters."""

    def __init__(self, params: list[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive; got {lr}")
        self.params = list(params)
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.params:
            param.grad = None

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self, params: list[Parameter], lr: float, momentum: float = 0.0
    ) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            if self.momentum:
                velocity *= self.momentum
                velocity += param.grad
                update = velocity
            else:
                update = param.grad
            param.data = param.data - self.lr * update


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with bias correction.

    Both CPT-GPT and the NetShare baseline train with Adam; transfer
    learning (Design 3) simply re-creates the optimizer over pretrained
    weights with a lower learning rate.
    """

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step_count += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**self._step_count
        bias2 = 1.0 - b2**self._step_count
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= b1
            m += (1 - b1) * grad
            v *= b2
            v += (1 - b2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def clip_grad_norm(params: list[Parameter], max_norm: float) -> float:
    """Clip gradients in-place to a global L2 norm; returns the pre-clip norm."""
    total = 0.0
    for param in params:
        if param.grad is not None:
            total += float((param.grad**2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for param in params:
            if param.grad is not None:
                param.grad *= scale
    return norm
