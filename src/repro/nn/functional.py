"""Composite differentiable functions built from :mod:`repro.nn.tensor`.

These are the numerically-careful building blocks shared by the models:
stable softmax / log-softmax, one-hot encoding and causal masks.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, as_tensor, sum_last_stable

__all__ = [
    "softmax",
    "log_softmax",
    "one_hot",
    "causal_mask",
    "softplus",
]


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``.

    The max subtraction uses a detached tensor: the subtraction of a
    constant does not change the mathematical gradient of softmax.  The
    last-axis normalization sums through
    :func:`repro.nn.tensor.sum_last_stable` so the inference fast path
    (which reduces differently-shaped score windows) reproduces training
    softmax weights bitwise.
    """
    x = as_tensor(x)
    shifted = x - x.data.max(axis=axis, keepdims=True)
    exps = shifted.exp()
    if axis == -1 or axis == exps.data.ndim - 1:
        return exps / sum_last_stable(exps)
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x - x.data.max(axis=axis, keepdims=True)
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def softplus(x: Tensor) -> Tensor:
    """Stable ``log(1 + exp(x))``; used to keep predicted scales positive."""
    x = as_tensor(x)
    # softplus(x) = max(x, 0) + log1p(exp(-|x|)); build it from primitives.
    return x.relu() + ((-x.abs()).exp() + 1.0).log()


def one_hot(indices: np.ndarray, num_classes: int, dtype=np.float64) -> np.ndarray:
    """One-hot encode an integer array into ``(*indices.shape, num_classes)``.

    Returns a plain ndarray: encodings are model *inputs* and never need
    gradients.
    """
    indices = np.asarray(indices)
    if indices.size and (indices.min() < 0 or indices.max() >= num_classes):
        raise ValueError(
            f"indices must lie in [0, {num_classes}); "
            f"got range [{indices.min()}, {indices.max()}]"
        )
    out = np.zeros(indices.shape + (num_classes,), dtype=dtype)
    np.put_along_axis(out, indices[..., None], 1.0, axis=-1)
    return out


def causal_mask(length: int) -> np.ndarray:
    """Additive causal attention mask of shape ``(length, length)``.

    Entry ``(i, j)`` is ``0`` when ``j <= i`` (token *i* may attend to *j*)
    and ``-inf``-like (a large negative constant) otherwise.
    """
    mask = np.triu(np.full((length, length), -1e9), k=1)
    return mask
