"""Reverse-mode automatic differentiation on top of numpy.

This module is the foundation of the ``repro.nn`` substrate.  The public
surface is a single class, :class:`Tensor`, which wraps a ``numpy.ndarray``
and records the operations applied to it so that :meth:`Tensor.backward`
can propagate gradients to every reachable leaf.

The engine is intentionally small but complete enough to train the models
this repository needs: a decoder-only transformer (CPT-GPT) and an
LSTM-based GAN (the NetShare baseline).  Supported differentiable
operations include broadcasting arithmetic, batched matrix multiplication,
reductions, shape manipulation, slicing/gather, concatenation and the
non-linearities used by the models.

Gradient correctness for every primitive is verified against central
finite differences in ``tests/nn/test_gradcheck.py``.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "as_tensor", "no_grad", "is_grad_enabled", "sum_last_stable"]

# Global switch used by ``no_grad`` to disable graph construction during
# inference.  Inference of autoregressive models runs many thousands of
# forward passes; skipping graph bookkeeping there matters.
_GRAD_ENABLED = True


class no_grad:
    """Context manager that disables gradient tracking.

    Mirrors ``torch.no_grad``: inside the ``with`` block, every operation
    produces tensors with ``requires_grad=False`` and records no graph.
    """

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradients."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it matches ``shape``.

    Numpy broadcasting implicitly expands operands; the corresponding
    gradient must be summed over the expanded axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were broadcast from size one.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def as_tensor(value, dtype=None) -> "Tensor":
    """Coerce ``value`` (Tensor, ndarray or scalar) into a :class:`Tensor`."""
    if isinstance(value, Tensor):
        return value
    return Tensor(np.asarray(value, dtype=dtype))


class Tensor:
    """A numpy array with reverse-mode autodiff support.

    Parameters
    ----------
    data:
        Array-like payload.  Stored as ``numpy.ndarray`` (``float64`` data
        is preserved; everything else is converted with ``np.asarray``).
    requires_grad:
        Whether gradients should be accumulated into this tensor during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn")

    def __init__(self, data, requires_grad: bool = False) -> None:
        self.data = np.asarray(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._parents: tuple[Tensor, ...] = ()
        self._backward_fn: Callable[[np.ndarray], None] | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_note})"

    def numpy(self) -> np.ndarray:
        """Return the underlying ndarray (not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward_fn: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create a graph node if grad tracking is on, else a plain tensor."""
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward_fn = backward_fn
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        Each op's ``_backward_fn`` receives the upstream gradient and
        returns per-parent gradients; ``backward`` walks the graph in
        reverse topological order routing those gradients until every
        reachable leaf with ``requires_grad`` has its ``.grad`` populated.

        Parameters
        ----------
        grad:
            Incoming gradient.  Defaults to ones (the common case of a
            scalar loss calling ``backward()`` with no argument).
        """
        _backward_impl(self, grad)


def _toposort(root: Tensor) -> list[Tensor]:
    order: list[Tensor] = []
    visited: set[int] = set()
    stack: list[tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node._parents:
            if id(parent) not in visited:
                stack.append((parent, False))
    return order


def _backward_impl(self: Tensor, grad: np.ndarray | None = None) -> None:
    if grad is None:
        grad = np.ones_like(self.data, dtype=self.data.dtype)
    else:
        grad = np.asarray(grad, dtype=self.data.dtype)

    order = _toposort(self)
    grads: dict[int, np.ndarray] = {id(self): grad}

    for node in reversed(order):
        node_grad = grads.pop(id(node), None)
        if node_grad is None:
            continue
        if node._backward_fn is None:
            if node.requires_grad:
                node._accumulate(node_grad)
            continue
        parent_grads = node._backward_fn(node_grad)
        for parent, pgrad in zip(node._parents, parent_grads):
            if pgrad is None or not parent.requires_grad:
                continue
            key = id(parent)
            if key in grads:
                grads[key] = grads[key] + pgrad
            else:
                grads[key] = pgrad
        # Release references so big intermediates free early.
        node._backward_fn = None
        node._parents = ()


# ----------------------------------------------------------------------
# Primitive operations
# ----------------------------------------------------------------------
def _add(a: Tensor, b: Tensor) -> Tensor:
    data = a.data + b.data

    def backward(grad: np.ndarray):
        return (_unbroadcast(grad, a.shape), _unbroadcast(grad, b.shape))

    return Tensor._make(data, (a, b), backward)


def _sub(a: Tensor, b: Tensor) -> Tensor:
    data = a.data - b.data

    def backward(grad: np.ndarray):
        return (_unbroadcast(grad, a.shape), _unbroadcast(-grad, b.shape))

    return Tensor._make(data, (a, b), backward)


def _mul(a: Tensor, b: Tensor) -> Tensor:
    data = a.data * b.data

    def backward(grad: np.ndarray):
        return (
            _unbroadcast(grad * b.data, a.shape),
            _unbroadcast(grad * a.data, b.shape),
        )

    return Tensor._make(data, (a, b), backward)


def _div(a: Tensor, b: Tensor) -> Tensor:
    data = a.data / b.data

    def backward(grad: np.ndarray):
        ga = grad / b.data
        gb = -grad * a.data / (b.data * b.data)
        return (_unbroadcast(ga, a.shape), _unbroadcast(gb, b.shape))

    return Tensor._make(data, (a, b), backward)


def _matmul(a: Tensor, b: Tensor) -> Tensor:
    data = a.data @ b.data

    def backward(grad: np.ndarray):
        ga = gb = None
        if a.requires_grad:
            if b.ndim == 1:
                # (..., n) @ (n,) -> (...): grad has shape (...)
                ga = grad[..., None] * b.data
            else:
                ga = grad @ np.swapaxes(b.data, -1, -2)
                ga = _unbroadcast(ga, a.shape)
        if b.requires_grad:
            if a.ndim == 1:
                gb = a.data[:, None] * grad
            else:
                gb = np.swapaxes(a.data, -1, -2) @ grad
                gb = _unbroadcast(gb, b.shape)
        return (ga, gb)

    return Tensor._make(data, (a, b), backward)


def _pow(a: Tensor, exponent: float) -> Tensor:
    data = a.data**exponent

    def backward(grad: np.ndarray):
        return (grad * exponent * a.data ** (exponent - 1),)

    return Tensor._make(data, (a,), backward)


def _neg(a: Tensor) -> Tensor:
    def backward(grad: np.ndarray):
        return (-grad,)

    return Tensor._make(-a.data, (a,), backward)


def _exp(a: Tensor) -> Tensor:
    data = np.exp(a.data)

    def backward(grad: np.ndarray):
        return (grad * data,)

    return Tensor._make(data, (a,), backward)


def _log(a: Tensor) -> Tensor:
    data = np.log(a.data)

    def backward(grad: np.ndarray):
        return (grad / a.data,)

    return Tensor._make(data, (a,), backward)


def _sqrt(a: Tensor) -> Tensor:
    data = np.sqrt(a.data)

    def backward(grad: np.ndarray):
        return (grad * 0.5 / data,)

    return Tensor._make(data, (a,), backward)


def _tanh(a: Tensor) -> Tensor:
    data = np.tanh(a.data)

    def backward(grad: np.ndarray):
        return (grad * (1.0 - data * data),)

    return Tensor._make(data, (a,), backward)


def _sigmoid(a: Tensor) -> Tensor:
    # Numerically stable logistic.
    data = np.where(
        a.data >= 0,
        1.0 / (1.0 + np.exp(-np.clip(a.data, -60, 60))),
        np.exp(np.clip(a.data, -60, 60)) / (1.0 + np.exp(np.clip(a.data, -60, 60))),
    )

    def backward(grad: np.ndarray):
        return (grad * data * (1.0 - data),)

    return Tensor._make(data, (a,), backward)


def _relu(a: Tensor) -> Tensor:
    mask = a.data > 0
    data = np.where(mask, a.data, 0.0)

    def backward(grad: np.ndarray):
        return (grad * mask,)

    return Tensor._make(data, (a,), backward)


from .numpy_ops import GELU_TANH_C as _GELU_C


def _gelu(a: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation).

    Keeps the expression of :func:`repro.nn.numpy_ops.gelu` exactly —
    the inference fast path relies on bitwise-identical activations.
    (``x * x * x`` rather than ``x**3``: same expression there, and
    ``np.power`` is far slower.)
    """
    x = a.data
    inner = _GELU_C * (x + 0.044715 * (x * x * x))
    t = np.tanh(inner)
    data = 0.5 * x * (1.0 + t)

    def backward(grad: np.ndarray):
        dinner = _GELU_C * (1.0 + 3 * 0.044715 * (x * x))
        dt = (1.0 - t * t) * dinner
        return (grad * (0.5 * (1.0 + t) + 0.5 * x * dt),)

    return Tensor._make(data, (a,), backward)


def _sum(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    data = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(grad: np.ndarray):
        g = grad
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis=axis)
        return (np.broadcast_to(g, a.shape).astype(a.data.dtype, copy=False),)

    return Tensor._make(data, (a,), backward)


def sum_last_stable(a: Tensor) -> Tensor:
    """Sum over the last axis with a layout-stable accumulation order.

    ``np.sum``'s SIMD reduction can round a row differently depending on
    the shape and alignment of the buffer the row sits in, so summing
    bitwise-identical rows inside differently-shaped arrays may differ
    in the last bit.  The forward therefore reduces through
    :func:`repro.nn.numpy_ops.stable_last_sum` (a fixed binary tree of
    elementwise adds); the inference engine normalizes its attention
    windows through the same function, which is what makes inference
    softmax weights bitwise equal to training's.  Keeps the last axis
    (``keepdims=True`` semantics).
    """
    from .numpy_ops import stable_last_sum

    a = as_tensor(a)
    data = stable_last_sum(a.data)

    def backward(grad: np.ndarray):
        return (np.broadcast_to(grad, a.shape).astype(a.data.dtype, copy=False),)

    return Tensor._make(data, (a,), backward)


def _mean(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    data = a.data.mean(axis=axis, keepdims=keepdims)
    if axis is None:
        count = a.data.size
    elif isinstance(axis, tuple):
        count = int(np.prod([a.shape[ax] for ax in axis]))
    else:
        count = a.shape[axis]

    def backward(grad: np.ndarray):
        g = grad
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis=axis)
        g = np.broadcast_to(g, a.shape).astype(a.data.dtype, copy=False)
        return (g / count,)

    return Tensor._make(data, (a,), backward)


def _max(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    data = a.data.max(axis=axis, keepdims=keepdims)

    def backward(grad: np.ndarray):
        g = grad
        d = data
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis=axis)
            d = np.expand_dims(d, axis=axis)
        mask = (a.data == d).astype(a.data.dtype)
        # Split gradient equally among ties (matches subgradient choice).
        mask /= mask.sum(axis=axis, keepdims=True)
        return (mask * g,)

    return Tensor._make(data, (a,), backward)


def _reshape(a: Tensor, shape: tuple[int, ...]) -> Tensor:
    data = a.data.reshape(shape)

    def backward(grad: np.ndarray):
        return (grad.reshape(a.shape),)

    return Tensor._make(data, (a,), backward)


def _transpose(a: Tensor, axes: tuple[int, ...] | None) -> Tensor:
    data = a.data.transpose(axes)
    if axes is None:
        inverse = None
    else:
        inverse = tuple(np.argsort(axes))

    def backward(grad: np.ndarray):
        return (grad.transpose(inverse),)

    return Tensor._make(data, (a,), backward)


def _getitem(a: Tensor, index) -> Tensor:
    data = a.data[index]

    def backward(grad: np.ndarray):
        out = np.zeros_like(a.data)
        np.add.at(out, index, grad)
        return (out,)

    return Tensor._make(data, (a,), backward)


def _concatenate(tensors: Sequence[Tensor], axis: int) -> Tensor:
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray):
        grads = []
        for i in range(len(tensors)):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(offsets[i], offsets[i + 1])
            grads.append(grad[tuple(slicer)])
        return tuple(grads)

    return Tensor._make(data, tuple(tensors), backward)


def _stack(tensors: Sequence[Tensor], axis: int) -> Tensor:
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray):
        pieces = np.split(grad, len(tensors), axis=axis)
        return tuple(np.squeeze(p, axis=axis) for p in pieces)

    return Tensor._make(data, tuple(tensors), backward)


def _where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    cond = np.asarray(condition, dtype=bool)
    data = np.where(cond, a.data, b.data)

    def backward(grad: np.ndarray):
        ga = _unbroadcast(np.where(cond, grad, 0.0), a.shape)
        gb = _unbroadcast(np.where(cond, 0.0, grad), b.shape)
        return (ga, gb)

    return Tensor._make(data, (a, b), backward)


def _abs(a: Tensor) -> Tensor:
    data = np.abs(a.data)

    def backward(grad: np.ndarray):
        return (grad * np.sign(a.data),)

    return Tensor._make(data, (a,), backward)


def _clip(a: Tensor, low: float | None, high: float | None) -> Tensor:
    data = np.clip(a.data, low, high)
    mask = np.ones_like(a.data, dtype=bool)
    if low is not None:
        mask &= a.data >= low
    if high is not None:
        mask &= a.data <= high

    def backward(grad: np.ndarray):
        return (grad * mask,)

    return Tensor._make(data, (a,), backward)


# ----------------------------------------------------------------------
# Operator bindings
# ----------------------------------------------------------------------
def _binary(op):
    def bound(self: Tensor, other) -> Tensor:
        return op(self, as_tensor(other, dtype=self.dtype))

    return bound


def _rbinary(op):
    def bound(self: Tensor, other) -> Tensor:
        return op(as_tensor(other, dtype=self.dtype), self)

    return bound


Tensor.__add__ = _binary(_add)
Tensor.__radd__ = _rbinary(_add)
Tensor.__sub__ = _binary(_sub)
Tensor.__rsub__ = _rbinary(_sub)
Tensor.__mul__ = _binary(_mul)
Tensor.__rmul__ = _rbinary(_mul)
Tensor.__truediv__ = _binary(_div)
Tensor.__rtruediv__ = _rbinary(_div)
Tensor.__matmul__ = _binary(_matmul)
Tensor.__neg__ = _neg
Tensor.__pow__ = _pow
Tensor.__getitem__ = _getitem

Tensor.exp = _exp
Tensor.log = _log
Tensor.sqrt = _sqrt
Tensor.tanh = _tanh
Tensor.sigmoid = _sigmoid
Tensor.relu = _relu
Tensor.gelu = _gelu
Tensor.abs = _abs
Tensor.sum = _sum
Tensor.mean = _mean
Tensor.max = _max
Tensor.reshape = _reshape


def _transpose_method(self: Tensor, *axes) -> Tensor:
    if not axes:
        return _transpose(self, None)
    if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
        return _transpose(self, tuple(axes[0]))
    return _transpose(self, axes)


def _clip_method(self: Tensor, low=None, high=None) -> Tensor:
    return _clip(self, low, high)


Tensor.transpose = _transpose_method
Tensor.clip = _clip_method


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable ``np.concatenate`` over :class:`Tensor` inputs."""
    return _concatenate(list(tensors), axis)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable ``np.stack`` over :class:`Tensor` inputs."""
    return _stack(list(tensors), axis)


def where(condition, a, b) -> Tensor:
    """Differentiable ``np.where`` (condition is non-differentiable)."""
    return _where(condition, as_tensor(a), as_tensor(b))


__all__ += ["concatenate", "stack", "where"]
