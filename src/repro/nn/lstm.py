"""LSTM layers for the NetShare baseline generator.

DoppelGANger/NetShare generate traffic with an LSTM inside a GAN
(§4.2 of the paper).  The cell follows the standard formulation with a
single fused input/hidden projection; sequences are unrolled in Python,
which is exactly the sequential bottleneck the paper's L3/L4 describe.
"""

from __future__ import annotations

import numpy as np

from . import init
from .layers import Linear, Module, Parameter
from .tensor import Tensor, concatenate, stack

__all__ = ["LSTMCell", "LSTM"]


class LSTMCell(Module):
    """A single LSTM step.

    Gate layout in the fused projection: input, forget, cell, output.
    The forget-gate bias is initialized to one, the standard trick that
    stabilizes early training.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight = Parameter(
            init.xavier_uniform((input_size + hidden_size, 4 * hidden_size), rng)
        )
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size : 2 * hidden_size] = 1.0  # forget gate
        self.bias = Parameter(bias)

    def forward(
        self, x: Tensor, state: tuple[Tensor, Tensor]
    ) -> tuple[Tensor, Tensor]:
        """Advance one step.

        Parameters
        ----------
        x:
            Input of shape ``(batch, input_size)``.
        state:
            Tuple ``(h, c)`` each of shape ``(batch, hidden_size)``.

        Returns
        -------
        The new ``(h, c)`` state.
        """
        h_prev, c_prev = state
        fused = concatenate([x, h_prev], axis=-1) @ self.weight + self.bias
        hs = self.hidden_size
        i_gate = fused[:, 0 * hs : 1 * hs].sigmoid()
        f_gate = fused[:, 1 * hs : 2 * hs].sigmoid()
        g_cell = fused[:, 2 * hs : 3 * hs].tanh()
        o_gate = fused[:, 3 * hs : 4 * hs].sigmoid()
        c_new = f_gate * c_prev + i_gate * g_cell
        h_new = o_gate * c_new.tanh()
        return h_new, c_new

    def initial_state(self, batch: int) -> tuple[Tensor, Tensor]:
        zeros = np.zeros((batch, self.hidden_size))
        return Tensor(zeros), Tensor(zeros.copy())


class LSTM(Module):
    """Unrolled (optionally stacked) LSTM over ``(batch, time, input)``."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator,
        num_layers: int = 1,
    ) -> None:
        super().__init__()
        self.num_layers = num_layers
        self.hidden_size = hidden_size
        self.cells: list[LSTMCell] = []
        for i in range(num_layers):
            cell = LSTMCell(input_size if i == 0 else hidden_size, hidden_size, rng)
            setattr(self, f"cell{i}", cell)
            self.cells.append(cell)

    def forward(
        self,
        x: Tensor,
        states: list[tuple[Tensor, Tensor]] | None = None,
    ) -> tuple[Tensor, list[tuple[Tensor, Tensor]]]:
        """Run the full sequence.

        Returns
        -------
        outputs:
            Hidden states of the top layer, shape ``(batch, time, hidden)``.
        states:
            Final ``(h, c)`` per layer, for incremental generation.
        """
        batch, time, _ = x.shape
        if states is None:
            states = [cell.initial_state(batch) for cell in self.cells]
        outputs: list[Tensor] = []
        for t in range(time):
            step = x[:, t, :]
            for layer, cell in enumerate(self.cells):
                h, c = cell(step, states[layer])
                states[layer] = (h, c)
                step = h
            outputs.append(step)
        return stack(outputs, axis=1), states
