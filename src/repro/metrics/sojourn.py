"""Sojourn-time fidelity (Figure 2, Table 6's top rows).

The metric is the distribution over UEs of the *average* sojourn time
each UE spends in a top-level 3GPP state (CONNECTED / IDLE), compared
between real and synthesized traces via max y-distance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..statemachine.base import MachineSpec
from ..statemachine.replay import replay_dataset
from ..trace.dataset import TraceDataset
from .distance import max_y_distance

__all__ = ["SojournComparison", "per_ue_sojourns", "compare_sojourns"]


def per_ue_sojourns(dataset: TraceDataset, spec: MachineSpec) -> dict[str, np.ndarray]:
    """Per-UE mean sojourns for the CONNECTED and IDLE states.

    UEs that never complete a visit to a state are absent from that
    state's array (they contribute no average).
    """
    replay = replay_dataset(dataset.replay_pairs(), spec)
    return {
        spec.connected_state: np.asarray(
            replay.per_ue_mean_sojourns(spec.connected_state)
        ),
        spec.idle_state: np.asarray(replay.per_ue_mean_sojourns(spec.idle_state)),
    }


@dataclass(frozen=True)
class SojournComparison:
    """Max y-distances between real and synthesized sojourn CDFs."""

    connected: float
    idle: float

    @property
    def average(self) -> float:
        """Mean over the two 3GPP states (the paper's summary number)."""
        return 0.5 * (self.connected + self.idle)


def compare_sojourns(
    real: TraceDataset, synthesized: TraceDataset, spec: MachineSpec
) -> SojournComparison:
    """Max y-distance of per-UE mean sojourn CDFs, per state.

    A synthesized trace in which *no* UE ever completes a visit to a
    state has entirely failed to reproduce that state's sojourn
    behaviour; its distance is reported as the maximum (1.0).  An empty
    *real* sample, by contrast, is a harness configuration error and
    raises.
    """
    real_sojourns = per_ue_sojourns(real, spec)
    synth_sojourns = per_ue_sojourns(synthesized, spec)

    def distance(state: str) -> float:
        real_sample = real_sojourns[state]
        if real_sample.size == 0:
            raise ValueError(
                f"real trace has no completed sojourns in {state}; "
                "evaluation trace is too small"
            )
        synth_sample = synth_sojourns[state]
        if synth_sample.size == 0:
            return 1.0
        return max_y_distance(real_sample, synth_sample)

    return SojournComparison(
        connected=distance(spec.connected_state),
        idle=distance(spec.idle_state),
    )
