"""Bootstrap confidence intervals for fidelity distances.

A max y-distance computed from a few hundred UEs carries sampling
noise; deciding whether generator A truly beats generator B (e.g. the
close CPT-GPT vs SMM-20k calls in Table 6) needs an uncertainty
estimate.  This module provides percentile-bootstrap CIs for
:func:`repro.metrics.distance.max_y_distance` and a paired comparison
helper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .distance import max_y_distance

__all__ = ["BootstrapCI", "bootstrap_max_y_distance", "compare_generators"]


@dataclass(frozen=True)
class BootstrapCI:
    """A point estimate with a percentile-bootstrap interval."""

    estimate: float
    low: float
    high: float
    confidence: float

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high

    def overlaps(self, other: "BootstrapCI") -> bool:
        return self.low <= other.high and other.low <= self.high


def bootstrap_max_y_distance(
    real,
    synthesized,
    rng: np.random.Generator,
    num_resamples: int = 500,
    confidence: float = 0.95,
) -> BootstrapCI:
    """Percentile-bootstrap CI for the two-sample max y-distance.

    Both samples are resampled with replacement; the interval covers the
    central ``confidence`` mass of the resampled statistic.
    """
    real = np.asarray(real, dtype=np.float64).ravel()
    synthesized = np.asarray(synthesized, dtype=np.float64).ravel()
    if real.size == 0 or synthesized.size == 0:
        raise ValueError("bootstrap requires non-empty samples")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if num_resamples < 10:
        raise ValueError("num_resamples must be at least 10")

    estimate = max_y_distance(real, synthesized)
    stats = np.empty(num_resamples)
    for i in range(num_resamples):
        real_resample = real[rng.integers(0, real.size, size=real.size)]
        synth_resample = synthesized[
            rng.integers(0, synthesized.size, size=synthesized.size)
        ]
        stats[i] = max_y_distance(real_resample, synth_resample)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(stats, [alpha, 1.0 - alpha])
    return BootstrapCI(
        estimate=estimate, low=float(low), high=float(high), confidence=confidence
    )


def compare_generators(
    real,
    synthesized_a,
    synthesized_b,
    rng: np.random.Generator,
    num_resamples: int = 500,
    confidence: float = 0.95,
) -> dict:
    """Is generator A's distance to real significantly below B's?

    Bootstraps the *difference* ``distance_A - distance_B`` (shared real
    resample per iteration, so the comparison is paired on the real
    side).  A negative interval entirely below zero means A is
    significantly closer to the real distribution.
    """
    real = np.asarray(real, dtype=np.float64).ravel()
    a = np.asarray(synthesized_a, dtype=np.float64).ravel()
    b = np.asarray(synthesized_b, dtype=np.float64).ravel()
    if min(real.size, a.size, b.size) == 0:
        raise ValueError("comparison requires non-empty samples")

    point = max_y_distance(real, a) - max_y_distance(real, b)
    diffs = np.empty(num_resamples)
    for i in range(num_resamples):
        real_resample = real[rng.integers(0, real.size, size=real.size)]
        a_resample = a[rng.integers(0, a.size, size=a.size)]
        b_resample = b[rng.integers(0, b.size, size=b.size)]
        diffs[i] = max_y_distance(real_resample, a_resample) - max_y_distance(
            real_resample, b_resample
        )
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(diffs, [alpha, 1.0 - alpha])
    return {
        "difference": float(point),
        "ci": BootstrapCI(float(point), float(low), float(high), confidence),
        "a_significantly_better": bool(high < 0.0),
        "b_significantly_better": bool(low > 0.0),
    }
