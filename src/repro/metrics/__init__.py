"""``repro.metrics`` — the fidelity metrics of Table 2 plus memorization.

* semantic violations (replay against the 3GPP machine),
* sojourn-time CDF max y-distance,
* event-type breakdown differences,
* flow-length CDF max y-distance,
* n-gram memorization (§5.6),
* checkpoint selection by fidelity ranking (§5.5).
"""

from .bootstrap import BootstrapCI, bootstrap_max_y_distance, compare_generators
from .breakdown import average_breakdown_difference, breakdown_difference
from .distance import cdf_points, empirical_cdf, max_y_distance
from .flowlength import FlowLengthComparison, compare_flow_lengths
from .memorization import NGramIndex, extract_ngrams, ngram_repeat_fraction
from .report import FidelityReport, fidelity_report
from .selection import Checkpoint, select_checkpoint
from .sojourn import SojournComparison, compare_sojourns, per_ue_sojourns
from .violations import ViolationStats, stats_from_replay, violation_stats

__all__ = [
    "max_y_distance",
    "BootstrapCI",
    "bootstrap_max_y_distance",
    "compare_generators",
    "empirical_cdf",
    "cdf_points",
    "ViolationStats",
    "violation_stats",
    "stats_from_replay",
    "SojournComparison",
    "compare_sojourns",
    "per_ue_sojourns",
    "breakdown_difference",
    "average_breakdown_difference",
    "FlowLengthComparison",
    "compare_flow_lengths",
    "extract_ngrams",
    "NGramIndex",
    "ngram_repeat_fraction",
    "Checkpoint",
    "select_checkpoint",
    "FidelityReport",
    "fidelity_report",
]
