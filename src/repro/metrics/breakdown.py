"""Event-type breakdown fidelity (Table 7)."""

from __future__ import annotations

import numpy as np

from ..trace.dataset import TraceDataset

__all__ = ["breakdown_difference", "average_breakdown_difference"]


def breakdown_difference(
    real: TraceDataset, synthesized: TraceDataset
) -> dict[str, float]:
    """Signed per-event-type share difference (synthesized - real).

    Table 7 reports exactly this: each generator's breakdown shown as a
    difference against the real dataset, where lower magnitude is more
    accurate.
    """
    real_shares = real.event_breakdown()
    synth_shares = synthesized.event_breakdown()
    names = sorted(set(real_shares) | set(synth_shares))
    return {
        name: synth_shares.get(name, 0.0) - real_shares.get(name, 0.0)
        for name in names
    }


def average_breakdown_difference(
    real: TraceDataset, synthesized: TraceDataset
) -> float:
    """Mean absolute breakdown difference over event types.

    The "Avg. breakdown diff" row of Table 8.
    """
    diffs = breakdown_difference(real, synthesized)
    if not diffs:
        raise ValueError("cannot compare breakdowns of empty datasets")
    return float(np.mean([abs(v) for v in diffs.values()]))
