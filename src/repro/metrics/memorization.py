"""Data-memorization analysis via multi-modal n-gram repeats (§5.6).

An n-gram is a length-n contiguous subsequence of a stream.  Two n-grams
*repeat* when their event-type sequences are identical and every
corresponding interarrival pair lies within a relative tolerance
``epsilon``: ``(1 - eps) < t_generated / t_real < (1 + eps)``.

Table 11 reports, for n in {5, 10, 20} and eps in {10%, 20%}, the
fraction of generated n-grams that repeat some training n-gram.  Short
repeats are protocol-constrained (HO is followed by TAU; SRV_REQ and
S1_CONN_REL alternate) and expected; repeats at n = 20 would indicate
memorization.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from ..trace.dataset import TraceDataset
from ..trace.schema import Stream

__all__ = ["extract_ngrams", "ngram_repeat_fraction", "NGramIndex"]


def extract_ngrams(stream: Stream, n: int) -> list[tuple[tuple[str, ...], np.ndarray]]:
    """All length-``n`` (event tuple, interarrival vector) windows."""
    if n < 1:
        raise ValueError("n must be >= 1")
    names = stream.event_names()
    interarrivals = stream.interarrivals()
    out = []
    for start in range(0, len(names) - n + 1):
        events = tuple(names[start : start + n])
        iats = interarrivals[start : start + n].copy()
        out.append((events, iats))
    return out


@dataclass
class NGramIndex:
    """Training n-grams grouped by event-type tuple for fast lookup."""

    n: int
    groups: dict[tuple[str, ...], np.ndarray]

    @classmethod
    def build(cls, dataset: TraceDataset, n: int) -> "NGramIndex":
        staging: dict[tuple[str, ...], list[np.ndarray]] = defaultdict(list)
        for stream in dataset:
            for events, iats in extract_ngrams(stream, n):
                staging[events].append(iats)
        groups = {events: np.vstack(rows) for events, rows in staging.items()}
        return cls(n=n, groups=groups)

    def has_repeat(self, events: tuple[str, ...], iats: np.ndarray, epsilon: float) -> bool:
        """Whether any training n-gram repeats this generated n-gram."""
        candidates = self.groups.get(events)
        if candidates is None:
            return False
        return _any_within_tolerance(iats, candidates, epsilon)


def _any_within_tolerance(
    generated: np.ndarray, candidates: np.ndarray, epsilon: float, chunk: int = 4096
) -> bool:
    """Whether some candidate row matches ``generated`` within tolerance.

    The ratio test is undefined at zero; pairs where both sides are
    (near) zero are treated as matching — a zero interarrival carries no
    identifying information — while zero-vs-nonzero never matches.
    """
    lo, hi = 1.0 - epsilon, 1.0 + epsilon
    tiny = 1e-12
    for begin in range(0, candidates.shape[0], chunk):
        block = candidates[begin : begin + chunk]
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = generated[None, :] / block
        both_zero = (np.abs(block) < tiny) & (np.abs(generated[None, :]) < tiny)
        ok = ((ratio > lo) & (ratio < hi)) | both_zero
        if np.any(ok.all(axis=1)):
            return True
    return False


def ngram_repeat_fraction(
    training: TraceDataset,
    generated: TraceDataset,
    n: int,
    epsilon: float,
    max_ngrams: int | None = None,
    seed: int = 0,
) -> float:
    """Fraction of generated n-grams repeated from the training set.

    ``max_ngrams`` caps the number of generated n-grams examined (uniform
    subsample) to bound the quadratic comparison cost on large traces;
    None examines all of them.
    """
    if not 0 < epsilon < 1:
        raise ValueError(f"epsilon must be in (0, 1); got {epsilon}")
    index = NGramIndex.build(training, n)
    pool: list[tuple[tuple[str, ...], np.ndarray]] = []
    for stream in generated:
        pool.extend(extract_ngrams(stream, n))
    if not pool:
        return 0.0
    if max_ngrams is not None and len(pool) > max_ngrams:
        rng = np.random.default_rng(seed)
        chosen = rng.choice(len(pool), size=max_ngrams, replace=False)
        pool = [pool[i] for i in chosen]
    repeats = sum(
        1 for events, iats in pool if index.has_repeat(events, iats, epsilon)
    )
    return repeats / len(pool)
