"""Checkpoint selection by fidelity ranking (§5.5's heuristic).

GAN losses do not track sample quality, so the paper compares training
times fairly by checkpointing every N epochs, computing fidelity metrics
per checkpoint against a validation trace, ranking checkpoints per
metric, summing ranks, keeping the best 20% and picking the earliest —
i.e. "training stops when fidelity metrics show diminishing returns".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Checkpoint", "select_checkpoint"]


@dataclass(frozen=True)
class Checkpoint:
    """A checkpoint's position in training and its fidelity metrics.

    ``metrics`` maps metric name to value, lower = better (all the
    paper's fidelity metrics are "smaller is more faithful").
    """

    index: int
    wall_time_seconds: float
    metrics: dict[str, float]


def select_checkpoint(
    checkpoints: list[Checkpoint], keep_fraction: float = 0.2
) -> Checkpoint:
    """Pick the earliest checkpoint among the best ``keep_fraction``.

    Raises ``ValueError`` on empty input or inconsistent metric keys.
    """
    if not checkpoints:
        raise ValueError("no checkpoints to select from")
    keys = sorted(checkpoints[0].metrics)
    for checkpoint in checkpoints:
        if sorted(checkpoint.metrics) != keys:
            raise ValueError(
                "checkpoints must share the same metric keys; "
                f"expected {keys}, got {sorted(checkpoint.metrics)}"
            )

    # Rank per metric (1 = best), then sum ranks per checkpoint.
    totals = np.zeros(len(checkpoints))
    for key in keys:
        values = np.array([c.metrics[key] for c in checkpoints])
        order = np.argsort(values, kind="stable")
        ranks = np.empty(len(checkpoints))
        ranks[order] = np.arange(1, len(checkpoints) + 1)
        totals += ranks

    keep = max(1, int(np.ceil(len(checkpoints) * keep_fraction)))
    best = np.argsort(totals, kind="stable")[:keep]
    earliest = min(best, key=lambda i: checkpoints[i].index)
    return checkpoints[earliest]
