"""One-call fidelity report: every Table 2 metric for one generator.

Used by the experiment harness (Tables 5-10, Figure 6) and by the
checkpoint-selection heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..statemachine.base import MachineSpec
from ..statemachine.lte import LTE_SPEC
from ..trace.dataset import TraceDataset
from .breakdown import average_breakdown_difference, breakdown_difference
from .flowlength import FlowLengthComparison, compare_flow_lengths
from .sojourn import SojournComparison, compare_sojourns
from .violations import ViolationStats, violation_stats

__all__ = ["FidelityReport", "fidelity_report"]


@dataclass(frozen=True)
class FidelityReport:
    """All fidelity metrics of a synthesized dataset vs the real one."""

    violations: ViolationStats
    sojourn: SojournComparison
    flow_length: FlowLengthComparison
    breakdown_diff: dict[str, float]
    avg_breakdown_diff: float

    def as_flat_dict(self) -> dict[str, float]:
        """Scalar metrics, lower = better (checkpoint-selection input)."""
        return {
            "violation_events": self.violations.event_rate,
            "violation_streams": self.violations.stream_rate,
            "sojourn_connected": self.sojourn.connected,
            "sojourn_idle": self.sojourn.idle,
            "flow_length_all": self.flow_length.all_events,
            "avg_breakdown_diff": self.avg_breakdown_diff,
        }

    def summary(self) -> str:
        """Human-readable multi-line summary (Table 8 / Table 10 style)."""
        lines = [
            f"violations    events {self.violations.event_rate:8.4%}   "
            f"streams {self.violations.stream_rate:7.2%}",
            f"sojourn max-y CONN   {self.sojourn.connected:8.2%}   "
            f"IDLE    {self.sojourn.idle:7.2%}",
            f"flow length   all    {self.flow_length.all_events:8.2%}",
            f"breakdown     avg    {self.avg_breakdown_diff:8.4%}",
        ]
        return "\n".join(lines)


def fidelity_report(
    real: TraceDataset,
    synthesized: TraceDataset,
    spec: MachineSpec = LTE_SPEC,
    dominant_events: tuple[str, ...] = ("SRV_REQ", "S1_CONN_REL"),
) -> FidelityReport:
    """Compute every fidelity metric of ``synthesized`` against ``real``."""
    return FidelityReport(
        violations=violation_stats(synthesized, spec),
        sojourn=compare_sojourns(real, synthesized, spec),
        flow_length=compare_flow_lengths(real, synthesized, dominant_events),
        breakdown_diff=breakdown_difference(real, synthesized),
        avg_breakdown_diff=average_breakdown_difference(real, synthesized),
    )
