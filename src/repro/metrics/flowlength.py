"""Flow-length fidelity (Table 6's bottom rows, Figure 5's right columns).

Flow length is the number of events per stream — for all events, and
separately for the two dominant event types (SRV_REQ, S1_CONN_REL in
4G).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..trace.dataset import TraceDataset
from .distance import max_y_distance

__all__ = ["FlowLengthComparison", "compare_flow_lengths"]


@dataclass(frozen=True)
class FlowLengthComparison:
    """Max y-distances of flow-length CDFs."""

    all_events: float
    per_event: dict[str, float]

    def for_event(self, event: str) -> float:
        if event not in self.per_event:
            raise KeyError(
                f"no flow-length comparison for {event!r}; "
                f"have {sorted(self.per_event)}"
            )
        return self.per_event[event]


def compare_flow_lengths(
    real: TraceDataset,
    synthesized: TraceDataset,
    events: tuple[str, ...] = ("SRV_REQ", "S1_CONN_REL"),
) -> FlowLengthComparison:
    """Max y-distance of flow-length CDFs (all events + each in ``events``)."""
    all_distance = max_y_distance(
        real.flow_lengths().astype(float), synthesized.flow_lengths().astype(float)
    )
    per_event = {
        event: max_y_distance(
            real.flow_lengths(event).astype(float),
            synthesized.flow_lengths(event).astype(float),
        )
        for event in events
    }
    return FlowLengthComparison(all_events=all_distance, per_event=per_event)
