"""Semantic-violation metrics (Tables 3 and 5)."""

from __future__ import annotations

from dataclasses import dataclass

from ..statemachine.base import MachineSpec
from ..statemachine.replay import DatasetReplay, replay_dataset
from ..trace.dataset import TraceDataset

__all__ = ["ViolationStats", "violation_stats"]


@dataclass(frozen=True)
class ViolationStats:
    """Violation rates of a synthesized dataset.

    ``event_rate`` — fraction of replayed events violating a transition;
    ``stream_rate`` — fraction of streams with at least one violation;
    ``top_patterns`` — the most frequent (state label, event) pairs with
    their share of replayed events (Table 3's bottom rows).
    """

    event_rate: float
    stream_rate: float
    top_patterns: tuple[tuple[tuple[str, str], float], ...]

    def __str__(self) -> str:
        lines = [
            f"event violations: {self.event_rate:.4%}",
            f"streams with >=1 violation: {self.stream_rate:.2%}",
        ]
        for (state, event), share in self.top_patterns:
            lines.append(f"  {state}, {event}: {share:.4%}")
        return "\n".join(lines)


def violation_stats(
    dataset: TraceDataset, spec: MachineSpec, top_k: int = 3
) -> ViolationStats:
    """Replay ``dataset`` against ``spec`` and summarize violations."""
    replay = replay_dataset(dataset.replay_pairs(), spec)
    return stats_from_replay(replay, top_k)


def stats_from_replay(replay: DatasetReplay, top_k: int = 3) -> ViolationStats:
    """Summarize an existing :class:`DatasetReplay` (avoids re-replaying)."""
    return ViolationStats(
        event_rate=replay.event_violation_rate,
        stream_rate=replay.stream_violation_rate,
        top_patterns=tuple(replay.top_violation_patterns(top_k)),
    )
