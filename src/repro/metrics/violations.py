"""Semantic-violation metrics (Tables 3 and 5).

Since the streaming fidelity-gate subsystem landed, the default engine
is the vectorized :class:`~repro.validate.oracle.TransitionOracle`
(dense transition-lookup tables, batch replay) — byte-identical rates
to the legacy one-machine-per-stream
:class:`~repro.statemachine.replay.DatasetReplay` path at a fraction of
the cost (see ``BENCH_validate.json``).  The legacy engine remains
reachable via ``engine="replay"`` (deprecated) and through
:func:`stats_from_replay` for callers that already hold a replay.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from ..statemachine.base import MachineSpec
from ..statemachine.replay import DatasetReplay, replay_dataset
from ..trace.dataset import TraceDataset

__all__ = ["ViolationStats", "violation_stats", "stats_from_replay"]


@dataclass(frozen=True)
class ViolationStats:
    """Violation rates of a synthesized dataset.

    ``event_rate`` — fraction of replayed events violating a transition;
    ``stream_rate`` — fraction of streams with at least one violation;
    ``top_patterns`` — the most frequent (state label, event) pairs with
    their share of replayed events (Table 3's bottom rows).
    """

    event_rate: float
    stream_rate: float
    top_patterns: tuple[tuple[tuple[str, str], float], ...]

    def __str__(self) -> str:
        lines = [
            f"event violations: {self.event_rate:.4%}",
            f"streams with >=1 violation: {self.stream_rate:.2%}",
        ]
        for (state, event), share in self.top_patterns:
            lines.append(f"  {state}, {event}: {share:.4%}")
        return "\n".join(lines)


def violation_stats(
    dataset: TraceDataset,
    spec: MachineSpec,
    top_k: int = 3,
    *,
    engine: str = "oracle",
) -> ViolationStats:
    """Replay ``dataset`` against ``spec`` and summarize violations.

    ``engine="oracle"`` (default) runs the vectorized transition oracle;
    ``engine="replay"`` forces the legacy per-event Python replay
    (deprecated — kept for parity pinning and debugging).  Both engines
    produce identical rates and pattern tables.
    """
    if engine == "oracle":
        from ..validate.oracle import TransitionOracle

        oracle = TransitionOracle.for_spec(spec)
        tally = oracle.replay_dataset(dataset)
        return ViolationStats(
            event_rate=tally.event_violation_rate,
            stream_rate=tally.stream_violation_rate,
            top_patterns=tuple(oracle.top_patterns(tally, top_k)),
        )
    if engine == "replay":
        warnings.warn(
            "violation_stats(engine='replay') is deprecated; the oracle "
            "engine produces identical rates at >=10x the speed",
            DeprecationWarning,
            stacklevel=2,
        )
        replay = replay_dataset(dataset.replay_pairs(), spec)
        return stats_from_replay(replay, top_k)
    raise ValueError(f"unknown engine {engine!r}; expected 'oracle' or 'replay'")


def stats_from_replay(replay: DatasetReplay, top_k: int = 3) -> ViolationStats:
    """Summarize an existing :class:`DatasetReplay` (avoids re-replaying)."""
    return ViolationStats(
        event_rate=replay.event_violation_rate,
        stream_rate=replay.stream_violation_rate,
        top_patterns=tuple(replay.top_violation_patterns(top_k)),
    )
