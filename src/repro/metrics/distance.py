"""Distribution distances: the paper's "maximum y-distance" between CDFs.

The max y-distance between the empirical CDFs of two samples is the
two-sample Kolmogorov-Smirnov statistic; Tables 6, 8 and 10 report it in
percent.  ``cdf_points`` supports regenerating the CDF figures.
"""

from __future__ import annotations

import numpy as np

__all__ = ["max_y_distance", "cdf_points", "empirical_cdf"]


def max_y_distance(sample_a, sample_b) -> float:
    """Two-sample KS statistic (max vertical CDF gap), in [0, 1].

    Raises ``ValueError`` on empty inputs: an empty sample has no CDF,
    and silently returning 0 or 1 would corrupt fidelity tables.
    """
    a = np.sort(np.asarray(sample_a, dtype=np.float64).ravel())
    b = np.sort(np.asarray(sample_b, dtype=np.float64).ravel())
    if a.size == 0 or b.size == 0:
        raise ValueError("max_y_distance requires non-empty samples")
    support = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, support, side="right") / a.size
    cdf_b = np.searchsorted(b, support, side="right") / b.size
    return float(np.abs(cdf_a - cdf_b).max())


def empirical_cdf(sample) -> tuple[np.ndarray, np.ndarray]:
    """Sorted values and their empirical CDF heights."""
    values = np.sort(np.asarray(sample, dtype=np.float64).ravel())
    if values.size == 0:
        raise ValueError("empirical_cdf requires a non-empty sample")
    heights = np.arange(1, values.size + 1) / values.size
    return values, heights


def cdf_points(sample, grid=None) -> tuple[np.ndarray, np.ndarray]:
    """CDF evaluated on a grid (log-spaced by default), for figures.

    Returns ``(grid, cdf)`` where ``cdf[i]`` is the fraction of the
    sample ``<= grid[i]``.
    """
    values = np.sort(np.asarray(sample, dtype=np.float64).ravel())
    if values.size == 0:
        raise ValueError("cdf_points requires a non-empty sample")
    if grid is None:
        low = max(values.min(), 1e-3)
        high = max(values.max(), low * 1.001)
        grid = np.geomspace(low, high, 64)
    grid = np.asarray(grid, dtype=np.float64)
    cdf = np.searchsorted(values, grid, side="right") / values.size
    return grid, cdf
