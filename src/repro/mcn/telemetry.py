"""Sampling-based control-plane telemetry (§2.2's second use case).

Real-time network management monitors traffic with bounded memory.  The
paper argues accurate control-plane models help pick e.g. a sampling
rate for telemetry collection.  This module provides:

* :class:`CountMinSketch` — the standard bounded-memory frequency
  sketch, for per-UE event counting;
* :class:`SampledBreakdownMonitor` — uniform event sampling that
  estimates the event-type breakdown;
* :func:`calibrate_sampling_rate` — the model-driven workflow: find the
  smallest sampling rate whose estimated breakdown stays within a target
  error on a *synthesized* trace, then apply it to live traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..trace.dataset import TraceDataset

__all__ = ["CountMinSketch", "SampledBreakdownMonitor", "calibrate_sampling_rate"]


class CountMinSketch:
    """Count-min sketch over string keys.

    ``depth`` independent hash rows of ``width`` counters; point queries
    return the row-minimum, an overestimate with error bounded by
    ``total / width`` per row with high probability.
    """

    def __init__(self, width: int = 1024, depth: int = 4, seed: int = 0) -> None:
        if width < 1 or depth < 1:
            raise ValueError("width and depth must be positive")
        self.width = width
        self.depth = depth
        self._table = np.zeros((depth, width), dtype=np.int64)
        rng = np.random.default_rng(seed)
        # Random odd multipliers for a simple multiply-shift hash family.
        self._salts = rng.integers(1, 2**61 - 1, size=depth) | 1

    def _indices(self, key: str) -> np.ndarray:
        base = hash(key) & 0x7FFFFFFFFFFFFFFF
        return (base * self._salts) % self.width

    def add(self, key: str, count: int = 1) -> None:
        rows = np.arange(self.depth)
        self._table[rows, self._indices(key)] += count

    def query(self, key: str) -> int:
        rows = np.arange(self.depth)
        return int(self._table[rows, self._indices(key)].min())

    @property
    def memory_bytes(self) -> int:
        return self._table.nbytes

    def heavy_hitters(
        self, keys: list[str], threshold: int
    ) -> list[tuple[str, int]]:
        """Keys whose estimated count is at least ``threshold``."""
        hits = [(key, self.query(key)) for key in keys]
        return [(k, c) for k, c in hits if c >= threshold]


@dataclass
class SampledBreakdownMonitor:
    """Uniform event sampling estimator of the event-type breakdown."""

    sampling_rate: float
    seed: int = 0

    def estimate(self, dataset: TraceDataset) -> dict[str, float]:
        """Estimated event-type shares from a ``sampling_rate`` subsample."""
        if not 0 < self.sampling_rate <= 1:
            raise ValueError("sampling_rate must be in (0, 1]")
        rng = np.random.default_rng(self.seed)
        counts: dict[str, int] = {}
        total = 0
        for stream in dataset:
            for event in stream:
                if rng.random() <= self.sampling_rate:
                    counts[event.event] = counts.get(event.event, 0) + 1
                    total += 1
        if total == 0:
            return {}
        return {name: count / total for name, count in sorted(counts.items())}

    def max_error(self, dataset: TraceDataset) -> float:
        """Largest absolute share error vs the full-trace breakdown."""
        truth = dataset.event_breakdown()
        estimate = self.estimate(dataset)
        names = set(truth) | set(estimate)
        return max(
            abs(truth.get(name, 0.0) - estimate.get(name, 0.0)) for name in names
        )


def calibrate_sampling_rate(
    synthesized: TraceDataset,
    target_error: float,
    rates: tuple[float, ...] = (0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5),
    seed: int = 0,
) -> float:
    """Smallest rate whose breakdown error on ``synthesized`` meets target.

    This is the model-driven calibration the paper motivates: tune the
    monitor against high-fidelity synthetic traffic before deployment.
    Returns 1.0 when no candidate rate meets the target.
    """
    if target_error <= 0:
        raise ValueError("target_error must be positive")
    for rate in sorted(rates):
        monitor = SampledBreakdownMonitor(sampling_rate=rate, seed=seed)
        if monitor.max_error(synthesized) <= target_error:
            return rate
    return 1.0
