"""Autoscaling evaluation over time-varying control-plane load.

§2.2 / C5: accurately modelling traffic drift "enables evaluating
autoscaling capabilities of MCN implementations".  This module replays a
workload in fixed windows, estimates per-window offered load, and drives
a target-utilization autoscaler over the window sequence — the
experiment a CoreKube-style elastic core would run against a synthesized
trace.

The window pass is single-sweep: a materialized
:class:`~repro.trace.TraceDataset` is flattened and sorted first, while
an already time-ordered event iterable (the streaming merged timeline of
:class:`repro.workload.Workload`) is consumed as it arrives — per-window
demand accumulates in O(#windows) memory no matter how many events flow
through.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from ..trace.dataset import TraceDataset
from .nf import LTE_COSTS, ServiceCostModel

__all__ = ["AutoscalePolicy", "AutoscaleTrace", "simulate_autoscaling"]


@dataclass(frozen=True)
class AutoscalePolicy:
    """Target-utilization scaler with bounded step size.

    Each window the policy computes required workers =
    ``offered_load / target_utilization`` and moves toward it by at most
    ``max_step`` workers, clamped to [min_workers, max_workers].
    Parameters are validated at construction, so an invalid policy fails
    before the first window, not on the Nth.
    """

    target_utilization: float = 0.6
    min_workers: int = 1
    max_workers: int = 64
    max_step: int = 4

    def __post_init__(self) -> None:
        if not 0 < self.target_utilization <= 1:
            raise ValueError("target_utilization must be in (0, 1]")
        if self.min_workers < 1:
            raise ValueError("min_workers must be >= 1")
        if self.max_workers < self.min_workers:
            raise ValueError("max_workers must be >= min_workers")
        if self.max_step < 1:
            raise ValueError("max_step must be >= 1")

    def next_workers(self, current: int, offered_load: float) -> int:
        required = int(np.ceil(offered_load / self.target_utilization))
        required = max(self.min_workers, min(self.max_workers, required))
        if required > current:
            return min(current + self.max_step, required)
        if required < current:
            return max(current - self.max_step, required)
        return current


@dataclass
class AutoscaleTrace:
    """Per-window record of the autoscaling run."""

    window_seconds: float
    offered_load: list[float] = field(default_factory=list)  # worker-equivalents
    workers: list[int] = field(default_factory=list)
    utilization: list[float] = field(default_factory=list)

    @property
    def scaling_actions(self) -> int:
        """Number of windows where the worker count changed."""
        return sum(
            1 for a, b in zip(self.workers, self.workers[1:]) if a != b
        )

    @property
    def peak_workers(self) -> int:
        return max(self.workers) if self.workers else 0

    @property
    def mean_utilization(self) -> float:
        if not self.utilization:
            return 0.0
        return float(np.mean(self.utilization))


def _timed_events(workload: TraceDataset | Iterable) -> Iterator[tuple[float, str]]:
    """``(timestamp, event)`` in time order, lazily for ordered iterables."""
    if isinstance(workload, TraceDataset):
        arrivals = sorted(
            (event.timestamp, event.event)
            for stream in workload
            for event in stream
        )
        return iter(arrivals)

    def _adapt() -> Iterator[tuple[float, str]]:
        for item in workload:
            # TimelineEvent (t, cohort, ue_id, event) or (t, ue_id, event).
            yield item[0], item[-1]

    return _adapt()


def simulate_autoscaling(
    workload: TraceDataset | Iterable,
    policy: AutoscalePolicy,
    window_seconds: float = 300.0,
    cost_model: ServiceCostModel = LTE_COSTS,
    initial_workers: int = 2,
) -> AutoscaleTrace:
    """Drive ``policy`` over ``workload`` replayed in fixed windows.

    Offered load per window is the total mean service demand divided by
    the window length — i.e. the number of fully-busy workers the window
    requires.  Windows with no events (gaps in the workload) still
    appear, with zero offered load.
    """
    if window_seconds <= 0:
        raise ValueError("window_seconds must be positive")
    trace = AutoscaleTrace(window_seconds=window_seconds)

    demands: list[float] = []
    start: float | None = None
    for timestamp, event in _timed_events(workload):
        if start is None:
            start = timestamp
        slot = int((timestamp - start) // window_seconds)
        if slot < 0:
            raise ValueError(
                f"event at t={timestamp} precedes the first event (t={start}); "
                "streamed workloads must be time-ordered"
            )
        while len(demands) <= slot:
            demands.append(0.0)
        demands[slot] += cost_model.mean_cost(event) / 1000.0
    if start is None:
        return trace

    workers = initial_workers
    for demand_seconds in demands:
        offered = demand_seconds / window_seconds
        workers = policy.next_workers(workers, offered)
        trace.offered_load.append(float(offered))
        trace.workers.append(workers)
        trace.utilization.append(float(min(offered / workers, 1.0)))
    return trace
