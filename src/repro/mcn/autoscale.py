"""Autoscaling evaluation over time-varying control-plane load.

§2.2 / C5: accurately modelling traffic drift "enables evaluating
autoscaling capabilities of MCN implementations".  This module replays a
workload in fixed windows, estimates per-window offered load, and drives
a target-utilization autoscaler over the window sequence — the
experiment a CoreKube-style elastic core would run against a synthesized
trace.

The window pass is single-sweep: a materialized
:class:`~repro.trace.TraceDataset` is flattened and sorted first, while
an already time-ordered event iterable (the streaming merged timeline of
:class:`repro.workload.Workload`) is consumed as it arrives — per-window
demand accumulates in O(#windows) memory no matter how many events flow
through.

With a :class:`~repro.topology.graph.NetworkTopology`, cell-annotated
events additionally accumulate into **per-region** demand series (one
sub-trace per regional core, sharing the global window origin), so a
regional brownout or a commute wave shows up as that region's own
scaling trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from ..core.chunks import MergedChunk
from ..trace.dataset import TraceDataset
from .nf import LTE_COSTS, ServiceCostModel

__all__ = ["AutoscalePolicy", "AutoscaleTrace", "simulate_autoscaling"]


@dataclass(frozen=True)
class AutoscalePolicy:
    """Target-utilization scaler with bounded step size.

    Each window the policy computes required workers =
    ``offered_load / target_utilization`` and moves toward it by at most
    ``max_step`` workers, clamped to [min_workers, max_workers].
    Parameters are validated at construction, so an invalid policy fails
    before the first window, not on the Nth.
    """

    target_utilization: float = 0.6
    min_workers: int = 1
    max_workers: int = 64
    max_step: int = 4

    def __post_init__(self) -> None:
        if not 0 < self.target_utilization <= 1:
            raise ValueError("target_utilization must be in (0, 1]")
        if self.min_workers < 1:
            raise ValueError("min_workers must be >= 1")
        if self.max_workers < self.min_workers:
            raise ValueError("max_workers must be >= min_workers")
        if self.max_step < 1:
            raise ValueError("max_step must be >= 1")

    def next_workers(self, current: int, offered_load: float) -> int:
        required = int(np.ceil(offered_load / self.target_utilization))
        required = max(self.min_workers, min(self.max_workers, required))
        if required > current:
            return min(current + self.max_step, required)
        if required < current:
            return max(current - self.max_step, required)
        return current


@dataclass
class AutoscaleTrace:
    """Per-window record of the autoscaling run.

    ``per_region`` (topology runs only) holds one sub-trace per regional
    core; every sub-trace shares the global window origin, so window
    ``i`` covers the same simulated-time span in every region.
    """

    window_seconds: float
    offered_load: list[float] = field(default_factory=list)  # worker-equivalents
    workers: list[int] = field(default_factory=list)
    utilization: list[float] = field(default_factory=list)
    per_region: "dict[str, AutoscaleTrace]" = field(default_factory=dict)

    @property
    def scaling_actions(self) -> int:
        """Number of windows where the worker count changed."""
        return sum(
            1 for a, b in zip(self.workers, self.workers[1:]) if a != b
        )

    @property
    def peak_workers(self) -> int:
        return max(self.workers) if self.workers else 0

    @property
    def mean_utilization(self) -> float:
        if not self.utilization:
            return 0.0
        return float(np.mean(self.utilization))

    def region(self, name: str) -> "AutoscaleTrace":
        """The per-region sub-trace for ``name`` (topology runs only)."""
        if name not in self.per_region:
            raise KeyError(
                f"no region {name!r} in this trace; "
                f"have {sorted(self.per_region)}"
            )
        return self.per_region[name]


def _timed_events(
    workload: TraceDataset | Iterable,
) -> Iterator[tuple[float, str, str | None]]:
    """``(timestamp, event, cell)`` in time order, lazily for iterables."""
    if isinstance(workload, TraceDataset):
        arrivals = sorted(
            (event.timestamp, event.event)
            for stream in workload
            for event in stream
        )
        return ((t, event, None) for t, event in arrivals)

    def _adapt() -> Iterator[tuple[float, str, str | None]]:
        for item in workload:
            # CellTimelineEvent (t, cohort, ue, event, cell),
            # TimelineEvent (t, cohort, ue, event), or (t, ue, event).
            if len(item) >= 5:
                yield item[0], item[3], item[4]
            elif len(item) == 4:
                yield item[0], item[3], None
            else:
                yield item[0], item[2], None

    return _adapt()


def _run_policy(
    trace: AutoscaleTrace,
    demands: list[float],
    policy: AutoscalePolicy,
    window_seconds: float,
    initial_workers: int,
) -> None:
    workers = initial_workers
    for demand_seconds in demands:
        offered = demand_seconds / window_seconds
        workers = policy.next_workers(workers, offered)
        trace.offered_load.append(float(offered))
        trace.workers.append(workers)
        trace.utilization.append(float(min(offered / workers, 1.0)))


def simulate_autoscaling(
    workload: TraceDataset | Iterable,
    policy: AutoscalePolicy,
    window_seconds: float = 300.0,
    cost_model: ServiceCostModel = LTE_COSTS,
    initial_workers: int = 2,
    topology=None,
) -> AutoscaleTrace:
    """Drive ``policy`` over ``workload`` replayed in fixed windows.

    Offered load per window is the total mean service demand divided by
    the window length — i.e. the number of fully-busy workers the window
    requires.  Windows with no events (gaps in the workload) still
    appear, with zero offered load.

    With ``topology`` (a :class:`~repro.topology.graph.NetworkTopology`)
    each cell-annotated event also accumulates into its region's demand
    series; the returned trace's ``per_region`` maps every region to its
    own policy run (same policy, same initial workers).
    """
    if window_seconds <= 0:
        raise ValueError("window_seconds must be positive")
    trace = AutoscaleTrace(window_seconds=window_seconds)

    region_of_cell: dict[str, str] = {}
    region_demands: dict[str, list[float]] = {}
    if topology is not None:
        region_of_cell = {cell.name: cell.region for cell in topology.cells}
        region_demands = {region: [] for region in topology.regions}

    demands: list[float] = []
    start: float | None = None

    def _fold_event(timestamp: float, event: str, cell: "str | None") -> None:
        nonlocal start
        if start is None:
            start = timestamp
        slot = int((timestamp - start) // window_seconds)
        if slot < 0:
            raise ValueError(
                f"event at t={timestamp} precedes the first event (t={start}); "
                "streamed workloads must be time-ordered"
            )
        while len(demands) <= slot:
            demands.append(0.0)
        cost_s = cost_model.mean_cost(event) / 1000.0
        demands[slot] += cost_s
        region = region_of_cell.get(cell)
        if region is not None:
            series = region_demands[region]
            while len(series) <= slot:
                series.append(0.0)
            series[slot] += cost_s

    # Per-MergeTables caches for the columnar fold (tables are
    # append-only; a grown event-name table invalidates the cost row).
    fold_tables = None
    fold_costs: "np.ndarray | None" = None
    cell_tables = None
    region_cells: dict[str, np.ndarray] = {}

    def _fold_chunk(chunk: MergedChunk) -> None:
        nonlocal start, fold_tables, fold_costs, cell_tables, region_cells
        if chunk.num_events == 0:
            return
        if start is None:
            start = float(chunk.times[0])
        slots = ((chunk.times - start) // window_seconds).astype(np.int64)
        if slots[0] < 0:
            raise ValueError(
                f"event at t={float(chunk.times[0])} precedes the first "
                f"event (t={start}); "
                "streamed workloads must be time-ordered"
            )
        tables = chunk.tables
        names = tables.event_names
        if fold_tables is not tables or fold_costs.size != len(names):
            fold_costs = np.array(
                [cost_model.mean_cost(name) / 1000.0 for name in names]
            )
            fold_tables = tables
        costs = fold_costs[chunk.events]
        last = int(slots[-1])
        while len(demands) <= last:
            demands.append(0.0)
        # np.add.at accumulates in element order — bit-identical floats
        # to the per-event `demands[slot] += cost` walk.
        window = np.asarray(demands, dtype=np.float64)
        np.add.at(window, slots, costs)
        demands[:] = window.tolist()
        if chunk.cells is None or not region_demands:
            return
        if cell_tables is not tables:
            by_region: dict[str, list[int]] = {}
            for code, name in enumerate(tables.cell_names):
                region = region_of_cell.get(name)
                if region is not None:
                    by_region.setdefault(region, []).append(code)
            region_cells = {
                region: np.asarray(codes, dtype=np.int16)
                for region, codes in by_region.items()
            }
            cell_tables = tables
        for region, codes in region_cells.items():
            mask = np.isin(chunk.cells, codes)
            if not mask.any():
                continue
            series = region_demands[region]
            region_slots = slots[mask]
            while len(series) <= int(region_slots[-1]):
                series.append(0.0)
            window = np.asarray(series, dtype=np.float64)
            np.add.at(window, region_slots, costs[mask])
            series[:] = window.tolist()

    if isinstance(workload, TraceDataset):
        for timestamp, event, cell in _timed_events(workload):
            _fold_event(timestamp, event, cell)
    else:
        for item in workload:
            # MergedChunk is itself a (7-field) NamedTuple — dispatch on
            # type before any len() shape sniffing.
            if isinstance(item, MergedChunk):
                _fold_chunk(item)
            elif len(item) >= 5:
                _fold_event(item[0], item[3], item[4])
            elif len(item) == 4:
                _fold_event(item[0], item[3], None)
            else:
                _fold_event(item[0], item[2], None)
    if start is None:
        return trace

    _run_policy(trace, demands, policy, window_seconds, initial_workers)
    for region, series in region_demands.items():
        # Pad to the global window count: every region spans the same
        # simulated time, tail windows included.
        while len(series) < len(demands):
            series.append(0.0)
        sub = AutoscaleTrace(window_seconds=window_seconds)
        _run_policy(sub, series, policy, window_seconds, initial_workers)
        trace.per_region[region] = sub
    return trace
