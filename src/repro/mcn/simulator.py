"""Event-driven MCN control-plane simulator.

Consumes a (real or synthesized) workload and replays it against a
multi-worker control-plane anchor (MME/AMF) modeled as a c-server FIFO
queue.  Reports the quantities MCN design studies care about (§2.2):
per-event latency percentiles, worker utilization, sustained
throughput, and the peak number of concurrent UE contexts a stateful
MCN must hold (driven by sojourn times — the paper's C3 motivation).

Two ingestion paths feed the same discrete-event loop:

* a materialized :class:`~repro.trace.TraceDataset`, whose streams are
  flattened and sorted by ``(timestamp, ue_id)`` (stable, so a UE's
  within-stream order survives ties), or
* any *already time-ordered* iterable of events — in particular the
  streaming merged timeline of :class:`repro.workload.Workload` — which
  is consumed one event at a time, so population-scale workloads never
  materialize.  Items may be
  :class:`~repro.workload.timeline.TimelineEvent` tuples (UE identity is
  ``(cohort, ue_id)``), cell-annotated
  :class:`~repro.workload.timeline.CellTimelineEvent` tuples, or plain
  ``(timestamp, ue_id, event)`` triples.

With a :class:`~repro.topology.graph.NetworkTopology` the anchor splits
into **per-region NF pools**: every cell-annotated arrival routes to the
regional core (AMF/MME pool) owning its cell, each region runs its own
c-server queue, and the report carries a per-region breakdown plus
per-cell connect counts (the mass-re-registration surge metric for
chaos scenarios).  A :class:`~repro.topology.chaos.ChaosSchedule`
inflates a degraded region's service times by ``1 / capacity_factor``
for the scheduled window, so regional brownouts surface in that
region's latency percentiles without touching the others.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Iterator

import numpy as np

from ..core.chunks import MergedChunk
from ..obs import (
    enabled as _obs_enabled,
    metrics as _obs_metrics,
    span as _span,
)
from ..trace.dataset import TraceDataset
from .nf import LTE_COSTS, ServiceCostModel

__all__ = ["MCNSimulator", "SimulationReport", "SimulationRun"]

_CONNECTING_EVENTS = {"ATCH", "SRV_REQ", "REGISTER", "HO"}
_RELEASING_EVENTS = {"S1_CONN_REL", "AN_REL", "DTCH", "DEREGISTER"}


@dataclass
class SimulationReport:
    """Outcome of one simulation run.

    ``per_region`` (topology runs only) maps each region name to the
    report of that region's own NF pool; ``cell_connects`` counts
    connection-establishing events (ATCH/REGISTER/SRV_REQ/HO) per cell —
    the observable a cell-kill chaos scenario moves: the dead cell's
    counts collapse while its neighbors surge.
    """

    num_events: int
    duration_seconds: float
    latencies_ms: dict[str, np.ndarray]
    utilization: float
    peak_connected_contexts: int
    dropped_events: int
    per_region: "dict[str, SimulationReport] | None" = None
    cell_connects: "dict[str, int] | None" = None

    @property
    def throughput_eps(self) -> float:
        """Processed events per second of simulated time."""
        if self.duration_seconds <= 0:
            return 0.0
        return self.num_events / self.duration_seconds

    def latency_percentile(self, percentile: float, event: str | None = None) -> float:
        """Latency percentile in ms (queueing + service), overall or per event."""
        if event is None:
            pools = [v for v in self.latencies_ms.values() if v.size]
            if not pools:
                raise ValueError("no events were processed")
            values = np.concatenate(pools)
        else:
            values = self.latencies_ms.get(event)
            if values is None or values.size == 0:
                raise ValueError(f"no processed events of type {event!r}")
        return float(np.percentile(values, percentile))

    def mean_latency(self) -> float:
        pools = [v for v in self.latencies_ms.values() if v.size]
        if not pools:
            raise ValueError("no events were processed")
        return float(np.concatenate(pools).mean())

    def region(self, name: str) -> "SimulationReport":
        """The per-region report for ``name`` (topology runs only)."""
        if not self.per_region or name not in self.per_region:
            raise KeyError(
                f"no region {name!r} in this report; "
                f"have {sorted(self.per_region or ())}"
            )
        return self.per_region[name]


class _AnchorPool:
    """One c-server FIFO queue: a regional NF pool (or the global one)."""

    def __init__(self, workers: int, queue_limit: int | None) -> None:
        self.workers = workers
        self.queue_limit = queue_limit
        self._free_at: list[float] = []
        self._in_system: list[float] = []
        self.latencies: dict[str, list[float]] = {}
        self.busy_seconds = 0.0
        self.dropped = 0
        self.processed = 0
        self.connected: set[Hashable] = set()
        self.peak_connected = 0
        self.cell_connects: dict[str, int] = {}
        self.first: float | None = None
        self.last = 0.0
        # Optional per-region observability histograms (queue wait /
        # service time, ms) attached by SimulationRun when obs is on.
        self.obs_wait = None
        self.obs_service = None

    def offer(
        self,
        timestamp: float,
        ue_key: Hashable,
        event: str,
        service_s: float,
        cell: str | None,
    ) -> bool:
        """Feed one arrival; returns False when the queue dropped it."""
        if self.first is None:
            self.first = timestamp
            self._free_at = [timestamp] * self.workers
        self.last = timestamp
        while self._in_system and self._in_system[0] <= timestamp:
            heapq.heappop(self._in_system)
        if self.queue_limit is not None:
            waiting = max(0, len(self._in_system) - self.workers)
            if waiting >= self.queue_limit:
                self.dropped += 1
                return False
        earliest_free = heapq.heappop(self._free_at)
        start = max(timestamp, earliest_free)
        finish = start + service_s
        heapq.heappush(self._free_at, finish)
        heapq.heappush(self._in_system, finish)
        self.latencies.setdefault(event, []).append((finish - timestamp) * 1000.0)
        self.busy_seconds += service_s
        self.processed += 1
        if self.obs_wait is not None:
            self.obs_wait.observe((start - timestamp) * 1000.0)
            self.obs_service.observe(service_s * 1000.0)

        # Stateful context tracking: how many UEs this pool must hold
        # in CONNECTED state simultaneously.
        if event in _CONNECTING_EVENTS:
            self.connected.add(ue_key)
            self.peak_connected = max(self.peak_connected, len(self.connected))
            if cell is not None:
                self.cell_connects[cell] = self.cell_connects.get(cell, 0) + 1
        elif event in _RELEASING_EVENTS:
            self.connected.discard(ue_key)
        return True

    def report(self) -> SimulationReport:
        duration = (self.last - self.first) if self.first is not None else 0.0
        capacity_seconds = max(duration, 1e-9) * self.workers
        return SimulationReport(
            num_events=self.processed,
            duration_seconds=duration,
            latencies_ms={k: np.asarray(v) for k, v in self.latencies.items()},
            utilization=min(self.busy_seconds / capacity_seconds, 1.0),
            peak_connected_contexts=self.peak_connected,
            dropped_events=self.dropped,
            cell_connects=self.cell_connects or None,
        )


@dataclass
class MCNSimulator:
    """c-server FIFO control-plane anchor.

    Parameters
    ----------
    workers:
        Number of parallel control-plane workers.  With a topology the
        count splits across regional pools (near-evenly, at least one
        worker each) unless ``region_workers`` pins explicit counts.
    cost_model:
        Per-event-type service times.
    queue_limit:
        Maximum number of events waiting; arrivals beyond it are dropped
        (counted in the report).  With a topology the limit applies per
        regional pool.  None = unbounded.
    topology:
        A :class:`~repro.topology.graph.NetworkTopology`; when given,
        cell-annotated arrivals route to per-region NF pools and the
        report gains ``per_region`` / ``cell_connects``.
    chaos:
        A :class:`~repro.topology.chaos.ChaosSchedule` whose
        region-degrade windows inflate that region's service times.
    region_workers:
        Explicit per-region worker counts (region name → workers),
        overriding the even split.
    """

    workers: int = 4
    cost_model: ServiceCostModel = field(default_factory=lambda: LTE_COSTS)
    queue_limit: int | None = None
    seed: int = 0
    topology: object | None = None
    chaos: object | None = None
    region_workers: dict[str, int] | None = None

    def start(self, *, tee=None) -> "SimulationRun":
        """Open an incremental ingestion session.

        The always-on service path: instead of handing :meth:`run` a
        finite iterable, callers :meth:`~SimulationRun.offer` events one
        at a time as the live timeline releases them and
        :meth:`~SimulationRun.finalize` whenever a report is needed —
        the same discrete-event loop, rolled by the caller.
        """
        return SimulationRun(self, tee=tee)

    def run(
        self, workload: TraceDataset | Iterable, *, tee=None
    ) -> SimulationReport:
        """Replay every event of ``workload`` through the queue(s).

        ``workload`` is a :class:`TraceDataset` (sorted here) or an
        iterable of time-ordered events (consumed lazily: constant
        memory beyond the per-event latency records in the report).

        ``tee`` is an optional validating tap: a callable (or an object
        with ``observe_event``, e.g.
        :class:`~repro.validate.oracle.OracleValidator`) invoked as
        ``tee(timestamp, ue_key, event)`` for every *offered* arrival —
        before queue-limit drops, so conformance is judged on the
        traffic the generator produced, not on what survived the queue.

        Iterables may interleave columnar
        :class:`~repro.core.chunks.MergedChunk` batches (the hot path —
        ingested without per-event decode) with per-event tuples.
        """
        session = self.start(tee=tee)
        with _span("simulate.run") as sp:
            if isinstance(workload, TraceDataset):
                for timestamp, ue_key, event, cell in _arrivals(workload):
                    session.offer_arrival(timestamp, ue_key, event, cell)
            else:
                for item in workload:
                    if isinstance(item, MergedChunk):
                        session.offer_chunk(item)
                    else:
                        session.offer(item)
            sp.add_events(session.offered)
        return session.finalize()

    # ------------------------------------------------------------------
    def _build_pools(self):
        """Per-region pools plus the cell-name → region routing table."""
        if self.topology is None:
            return {None: _AnchorPool(self.workers, self.queue_limit)}, {}
        regions = list(self.topology.regions)
        if self.region_workers is not None:
            counts = {}
            for region in regions:
                count = int(self.region_workers.get(region, 0))
                if count < 1:
                    raise ValueError(
                        f"region_workers must give every region >= 1 worker; "
                        f"region {region!r} got {count}"
                    )
                counts[region] = count
        else:
            base, extra = divmod(self.workers, len(regions))
            counts = {
                region: max(1, base + (1 if i < extra else 0))
                for i, region in enumerate(regions)
            }
        pools = {
            region: _AnchorPool(counts[region], self.queue_limit)
            for region in regions
        }
        region_of_cell = {
            cell.name: cell.region for cell in self.topology.cells
        }
        return pools, region_of_cell

    @staticmethod
    def _merge_reports(
        pools: dict, duration: float, peak_connected: int
    ) -> SimulationReport:
        per_region = {
            region: pool.report() for region, pool in pools.items()
        }
        latencies: dict[str, list[np.ndarray]] = {}
        cell_connects: dict[str, int] = {}
        busy = 0.0
        workers = 0
        processed = 0
        dropped = 0
        for region, pool in pools.items():
            processed += pool.processed
            dropped += pool.dropped
            busy += pool.busy_seconds
            workers += pool.workers
            for event, values in pool.latencies.items():
                latencies.setdefault(event, []).append(np.asarray(values))
            for cell, count in pool.cell_connects.items():
                cell_connects[cell] = cell_connects.get(cell, 0) + count
        capacity_seconds = max(duration, 1e-9) * max(workers, 1)
        return SimulationReport(
            num_events=processed,
            duration_seconds=duration,
            latencies_ms={
                event: np.concatenate(chunks)
                for event, chunks in latencies.items()
            },
            utilization=min(busy / capacity_seconds, 1.0),
            peak_connected_contexts=peak_connected,
            dropped_events=dropped,
            per_region=per_region,
            cell_connects=cell_connects or None,
        )


class SimulationRun:
    """One incremental ingestion session of an :class:`MCNSimulator`.

    Extracted from the body of :meth:`MCNSimulator.run` so a long-lived
    service can push events as they are released instead of handing the
    simulator a finite iterable.  The determinism contract is preserved:
    the shared cost RNG draws once per offered arrival *in arrival
    order*, so feeding the same ordered events through ``offer`` /
    ``offer_arrival`` yields a report identical to a batch ``run``.

    ``offer`` accepts the raw merged-timeline item shapes (5-field
    cell-annotated events, 4-field ``TimelineEvent`` tuples, or plain
    ``(timestamp, ue_id, event)`` triples); ``offer_arrival`` takes the
    already-normalized ``(timestamp, ue_key, event, cell)`` form.  Both
    return ``False`` when the target pool's queue limit dropped the
    event.  ``finalize`` may be called repeatedly — each call snapshots
    a report over everything offered so far, which is what the service's
    rolling telemetry wants.
    """

    def __init__(self, simulator: MCNSimulator, *, tee=None) -> None:
        if simulator.workers < 1:
            raise ValueError("need at least one worker")
        if tee is not None and not callable(tee):
            tee = tee.observe_event
        self._simulator = simulator
        self._tee = tee
        self._rng = np.random.default_rng(simulator.seed)
        self._pools, self._region_of_cell = simulator._build_pools()
        self._default_region = next(iter(self._pools))
        if _obs_enabled():
            registry = _obs_metrics()
            for region, pool in self._pools.items():
                label = region if region is not None else "core"
                pool.obs_wait = registry.histogram(
                    "mcn.queue_wait_ms", region=label
                )
                pool.obs_service = registry.histogram(
                    "mcn.service_ms", region=label
                )
        self._connected: set[Hashable] = set()
        self._peak_connected = 0
        self._first: float | None = None
        self._last = 0.0
        # Per-MergeTables caches for the columnar offer_chunk path,
        # invalidated when the (append-only) tables grow.
        self._chunk_tables = None
        self._chunk_names = 0
        self._chunk_means: np.ndarray | None = None
        self._chunk_flags: np.ndarray | None = None
        self._cell_tables = None
        self._cell_info: list | None = None

    @property
    def offered(self) -> int:
        """Arrivals offered so far (accepted + dropped)."""
        return self.processed + self.dropped

    @property
    def processed(self) -> int:
        return sum(pool.processed for pool in self._pools.values())

    @property
    def dropped(self) -> int:
        return sum(pool.dropped for pool in self._pools.values())

    def offer(self, item) -> bool:
        """Offer one raw timeline item (3-, 4-, or 5-field tuple)."""
        if len(item) >= 5:
            timestamp, cohort, ue_id, event, cell = item[:5]
            return self.offer_arrival(timestamp, (cohort, ue_id), event, cell)
        if len(item) == 4:
            timestamp, cohort, ue_id, event = item
            return self.offer_arrival(timestamp, (cohort, ue_id), event, None)
        timestamp, ue_id, event = item
        return self.offer_arrival(timestamp, ue_id, event, None)

    def _chunk_costs(self, tables) -> tuple[np.ndarray, np.ndarray]:
        """Mean service times + connect/release flags per global event code."""
        names = tables.event_names
        if self._chunk_tables is not tables or self._chunk_names != len(names):
            model = self._simulator.cost_model
            self._chunk_means = np.array(
                [model.mean_cost(name) for name in names], dtype=np.float64
            )
            flags = np.zeros(len(names), dtype=np.int8)
            for i, name in enumerate(names):
                if name in _CONNECTING_EVENTS:
                    flags[i] = 1
                elif name in _RELEASING_EVENTS:
                    flags[i] = -1
            self._chunk_flags = flags
            self._chunk_tables = tables
            self._chunk_names = len(names)
        return self._chunk_means, self._chunk_flags

    def _chunk_cells(self, tables) -> list:
        """``(cell name, region, pool)`` per global cell code."""
        if self._cell_tables is not tables:
            self._cell_info = [
                (
                    name,
                    region := self._region_of_cell.get(name, self._default_region),
                    self._pools[region],
                )
                for name in tables.cell_names
            ]
            self._cell_tables = tables
        return self._cell_info

    def offer_chunk(self, chunk: MergedChunk) -> int:
        """Offer one merged columnar chunk; returns the accepted count.

        Bit-identical to offering the chunk's decoded events one at a
        time: the shared cost RNG draws once per event in arrival order
        (a vectorized ``rng.exponential(means)`` draws the same floats
        as sequential scalar calls), and pool / context-set updates run
        in the same per-event sequence.  With a tee attached the chunk
        falls back to per-event ``offer`` so the tee sees event objects.
        """
        n = chunk.num_events
        if n == 0:
            return 0
        if self._tee is not None:
            accepted = 0
            for event in chunk.decode():
                if self.offer(event):
                    accepted += 1
            return accepted
        simulator = self._simulator
        tables = chunk.tables
        means, flags = self._chunk_costs(tables)
        if simulator.cost_model.stochastic:
            service = self._rng.exponential(means[chunk.events]) / 1000.0
        else:
            service = means[chunk.events] / 1000.0
        times = chunk.times.tolist()
        ues = chunk.ues.tolist()
        events = chunk.events.tolist()
        service_list = service.tolist()
        flag_list = flags[chunk.events].tolist()
        keys = tables.ue_keys(chunk.cycle)
        names = tables.event_names
        chaos = simulator.chaos
        if chunk.cells is not None:
            cell_info = self._chunk_cells(tables)
            cells = chunk.cells.tolist()
        else:
            cell_info = None
            cell = None
            region = self._default_region
            pool = self._pools[region]
        if self._first is None:
            self._first = times[0]
        self._last = times[-1]
        connected = self._connected
        peak = self._peak_connected
        accepted = 0
        for i in range(n):
            t = times[i]
            service_s = service_list[i]
            if cell_info is not None:
                cell, region, pool = cell_info[cells[i]]
            if chaos is not None and region is not None:
                service_s *= chaos.service_scale(region, t)
            ue_key = keys[ues[i]]
            if not pool.offer(t, ue_key, names[events[i]], service_s, cell):
                continue
            accepted += 1
            flag = flag_list[i]
            if flag > 0:
                connected.add(ue_key)
                if len(connected) > peak:
                    peak = len(connected)
            elif flag < 0:
                connected.discard(ue_key)
        self._peak_connected = peak
        return accepted

    def offer_arrival(
        self,
        timestamp: float,
        ue_key: Hashable,
        event: str,
        cell: str | None = None,
    ) -> bool:
        """Offer one normalized arrival; ``False`` if the queue dropped it."""
        simulator = self._simulator
        if self._tee is not None:
            self._tee(timestamp, ue_key, event)
        if self._first is None:
            self._first = timestamp
        self._last = timestamp
        region = self._region_of_cell.get(cell, self._default_region)
        # The cost RNG draws in arrival order — one stream shared by
        # every pool, so results don't depend on region routing.
        service_s = simulator.cost_model.sample_cost(event, self._rng) / 1000.0
        if simulator.chaos is not None and region is not None:
            service_s *= simulator.chaos.service_scale(region, timestamp)
        if not self._pools[region].offer(timestamp, ue_key, event, service_s, cell):
            return False
        if event in _CONNECTING_EVENTS:
            self._connected.add(ue_key)
            self._peak_connected = max(self._peak_connected, len(self._connected))
        elif event in _RELEASING_EVENTS:
            self._connected.discard(ue_key)
        return True

    def finalize(self) -> SimulationReport:
        """Snapshot a report over everything offered so far."""
        duration = (
            self._last - self._first if self._first is not None else 0.0
        )
        if self._simulator.topology is None:
            report = self._pools[self._default_region].report()
            report.peak_connected_contexts = self._peak_connected
            return report
        return MCNSimulator._merge_reports(
            self._pools, duration, self._peak_connected
        )


def _arrivals(
    workload: TraceDataset | Iterable,
) -> Iterator[tuple[float, Hashable, str, str | None]]:
    """Normalize a workload to ``(timestamp, ue_key, event, cell)``.

    Datasets are flattened and sorted by ``(timestamp, ue_id)`` (the
    stable sort preserves within-stream order on full ties — the same
    total order the streaming merge uses, given the prefix-free cohort
    naming of ``repro.workload``).  Iterables are trusted to be ordered
    and pass through lazily; 5-field items (``CellTimelineEvent``) carry
    their cell, 4-field items (``TimelineEvent``) key UE identity as
    ``(cohort, ue_id)``, 3-tuples as the bare ``ue_id``.
    """
    if isinstance(workload, TraceDataset):
        arrivals = [
            (event.timestamp, stream.ue_id, event.event)
            for stream in workload
            for event in stream
        ]
        arrivals.sort(key=lambda item: (item[0], item[1]))
        return ((t, ue, event, None) for t, ue, event in arrivals)
    return _iter_event_items(workload)


def _iter_event_items(
    events: Iterable,
) -> Iterator[tuple[float, Hashable, str, str | None]]:
    for item in events:
        if len(item) >= 5:
            timestamp, cohort, ue_id, event, cell = item[:5]
            yield timestamp, (cohort, ue_id), event, cell
        elif len(item) == 4:
            timestamp, cohort, ue_id, event = item
            yield timestamp, (cohort, ue_id), event, None
        else:
            timestamp, ue_id, event = item
            yield timestamp, ue_id, event, None
