"""Event-driven MCN control-plane simulator.

Consumes a (real or synthesized) :class:`~repro.trace.TraceDataset` and
replays it against a multi-worker control-plane anchor (MME/AMF) modeled
as a c-server FIFO queue.  Reports the quantities MCN design studies
care about (§2.2): per-event latency percentiles, worker utilization,
sustained throughput, and the peak number of concurrent UE contexts a
stateful MCN must hold (driven by sojourn times — the paper's C3
motivation).

The implementation is a classic discrete-event loop over a heap of
worker-free times; arrival order comes from merging all streams by
timestamp.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ..trace.dataset import TraceDataset
from .nf import LTE_COSTS, ServiceCostModel

__all__ = ["MCNSimulator", "SimulationReport"]

_CONNECTING_EVENTS = {"ATCH", "SRV_REQ", "REGISTER", "HO"}
_RELEASING_EVENTS = {"S1_CONN_REL", "AN_REL", "DTCH", "DEREGISTER"}


@dataclass
class SimulationReport:
    """Outcome of one simulation run."""

    num_events: int
    duration_seconds: float
    latencies_ms: dict[str, np.ndarray]
    utilization: float
    peak_connected_contexts: int
    dropped_events: int

    @property
    def throughput_eps(self) -> float:
        """Processed events per second of simulated time."""
        if self.duration_seconds <= 0:
            return 0.0
        return self.num_events / self.duration_seconds

    def latency_percentile(self, percentile: float, event: str | None = None) -> float:
        """Latency percentile in ms (queueing + service), overall or per event."""
        if event is None:
            pools = [v for v in self.latencies_ms.values() if v.size]
            if not pools:
                raise ValueError("no events were processed")
            values = np.concatenate(pools)
        else:
            values = self.latencies_ms.get(event)
            if values is None or values.size == 0:
                raise ValueError(f"no processed events of type {event!r}")
        return float(np.percentile(values, percentile))

    def mean_latency(self) -> float:
        pools = [v for v in self.latencies_ms.values() if v.size]
        if not pools:
            raise ValueError("no events were processed")
        return float(np.concatenate(pools).mean())


@dataclass
class MCNSimulator:
    """c-server FIFO control-plane anchor.

    Parameters
    ----------
    workers:
        Number of parallel control-plane workers.
    cost_model:
        Per-event-type service times.
    queue_limit:
        Maximum number of events waiting; arrivals beyond it are dropped
        (counted in the report).  None = unbounded.
    """

    workers: int = 4
    cost_model: ServiceCostModel = field(default_factory=lambda: LTE_COSTS)
    queue_limit: int | None = None
    seed: int = 0

    def run(self, dataset: TraceDataset) -> SimulationReport:
        """Replay every event in ``dataset`` through the queue."""
        if self.workers < 1:
            raise ValueError("need at least one worker")
        arrivals = self._merged_arrivals(dataset)
        rng = np.random.default_rng(self.seed)

        # Worker pool as a heap of next-free times (seconds), plus a heap
        # of in-system finish times to measure the waiting-queue length
        # (worker-free times alone cannot count queued events).
        free_at = [0.0] * self.workers
        if arrivals:
            free_at = [arrivals[0][0]] * self.workers
        heapq.heapify(free_at)
        in_system: list[float] = []

        latencies: dict[str, list[float]] = {}
        busy_seconds = 0.0
        dropped = 0
        connected: set[str] = set()
        peak_connected = 0
        processed = 0

        for timestamp, ue_id, event in arrivals:
            while in_system and in_system[0] <= timestamp:
                heapq.heappop(in_system)
            if self.queue_limit is not None:
                waiting = max(0, len(in_system) - self.workers)
                if waiting >= self.queue_limit:
                    dropped += 1
                    continue
            service_s = self.cost_model.sample_cost(event, rng) / 1000.0
            earliest_free = heapq.heappop(free_at)
            start = max(timestamp, earliest_free)
            finish = start + service_s
            heapq.heappush(free_at, finish)
            heapq.heappush(in_system, finish)
            latencies.setdefault(event, []).append((finish - timestamp) * 1000.0)
            busy_seconds += service_s
            processed += 1

            # Stateful context tracking: how many UEs the MCN must hold
            # in CONNECTED state simultaneously.
            if event in _CONNECTING_EVENTS:
                connected.add(ue_id)
                peak_connected = max(peak_connected, len(connected))
            elif event in _RELEASING_EVENTS:
                connected.discard(ue_id)

        if arrivals:
            duration = arrivals[-1][0] - arrivals[0][0]
        else:
            duration = 0.0
        capacity_seconds = max(duration, 1e-9) * self.workers
        return SimulationReport(
            num_events=processed,
            duration_seconds=duration,
            latencies_ms={k: np.asarray(v) for k, v in latencies.items()},
            utilization=min(busy_seconds / capacity_seconds, 1.0),
            peak_connected_contexts=peak_connected,
            dropped_events=dropped,
        )

    @staticmethod
    def _merged_arrivals(dataset: TraceDataset) -> list[tuple[float, str, str]]:
        arrivals = [
            (event.timestamp, stream.ue_id, event.event)
            for stream in dataset
            for event in stream
        ]
        arrivals.sort(key=lambda item: item[0])
        return arrivals
