"""Event-driven MCN control-plane simulator.

Consumes a (real or synthesized) workload and replays it against a
multi-worker control-plane anchor (MME/AMF) modeled as a c-server FIFO
queue.  Reports the quantities MCN design studies care about (§2.2):
per-event latency percentiles, worker utilization, sustained
throughput, and the peak number of concurrent UE contexts a stateful
MCN must hold (driven by sojourn times — the paper's C3 motivation).

Two ingestion paths feed the same discrete-event loop:

* a materialized :class:`~repro.trace.TraceDataset`, whose streams are
  flattened and sorted by ``(timestamp, ue_id)`` (stable, so a UE's
  within-stream order survives ties), or
* any *already time-ordered* iterable of events — in particular the
  streaming merged timeline of :class:`repro.workload.Workload` — which
  is consumed one event at a time, so population-scale workloads never
  materialize.  Items may be
  :class:`~repro.workload.timeline.TimelineEvent` tuples (UE identity is
  ``(cohort, ue_id)``) or plain ``(timestamp, ue_id, event)`` triples.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Iterator

import numpy as np

from ..trace.dataset import TraceDataset
from .nf import LTE_COSTS, ServiceCostModel

__all__ = ["MCNSimulator", "SimulationReport"]

_CONNECTING_EVENTS = {"ATCH", "SRV_REQ", "REGISTER", "HO"}
_RELEASING_EVENTS = {"S1_CONN_REL", "AN_REL", "DTCH", "DEREGISTER"}


@dataclass
class SimulationReport:
    """Outcome of one simulation run."""

    num_events: int
    duration_seconds: float
    latencies_ms: dict[str, np.ndarray]
    utilization: float
    peak_connected_contexts: int
    dropped_events: int

    @property
    def throughput_eps(self) -> float:
        """Processed events per second of simulated time."""
        if self.duration_seconds <= 0:
            return 0.0
        return self.num_events / self.duration_seconds

    def latency_percentile(self, percentile: float, event: str | None = None) -> float:
        """Latency percentile in ms (queueing + service), overall or per event."""
        if event is None:
            pools = [v for v in self.latencies_ms.values() if v.size]
            if not pools:
                raise ValueError("no events were processed")
            values = np.concatenate(pools)
        else:
            values = self.latencies_ms.get(event)
            if values is None or values.size == 0:
                raise ValueError(f"no processed events of type {event!r}")
        return float(np.percentile(values, percentile))

    def mean_latency(self) -> float:
        pools = [v for v in self.latencies_ms.values() if v.size]
        if not pools:
            raise ValueError("no events were processed")
        return float(np.concatenate(pools).mean())


@dataclass
class MCNSimulator:
    """c-server FIFO control-plane anchor.

    Parameters
    ----------
    workers:
        Number of parallel control-plane workers.
    cost_model:
        Per-event-type service times.
    queue_limit:
        Maximum number of events waiting; arrivals beyond it are dropped
        (counted in the report).  None = unbounded.
    """

    workers: int = 4
    cost_model: ServiceCostModel = field(default_factory=lambda: LTE_COSTS)
    queue_limit: int | None = None
    seed: int = 0

    def run(
        self, workload: TraceDataset | Iterable, *, tee=None
    ) -> SimulationReport:
        """Replay every event of ``workload`` through the queue.

        ``workload`` is a :class:`TraceDataset` (sorted here) or an
        iterable of time-ordered events (consumed lazily: constant
        memory beyond the per-event latency records in the report).

        ``tee`` is an optional validating tap: a callable (or an object
        with ``observe_event``, e.g.
        :class:`~repro.validate.oracle.OracleValidator`) invoked as
        ``tee(timestamp, ue_key, event)`` for every *offered* arrival —
        before queue-limit drops, so conformance is judged on the
        traffic the generator produced, not on what survived the queue.
        """
        if self.workers < 1:
            raise ValueError("need at least one worker")
        if tee is not None and not callable(tee):
            tee = tee.observe_event
        rng = np.random.default_rng(self.seed)

        # Worker pool as a heap of next-free times (seconds), plus a heap
        # of in-system finish times to measure the waiting-queue length
        # (worker-free times alone cannot count queued events).
        free_at: list[float] = []
        in_system: list[float] = []

        latencies: dict[str, list[float]] = {}
        busy_seconds = 0.0
        dropped = 0
        connected: set[Hashable] = set()
        peak_connected = 0
        processed = 0
        first_timestamp: float | None = None
        last_timestamp = 0.0

        for timestamp, ue_key, event in _arrivals(workload):
            if tee is not None:
                tee(timestamp, ue_key, event)
            if first_timestamp is None:
                first_timestamp = timestamp
                free_at = [timestamp] * self.workers
            last_timestamp = timestamp
            while in_system and in_system[0] <= timestamp:
                heapq.heappop(in_system)
            if self.queue_limit is not None:
                waiting = max(0, len(in_system) - self.workers)
                if waiting >= self.queue_limit:
                    dropped += 1
                    continue
            service_s = self.cost_model.sample_cost(event, rng) / 1000.0
            earliest_free = heapq.heappop(free_at)
            start = max(timestamp, earliest_free)
            finish = start + service_s
            heapq.heappush(free_at, finish)
            heapq.heappush(in_system, finish)
            latencies.setdefault(event, []).append((finish - timestamp) * 1000.0)
            busy_seconds += service_s
            processed += 1

            # Stateful context tracking: how many UEs the MCN must hold
            # in CONNECTED state simultaneously.
            if event in _CONNECTING_EVENTS:
                connected.add(ue_key)
                peak_connected = max(peak_connected, len(connected))
            elif event in _RELEASING_EVENTS:
                connected.discard(ue_key)

        if first_timestamp is not None:
            duration = last_timestamp - first_timestamp
        else:
            duration = 0.0
        capacity_seconds = max(duration, 1e-9) * self.workers
        return SimulationReport(
            num_events=processed,
            duration_seconds=duration,
            latencies_ms={k: np.asarray(v) for k, v in latencies.items()},
            utilization=min(busy_seconds / capacity_seconds, 1.0),
            peak_connected_contexts=peak_connected,
            dropped_events=dropped,
        )


def _arrivals(
    workload: TraceDataset | Iterable,
) -> Iterator[tuple[float, Hashable, str]]:
    """Normalize a workload to time-ordered ``(timestamp, ue_key, event)``.

    Datasets are flattened and sorted by ``(timestamp, ue_id)`` (the
    stable sort preserves within-stream order on full ties — the same
    total order the streaming merge uses, given the prefix-free cohort
    naming of ``repro.workload``).  Iterables are trusted to be ordered
    and pass through lazily; 4-field items (``TimelineEvent``) key UE
    identity as ``(cohort, ue_id)``, 3-tuples as the bare ``ue_id``.
    """
    if isinstance(workload, TraceDataset):
        arrivals = [
            (event.timestamp, stream.ue_id, event.event)
            for stream in workload
            for event in stream
        ]
        arrivals.sort(key=lambda item: (item[0], item[1]))
        return iter(arrivals)
    return _iter_event_items(workload)


def _iter_event_items(events: Iterable) -> Iterator[tuple[float, Hashable, str]]:
    for item in events:
        if len(item) == 4:
            timestamp, cohort, ue_id, event = item
            yield timestamp, (cohort, ue_id), event
        else:
            timestamp, ue_id, event = item
            yield timestamp, ue_id, event
