"""Network-function cost model for the mobile core network.

§2.2's first use case: evaluating MCN designs (throughput, latency,
scalability) under realistic control-plane workloads.  Each control
event triggers a fixed chain of control-plane message exchanges (the
paper notes the event→message mapping is dictated by 3GPP), which we
summarize as a per-event-type CPU service time at the control-plane
anchor (MME in 4G, AMF in 5G).

Costs are stylized but ordered like 3GPP procedure complexity: attach /
registration is the heaviest (authentication, session setup), service
request and release are mid-weight, handover heavier than TAU.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ServiceCostModel", "LTE_COSTS", "NR_COSTS"]


@dataclass(frozen=True)
class ServiceCostModel:
    """Mean CPU service time (milliseconds) per control event type."""

    costs_ms: dict[str, float]
    #: Service times are drawn from an exponential around the mean when
    #: ``stochastic`` is on (M/M/c-like); deterministic otherwise.
    stochastic: bool = True

    def mean_cost(self, event: str) -> float:
        if event not in self.costs_ms:
            raise KeyError(
                f"no service cost for event {event!r}; have {sorted(self.costs_ms)}"
            )
        return self.costs_ms[event]

    def sample_cost(self, event: str, rng) -> float:
        """One service time in milliseconds."""
        mean = self.mean_cost(event)
        if not self.stochastic:
            return mean
        return float(rng.exponential(mean))


#: 4G: MME-anchored procedure costs.
LTE_COSTS = ServiceCostModel(
    costs_ms={
        "ATCH": 12.0,  # authentication + default bearer setup
        "DTCH": 6.0,
        "SRV_REQ": 3.0,  # S1 setup + bearer activation
        "S1_CONN_REL": 2.0,
        "HO": 5.0,  # path switch + context transfer
        "TAU": 1.5,
    }
)

#: 5G: AMF-anchored; registration heavier (slice selection, SEAF).
NR_COSTS = ServiceCostModel(
    costs_ms={
        "REGISTER": 14.0,
        "DEREGISTER": 6.0,
        "SRV_REQ": 3.0,
        "AN_REL": 2.0,
        "HO": 5.0,
    }
)
