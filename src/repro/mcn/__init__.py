"""``repro.mcn`` — downstream consumers of synthesized traffic (§2.2).

An event-driven control-plane anchor simulator (latency / throughput /
stateful context footprint), an autoscaling evaluation harness, and
sampling-based telemetry with a count-min sketch.
"""

from .autoscale import AutoscalePolicy, AutoscaleTrace, simulate_autoscaling
from .nf import LTE_COSTS, NR_COSTS, ServiceCostModel
from .simulator import MCNSimulator, SimulationReport, SimulationRun
from .telemetry import CountMinSketch, SampledBreakdownMonitor, calibrate_sampling_rate

__all__ = [
    "ServiceCostModel",
    "LTE_COSTS",
    "NR_COSTS",
    "MCNSimulator",
    "SimulationReport",
    "SimulationRun",
    "AutoscalePolicy",
    "AutoscaleTrace",
    "simulate_autoscaling",
    "CountMinSketch",
    "SampledBreakdownMonitor",
    "calibrate_sampling_rate",
]
