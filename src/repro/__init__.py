"""repro — reproduction of CPT-GPT (IMC 2024).

High-fidelity cellular network control-plane traffic generation without
domain knowledge: a decoder-only transformer (built on a from-scratch
numpy autograd engine) plus the full evaluation stack — 3GPP UE state
machines, a synthetic operator-trace substrate, SMM and NetShare
baselines, fidelity metrics, downstream MCN consumers, and a harness
regenerating every table and figure of the paper.

The public entry point is the :mod:`repro.api` facade — one protocol
(:class:`TrafficGenerator`), a registry of backends and scenarios, and
a chainable :class:`Session`:

Quick start::

    from repro import Session

    session = (
        Session("phone-evening")      # a registered ScenarioSpec
        .synthesize()                  # simulate the operator capture
        .fit("cpt-gpt")                # any registered backend:
        .generate(1000, seed=42)       #   cpt-gpt, smm-1, smm-k, netshare
    )
    print(session.evaluate().summary())

    # Constant-memory generation at any scale:
    for stream in session.iter_streams(1_000_000, seed=7):
        consume(stream)

Register your own backend or workload::

    from repro import GeneratorBase, ScenarioSpec
    from repro import register_generator, register_scenario

    @register_generator("my-gen")
    class MyGenerator(GeneratorBase):
        ...  # implement _fit, _generate_batch, save, load

    register_scenario("rush-hour")(ScenarioSpec(name="rush-hour", hour=8))

The lower-level packages (``repro.core``, ``repro.baselines``,
``repro.trace``, ...) stay importable for fine-grained control.
"""

from .api import (
    GeneratorBase,
    ScenarioSpec,
    Session,
    TrafficGenerator,
    available_generators,
    available_scenarios,
    available_workloads,
    get_scenario,
    load_generator,
    register_generator,
    register_scenario,
    register_workload,
)
from .validate import FidelityScorecard, GateThresholds, run_gate
from .workload import Cohort, UEPopulation, Workload, get_workload

__version__ = "0.4.0"

__all__ = [
    # facade (re-exported from repro.api)
    "Session",
    "ScenarioSpec",
    "TrafficGenerator",
    "GeneratorBase",
    "register_generator",
    "register_scenario",
    "register_workload",
    "available_generators",
    "available_scenarios",
    "available_workloads",
    "get_scenario",
    "load_generator",
    # workload engine (re-exported from repro.workload)
    "Cohort",
    "UEPopulation",
    "Workload",
    "get_workload",
    # fidelity gate (re-exported from repro.validate)
    "FidelityScorecard",
    "GateThresholds",
    "run_gate",
    # subpackages
    "api",
    "nn",
    "statemachine",
    "trace",
    "tokenization",
    "core",
    "baselines",
    "metrics",
    "mcn",
    "workload",
    "validate",
    "experiments",
]
