"""repro — reproduction of CPT-GPT (IMC 2024).

High-fidelity cellular network control-plane traffic generation without
domain knowledge: a decoder-only transformer (built on a from-scratch
numpy autograd engine) plus the full evaluation stack — 3GPP UE state
machines, a synthetic operator-trace substrate, SMM and NetShare
baselines, fidelity metrics, downstream MCN consumers, and a harness
regenerating every table and figure of the paper.

Quick start::

    import numpy as np
    from repro.trace import SyntheticTraceConfig, generate_trace
    from repro.tokenization import StreamTokenizer
    from repro.statemachine import LTE_EVENTS
    from repro.core import CPTGPT, CPTGPTConfig, TrainingConfig, train, GeneratorPackage

    trace = generate_trace(SyntheticTraceConfig(num_ues=500, seed=0))
    tokenizer = StreamTokenizer(LTE_EVENTS).fit(trace)
    model = CPTGPT(CPTGPTConfig(), np.random.default_rng(0))
    train(model, trace, tokenizer, TrainingConfig(epochs=20))
    package = GeneratorPackage(model, tokenizer,
                               trace.initial_event_distribution(), "phone")
    synthetic = package.generate(1000, np.random.default_rng(1))
"""

__version__ = "0.1.0"

__all__ = [
    "nn",
    "statemachine",
    "trace",
    "tokenization",
    "core",
    "baselines",
    "metrics",
    "mcn",
    "experiments",
]
