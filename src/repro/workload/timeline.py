"""Streaming event-time merge: cohorts → shards → one global timeline.

The timeline layer turns a :class:`~repro.workload.population.UEPopulation`
into a single event-time ordered feed of :class:`TimelineEvent` without
ever materializing a :class:`~repro.trace.dataset.TraceDataset`:

1. each cohort's UE count splits into fixed-size generation shards
   (``shard_ues``), each driven by an independent
   ``SeedSequence``-derived RNG — the shard plan depends only on the
   population and seed, **not** on ``num_workers``, so the merged
   timeline is bit-identical whether shards are generated inline or
   across worker processes;
2. each shard's streams are shaped (per-cohort
   :class:`~repro.workload.shapes.LoadShape`, warp or thin), flattened
   into a compact columnar buffer (float64 timestamps + small integer
   UE/event codes — roughly an order of magnitude below materialized
   ``ControlEvent`` objects) and sorted once;
3. a lazy k-way heap merge (:func:`merge_timelines`) interleaves the
   per-shard sources into one globally ordered timeline.
   :class:`TimelineEvent` tuples are decoded from the columnar buffers
   one at a time as the merge pulls them, so beyond the compact buffers
   the merge holds one pending event per source.

A correct global merge cannot emit its first event before every shard
has generated (any UE may own the earliest event), so peak memory is
the compact buffers of all shards — far below a materialized
:class:`~repro.trace.dataset.TraceDataset`, and the simulator /
autoscaler never see more than one event at a time.

Ordering is total and deterministic: events sort by ``(timestamp,
cohort, ue_id)`` with within-stream order preserved on full ties (the
prefix-free cohort-name rule in ``UEPopulation`` makes this identical
to sorting a materialized trace whose UE ids are ``"{cohort}/{ue_id}"``
— the :meth:`Workload.materialize` parity path).

:func:`pace` adds open-loop rate control on top: it replays a timeline
against a wall clock at a chosen speed-up, the way a load generator
drives a system under test.
"""

from __future__ import annotations

import heapq
import time
import zlib
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, NamedTuple, Sequence

import numpy as np

from ..api.registry import GENERATORS, WORKLOADS
from ..api.protocol import TrafficGenerator
from ..obs import (
    enabled as _obs_enabled,
    instrument_events as _instrument_events,
    metrics as _obs_metrics,
    span as _span,
)
from ..core.chunks import (
    CellTimelineEvent,
    MergedChunk,
    TimelineEvent,
    merge_buffers,
)
from ..core.sharding import run_sharded, shard_counts, shard_rngs
from ..mcn.autoscale import AutoscalePolicy, AutoscaleTrace, simulate_autoscaling
from ..mcn.simulator import MCNSimulator, SimulationReport
from ..topology.chaos import NO_CHAOS, ChaosSchedule
from ..topology.runtime import TopologyRuntime
from ..topology.scenario import TopologyScenario, get_topology
from ..trace.dataset import TraceDataset
from ..trace.schema import ControlEvent, Stream
from ..trace.synthetic import generate_trace
from .population import Cohort, UEPopulation
from .shapes import FlatShape

__all__ = [
    "TimelineEvent",
    "CellTimelineEvent",
    "TimelineChunk",
    "MergedChunk",
    "chunk_buffer",
    "decode_buffer",
    "merge_buffers",
    "merge_timelines",
    "pace",
    "Workload",
    "WorkloadRunResult",
    "get_workload",
]


@dataclass(frozen=True)
class WorkloadRunResult:
    """Outcome of :meth:`Workload.run`.

    ``reports`` maps each validator's ``name`` to its finalized report
    (e.g. ``"conformance"`` →
    :class:`~repro.validate.oracle.ConformanceReport`, ``"stats"`` →
    :class:`~repro.validate.stats.TrafficSketch`); ``simulation`` is the
    :class:`~repro.mcn.simulator.SimulationReport` when the run also
    drove the MCN simulator.
    """

    num_events: int
    simulation: object | None
    reports: dict[str, object]

    def report(self, name: str):
        if name not in self.reports:
            raise KeyError(
                f"no validator {name!r} ran; have {sorted(self.reports)}"
            )
        return self.reports[name]


class TimelineChunk(NamedTuple):
    """One contiguous, resumable slice of a shard's columnar buffer.

    The unit of producer → consumer handoff in the always-on service
    layer (:mod:`repro.service`): a shard worker streams its buffer as
    a sequence of chunks tagged ``(shard, seq)``, and because shard
    generation is a pure function of ``(population, seed, shard_ues)``,
    a restarted worker that regenerates the shard and skips the first
    ``seq`` chunks produces a bit-identical remainder — the durable
    cursor is just the next expected ``seq``.

    ``ue_ids`` / ``event_names`` are the *whole shard's* string tables
    (shared by every chunk of the shard); ``ue_codes`` / ``event_codes``
    index into them.  ``cells`` carries topology cell codes or ``None``.
    """

    shard: int
    seq: int
    cohort: str
    times: np.ndarray
    ue_codes: np.ndarray
    event_codes: np.ndarray
    ue_ids: tuple
    event_names: tuple
    cells: "np.ndarray | None"

    @property
    def num_events(self) -> int:
        return int(self.times.size)

    def buffer(self):
        """This chunk in shard-buffer column layout (for decoding)."""
        return (
            self.times,
            self.ue_codes,
            self.event_codes,
            self.ue_ids,
            self.event_names,
            self.cells,
        )


def chunk_buffer(
    buffer,
    *,
    shard: int,
    cohort: str,
    chunk_events: int,
    start_seq: int = 0,
) -> Iterator[TimelineChunk]:
    """Slice one sorted shard buffer into fixed-size resumable chunks.

    Chunk boundaries depend only on ``chunk_events`` and the buffer, so
    the chunk sequence is deterministic; ``start_seq`` skips chunks that
    were already delivered (the restart-from-cursor path).  An empty
    buffer still yields exactly one empty chunk so every shard announces
    itself to the merge.

    Partial slices are *copied*: a chunk often outlives its buffer (ring
    queues, merger backlogs), and a numpy view would pin the entire
    shard buffer alive for as long as any one chunk is retained.
    """
    if chunk_events < 1:
        raise ValueError("chunk_events must be >= 1")
    times, ues, codes, ue_ids, event_names = buffer[:5]
    cells = buffer[5] if len(buffer) > 5 else None
    total = int(times.size)
    num_chunks = max(1, -(-total // chunk_events))
    if start_seq < 0 or start_seq > num_chunks:
        raise ValueError(
            f"start_seq must be in [0, {num_chunks}]; got {start_seq}"
        )
    id_table = tuple(ue_ids)
    name_table = tuple(event_names)
    for seq in range(start_seq, num_chunks):
        lo = seq * chunk_events
        hi = min(total, lo + chunk_events)
        whole = lo == 0 and hi == total
        yield TimelineChunk(
            shard=shard,
            seq=seq,
            cohort=cohort,
            times=times if whole else times[lo:hi].copy(),
            ue_codes=ues if whole else ues[lo:hi].copy(),
            event_codes=codes if whole else codes[lo:hi].copy(),
            ue_ids=id_table,
            event_names=name_table,
            cells=(
                None
                if cells is None
                else (cells if whole else cells[lo:hi].copy())
            ),
        )


#: The merge's total order: event time, then (cohort, ue_id) on ties.
_MERGE_KEY = lambda e: (e.timestamp, e.cohort, e.ue_id)  # noqa: E731


def merge_timelines(
    sources: Iterable[Iterator[TimelineEvent]],
) -> Iterator[TimelineEvent]:
    """Lazy k-way heap merge of time-ordered event sources.

    Each source must already be ordered by ``(timestamp, cohort,
    ue_id)``; the merge holds exactly one pending event per source
    (``heapq.merge``), so its own footprint is O(k) regardless of how
    many events flow through.  Ties across sources resolve by source
    order, which is deterministic because the shard plan is.
    """
    return heapq.merge(*sources, key=_MERGE_KEY)


def pace(
    events: Iterable[TimelineEvent],
    *,
    speed: float = 1.0,
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], None] = time.sleep,
    max_burst: int | None = None,
    on_slip: Callable[[int, float, str], None] | None = None,
) -> Iterator[TimelineEvent]:
    """Open-loop rate control: release events on a wall-clock schedule.

    The first event anchors event time to the wall clock; each
    subsequent event is released once ``(t - t0) / speed`` seconds of
    wall time have elapsed, regardless of how fast the consumer keeps
    up (open loop — a slow consumer sees a backlog, not a slowed
    generator).  ``speed=60`` replays an hour of traffic in a minute;
    ``float("inf")`` disables pacing.

    Two wall-clock pathologies are handled explicitly:

    * **backward clock jumps** — a ``clock`` that moves backwards (NTP
      step, VM migration) shifts the anchor by the jump instead of
      stalling every later event behind a schedule that now lives in
      the future;
    * **long consumer stalls** — a consumer that stops pulling and
      resumes finds every missed event overdue.  Without a cap, pace
      releases the whole backlog in one unbounded catch-up burst;
      ``max_burst`` bounds the number of consecutive overdue events
      released without sleeping, after which the schedule re-anchors to
      *now* (the lag is declared slippage, not replayed).

    ``on_slip(events, seconds, reason)`` reports both: ``reason`` is
    ``"burst"`` when the cap trips (``events`` released late,
    ``seconds`` behind schedule) and ``"clock"`` on a backward jump
    (``events`` is 0, ``seconds`` the jump size).
    """
    if speed <= 0:
        raise ValueError("speed must be positive")
    if max_burst is not None and max_burst < 1:
        raise ValueError("max_burst must be >= 1")
    if _obs_enabled():
        # Chain slip reporting into the metrics registry so slippage is
        # visible in live metric snapshots, not just a final callback.
        registry = _obs_metrics()
        slipped_events = registry.counter("pace.slipped_events")
        slipped_seconds = registry.counter("pace.slipped_seconds")
        clock_jumps = registry.counter("pace.clock_jumps")
        user_slip = on_slip

        def on_slip(events_late: int, seconds: float, reason: str) -> None:
            if reason == "clock":
                clock_jumps.inc()
            else:
                slipped_events.inc(events_late)
            slipped_seconds.inc(seconds)
            if user_slip is not None:
                user_slip(events_late, seconds, reason)

    origin_event: float | None = None
    origin_wall = 0.0
    last_wall = 0.0
    burst = 0
    for event in events:
        if origin_event is None:
            origin_event = event.timestamp
            origin_wall = last_wall = clock()
        elif speed != float("inf"):
            now = clock()
            if now < last_wall:
                jump = last_wall - now
                origin_wall -= jump
                if on_slip is not None:
                    on_slip(0, jump, "clock")
            last_wall = now
            due = origin_wall + (event.timestamp - origin_event) / speed
            delay = due - now
            if delay > 0:
                sleep(delay)
                last_wall = due  # the sleep advanced the wall clock
                burst = 0
            else:
                burst += 1
                if max_burst is not None and burst >= max_burst:
                    if on_slip is not None:
                        on_slip(burst, -delay, "burst")
                    origin_wall = now - (event.timestamp - origin_event) / speed
                    burst = 0
        yield event


def _resolve_chaos(
    chaos: "ChaosSchedule | str | None",
) -> ChaosSchedule | None:
    """``None`` → scenario default; ``"off"``/``"none"`` → no chaos."""
    if chaos is None or isinstance(chaos, ChaosSchedule):
        return chaos
    key = str(chaos).strip().lower()
    if key in {"off", "none", ""}:
        return NO_CHAOS
    raise ValueError(
        f"chaos must be a ChaosSchedule or 'off'/'none'; got {chaos!r}"
    )


def get_workload(name: str | UEPopulation) -> UEPopulation:
    """Resolve a workload by registry name (or pass a population through)."""
    if isinstance(name, UEPopulation):
        return name
    import repro.workload.presets  # noqa: F401  (registers the built-ins)

    return WORKLOADS.get(name)


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class Workload:
    """A population bound to fitted per-cohort generators.

    Parameters
    ----------
    population:
        A :class:`UEPopulation` or a registered workload name.
    seed:
        Base seed; every cohort and shard derives an independent RNG
        from it.  The merged timeline is a pure function of
        ``(population, seed, shard_ues)``.
    num_workers:
        Worker processes for shard generation.  Changes wall time only
        — never the timeline (the shard plan is fixed by ``shard_ues``).
    shard_ues:
        UEs per generation shard.  Part of the workload identity: the
        per-shard RNG split depends on it.
    backend:
        Overrides every cohort's generator backend when given.
    generators:
        Pre-fitted generators by cohort name (e.g. a Session's fitted
        backend); missing cohorts are fitted on demand from their
        scenario's synthesized capture.
    topology:
        A :class:`~repro.topology.scenario.TopologyScenario`, a
        :class:`~repro.topology.graph.NetworkTopology`, or a registered
        topology name.  Defaults to the population's ``topology``
        attribute; when set, every timeline event carries the cell it
        was emitted from (:class:`CellTimelineEvent`) and mobility /
        chaos events are injected conformantly.
    chaos:
        Overrides the topology scenario's chaos schedule: a
        :class:`~repro.topology.chaos.ChaosSchedule`, or ``"off"`` /
        ``"none"`` to run the topology with its chaos disabled.
    """

    def __init__(
        self,
        population: UEPopulation | str,
        *,
        seed: int = 0,
        num_workers: int = 1,
        shard_ues: int = 2048,
        backend: str | None = None,
        generators: dict[str, TrafficGenerator] | None = None,
        topology: "TopologyScenario | str | None" = None,
        chaos: "ChaosSchedule | str | None" = None,
    ) -> None:
        if shard_ues < 1:
            raise ValueError("shard_ues must be >= 1")
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.population = get_workload(population)
        self.seed = seed
        self.num_workers = num_workers
        self.shard_ues = shard_ues
        self.backend = backend
        self._injected = dict(generators or {})
        self._fitted: dict[str, TrafficGenerator] = {}
        source = (
            topology
            if topology is not None
            else getattr(self.population, "topology", None)
        )
        chaos_override = _resolve_chaos(chaos)
        if source is None:
            if isinstance(chaos_override, ChaosSchedule) and chaos_override:
                raise ValueError(
                    "chaos requires a topology (pass topology=... or use a "
                    "population with a default topology)"
                )
            self.topology = None
            self.chaos = None
            self._runtime = None
        else:
            self.topology = get_topology(source)
            self._runtime = TopologyRuntime(
                self.topology, self.population, seed=seed, chaos=chaos_override
            )
            self.chaos = self._runtime.chaos

    # ------------------------------------------------------------------
    # Generators
    # ------------------------------------------------------------------
    def generator(self, cohort: Cohort) -> TrafficGenerator:
        """The fitted backend for ``cohort`` (fitting on first use).

        Fitting synthesizes the cohort scenario's training capture and
        fits the cohort's backend on it — cheap for the default
        ``smm-1``; inject pre-fitted generators (``generators=`` /
        :meth:`Session.workload`) to skip it.
        """
        if cohort.name in self._injected:
            return self._injected[cohort.name]
        if cohort.name not in self._fitted:
            with _span("generate.fit"):
                name = GENERATORS.canonical(self.backend or cohort.backend)
                cls = GENERATORS.get(name)
                capture = generate_trace(cohort.scenario.trace_config())
                options = {}
                if getattr(cls, "uses_tokenizer", False):
                    from ..tokenization import StreamTokenizer

                    options["tokenizer"] = StreamTokenizer(
                        cohort.scenario.vocabulary
                    ).fit(capture)
                self._fitted[cohort.name] = cls(**options).fit(
                    capture, cohort.scenario
                )
        return self._fitted[cohort.name]

    # ------------------------------------------------------------------
    # Shard plan
    # ------------------------------------------------------------------
    def _shard_plan(self) -> list[tuple[int, Cohort, int]]:
        """(cohort_index, cohort, shard_index) for every generation shard."""
        plan: list[tuple[int, Cohort, int]] = []
        for index, cohort in enumerate(self.population.cohorts):
            plan.extend(
                (index, cohort, shard)
                for shard in range(self._cohort_shards(cohort))
            )
        return plan

    def _cohort_shards(self, cohort: Cohort) -> int:
        return max(1, -(-cohort.num_ues // self.shard_ues))

    def _shard_streams(
        self, cohort_index: int, cohort: Cohort, shard: int
    ) -> Iterator[tuple[str, str, np.ndarray, list[str], "np.ndarray | None"]]:
        """One shard's shaped streams as ``(ue_id, device, times, events,
        cells)``.

        ``cells`` is ``None`` without a topology; with one, the
        :class:`~repro.topology.runtime.TopologyRuntime` annotates every
        event with its cell code and injects mobility/chaos events — the
        per-UE topology RNG is keyed by ``(seed, UE id)``, so the result
        is independent of shard layout just like thinning.

        The per-shard RNG split is ``SeedSequence((seed, cohort_index))``
        fanned out over the cohort's fixed shard count — independent of
        ``num_workers`` by construction.
        """
        shards = self._cohort_shards(cohort)
        counts = shard_counts(cohort.num_ues, shards)
        parent = np.random.default_rng(np.random.SeedSequence((self.seed, cohort_index)))
        rng = shard_rngs(parent, shards)[shard]
        generator = self.generator(cohort)
        origin = cohort.scenario.start_time
        shape = cohort.shape
        unshaped = isinstance(shape, FlatShape) and shape.level == 1.0
        for stream in generator.generate(
            counts[shard], rng, start_time=origin, stream=True
        ):
            times = stream.timestamps()
            names = stream.event_names()
            if not unshaped:
                with _span("shape.warp") as sp:
                    if cohort.shape_mode == "warp":
                        times = shape.warp(times, origin)
                    else:
                        # Per-stream thinning RNG keyed by (seed, UE id):
                        # stable no matter which shard the UE lands in.
                        key = zlib.crc32(f"{cohort.name}/{stream.ue_id}".encode())
                        keep = shape.thin(
                            times,
                            np.random.default_rng(np.random.SeedSequence((self.seed, key))),
                        )
                        times = times[keep]
                        names = [n for n, k in zip(names, keep) if k]
                    sp.add_events(times.size)
            if self._runtime is not None:
                with _span("shape.annotate") as sp:
                    times, names, cells = self._runtime.annotate(
                        cohort, stream.ue_id, times, names
                    )
                    sp.add_events(times.size)
            else:
                cells = None
            yield stream.ue_id, stream.device_type, times, names, cells

    def _shard_buffer(self, cohort_index: int, cohort: Cohort, shard: int):
        """One shard as a compact columnar buffer, sorted by the merge key.

        Returns ``(times, ue_codes, event_codes, ue_ids, event_names,
        cells)``: float64 timestamps plus integer codes into the two
        string tables — ~13 bytes/event instead of a ``TimelineEvent``
        tuple each, which is what makes holding every shard's buffer
        during the merge cheap.  ``cells`` is an int16 array of topology
        cell codes (``None`` without a topology).  The sort keys on
        ``(timestamp, ue_id, position)`` (the cohort is constant within
        a shard), so a UE's within-stream order survives full ties.

        Under observability the build is timed as ``generate.shard``
        (shape warp/thin/annotate time inside is attributed to its own
        ``shape.*`` spans via self-time accounting).
        """
        with _span("generate.shard") as sp:
            buffer = self._build_shard_buffer(cohort_index, cohort, shard)
            sp.add_events(int(buffer[0].size))
        return buffer

    def _build_shard_buffer(self, cohort_index: int, cohort: Cohort, shard: int):
        time_chunks: list[np.ndarray] = []
        ue_chunks: list[np.ndarray] = []
        code_chunks: list[np.ndarray] = []
        cell_chunks: list[np.ndarray] = []
        ue_ids: list[str] = []
        event_names: list[str] = []
        code_of: dict[str, int] = {}
        for ue_id, _, times, names, cells in self._shard_streams(
            cohort_index, cohort, shard
        ):
            ue_index = len(ue_ids)
            ue_ids.append(ue_id)
            codes = np.empty(len(names), dtype=np.int16)
            for i, name in enumerate(names):
                code = code_of.get(name)
                if code is None:
                    code = code_of[name] = len(event_names)
                    event_names.append(name)
                codes[i] = code
            time_chunks.append(np.asarray(times, dtype=np.float64))
            ue_chunks.append(np.full(len(names), ue_index, dtype=np.int32))
            code_chunks.append(codes)
            if cells is not None:
                cell_chunks.append(cells)
        if not time_chunks:
            empty = np.empty(0)
            return (
                empty,
                empty.astype(np.int32),
                empty.astype(np.int16),
                [],
                [],
                empty.astype(np.int16) if self._runtime is not None else None,
            )
        times = np.concatenate(time_chunks)
        ues = np.concatenate(ue_chunks)
        codes = np.concatenate(code_chunks)
        # UE codes are in generation order; ties must break by UE-id
        # *string* order, so rank the ids lexicographically first.
        rank = np.empty(len(ue_ids), dtype=np.int32)
        rank[np.asarray(sorted(range(len(ue_ids)), key=ue_ids.__getitem__))] = (
            np.arange(len(ue_ids), dtype=np.int32)
        )
        order = np.lexsort((np.arange(times.size), rank[ues], times))
        cells = (
            np.concatenate(cell_chunks)[order] if cell_chunks else None
        )
        return times[order], ues[order], codes[order], ue_ids, event_names, cells

    # ------------------------------------------------------------------
    # The merged timeline
    # ------------------------------------------------------------------
    def events(self, observers: Sequence = ()) -> Iterator[TimelineEvent]:
        """The merged, globally event-time ordered population timeline.

        With ``num_workers == 1`` each shard's compact buffer is built
        lazily on first pull; with more workers, shards are generated in
        parallel up front (forked workers, shard order preserved — the
        columnar buffers are what travels back over the pipe).  Either
        way ``TimelineEvent`` tuples are decoded one at a time as the
        merge pulls them.

        ``observers`` are streaming validators (e.g.
        :class:`~repro.validate.oracle.OracleValidator`): each shard's
        compact columnar buffer is handed to every observer's
        ``observe_buffer(times, ue_codes, event_codes, ue_ids,
        event_names, cohort=...)`` hook *before* the shard joins the
        merge, so validation runs vectorized at generation speed and —
        with worker processes — always in the parent, where tallies
        aggregate.
        """
        plan = self.planned_shards()
        cell_names = self._cell_names()
        if self.num_workers > 1 and len(plan) > 1:
            with _span("generate.workers") as sp:
                buffers = self._worker_buffers(plan)
                if _obs_enabled():
                    sp.add_events(sum(int(b[0].size) for b in buffers))
            for entry, buffer in zip(plan, buffers):
                self._observe(observers, buffer, entry[1].name)
            sources = [
                decode_buffer(buffer, entry[1].name, cell_names)
                for entry, buffer in zip(plan, buffers)
            ]
        elif _obs_enabled():
            # Under observability, build every shard buffer *before* the
            # merge so the sampled merge.pull attribution never catches a
            # lazy shard generation inside a single timed pull (which
            # would scale that one pull across the whole stream).  Peak
            # memory is unchanged: a correct global merge holds all
            # compact shard buffers anyway.
            buffers = [self._shard_buffer(*entry) for entry in plan]
            for entry, buffer in zip(plan, buffers):
                self._observe(observers, buffer, entry[1].name)
            sources = [
                decode_buffer(buffer, entry[1].name, cell_names)
                for entry, buffer in zip(plan, buffers)
            ]
        else:
            sources = [self._lazy_shard(*entry, observers=observers) for entry in plan]
        return _instrument_events("merge.pull", merge_timelines(sources))

    def chunks(
        self,
        observers: Sequence = (),
        *,
        chunk_events: int = 65536,
    ) -> "list[MergedChunk]":
        """The merged timeline as globally ordered columnar chunks.

        The hot path: every shard's compact buffer is built (in parallel
        with ``num_workers > 1``), observed by the streaming validators,
        and merged with one vectorized :func:`merge_buffers` lexsort —
        no per-event decode anywhere.  Event order is bit-identical to
        :meth:`events`; :meth:`MergedChunk.decode` recovers the event
        objects when an object-path consumer needs them.
        """
        plan = self.planned_shards()
        if self.num_workers > 1 and len(plan) > 1:
            with _span("generate.workers") as sp:
                buffers = self._worker_buffers(plan)
                if _obs_enabled():
                    sp.add_events(sum(int(b[0].size) for b in buffers))
        else:
            buffers = [self._shard_buffer(*entry) for entry in plan]
        for entry, buffer in zip(plan, buffers):
            self._observe(observers, buffer, entry[1].name)
        with _span("merge.chunks") as sp:
            merged = merge_buffers(
                buffers,
                [entry[1].name for entry in plan],
                cell_names=self._cell_names(),
                chunk_events=chunk_events,
            )
            sp.add_events(sum(c.num_events for c in merged))
        return merged

    def _cell_names(self) -> tuple[str, ...] | None:
        """The topology's cell-name table (codes → names), if any."""
        if self.topology is None:
            return None
        return self.topology.topology.cell_names

    def planned_shards(self) -> list[tuple[int, Cohort, int]]:
        """The shard plan with every cohort's generator prefitted.

        With forked workers the fitted state must exist before the fork
        so children inherit it copy-on-write instead of each refitting.
        Public because the service layer (:mod:`repro.service`) spawns
        one supervised producer per plan entry and must prefit before
        forking for the same reason.
        """
        plan = self._shard_plan()
        for cohort in self.population.cohorts:
            self.generator(cohort)
        return plan

    @property
    def num_shards(self) -> int:
        """Number of fixed generation shards in the plan."""
        return len(self._shard_plan())

    def shard_chunk_stream(
        self,
        shard: int,
        *,
        chunk_events: int = 4096,
        start_seq: int = 0,
    ) -> Iterator[TimelineChunk]:
        """(Re)generate one planned shard as a stream of resumable chunks.

        ``shard`` indexes :meth:`planned_shards`.  Generation is a pure
        function of the workload identity, so calling this again with
        ``start_seq=k`` yields exactly the chunks ``k, k+1, ...`` of the
        original stream — the contract that lets a supervisor restart a
        crashed worker from its durable cursor with the merged timeline
        provably unchanged.
        """
        plan = self._shard_plan()
        if not 0 <= shard < len(plan):
            raise IndexError(
                f"shard must be in [0, {len(plan)}); got {shard}"
            )
        entry = plan[shard]
        buffer = self._shard_buffer(*entry)
        return chunk_buffer(
            buffer,
            shard=shard,
            cohort=entry[1].name,
            chunk_events=chunk_events,
            start_seq=start_seq,
        )

    def _worker_buffers(self, plan: list) -> list:
        """Every shard's columnar buffer, generated across workers."""
        return run_sharded(
            lambda i: self._shard_buffer(*plan[i]), len(plan), self.num_workers
        )

    @staticmethod
    def _observe(observers: Sequence, buffer, cohort: str) -> None:
        # Validators see the first five columns — the cell column is
        # topology metadata they are free to ignore.
        times, ues, codes, ue_ids, event_names = buffer[:5]
        for observer in observers:
            with _span(f"oracle.{observer.name}") as sp:
                observer.observe_buffer(
                    times, ues, codes, ue_ids, event_names, cohort=cohort
                )
                sp.add_events(int(times.size))

    def _lazy_shard(
        self,
        cohort_index: int,
        cohort: Cohort,
        shard: int,
        observers: Sequence = (),
    ) -> Iterator[TimelineEvent]:
        buffer = self._shard_buffer(cohort_index, cohort, shard)
        self._observe(observers, buffer, cohort.name)
        yield from decode_buffer(buffer, cohort.name, self._cell_names())

    def run(
        self,
        validators: Sequence = (),
        *,
        simulate: bool = False,
        sim_workers: int = 4,
        sim_seed: int = 0,
        queue_limit: int | None = None,
        chunk_events: int = 65536,
    ) -> "WorkloadRunResult":
        """Drive the full workload through streaming ``validators``.

        Each validator sees every shard buffer vectorized (see
        :meth:`events`).  With ``simulate=True`` the merged timeline is
        additionally streamed into
        :class:`~repro.mcn.simulator.MCNSimulator` as columnar
        :class:`MergedChunk` batches (the hot path — no per-event
        decode); without it the merge is skipped entirely — validation
        runs straight off the columnar buffers at oracle speed.  Returns
        a :class:`WorkloadRunResult` with each validator's finalized
        report keyed by its ``name``.
        """
        simulation = None
        if simulate:
            simulation = MCNSimulator(
                workers=sim_workers,
                cost_model=self.population.cost_model,
                queue_limit=queue_limit,
                seed=sim_seed,
                topology=(
                    None if self.topology is None else self.topology.topology
                ),
                chaos=self.chaos,
            ).run(self.chunks(observers=validators, chunk_events=chunk_events))
            num_events = simulation.num_events + simulation.dropped_events
        else:
            # Validation-only: observe and count shard buffers directly —
            # no k-way merge, no per-event decode, and in single-worker
            # mode only one shard's buffer is alive at a time.
            plan = self.planned_shards()
            if self.num_workers > 1 and len(plan) > 1:
                buffers: Iterable = self._worker_buffers(plan)
            else:
                buffers = (self._shard_buffer(*entry) for entry in plan)
            num_events = 0
            for entry, buffer in zip(plan, buffers):
                self._observe(validators, buffer, entry[1].name)
                num_events += buffer[0].size
        return WorkloadRunResult(
            num_events=num_events,
            simulation=simulation,
            reports={v.name: v.report() for v in validators},
        )

    def __iter__(self) -> Iterator[TimelineEvent]:
        return self.events()

    # ------------------------------------------------------------------
    # Consumers
    # ------------------------------------------------------------------
    def simulate(
        self,
        workers: int = 4,
        *,
        queue_limit: int | None = None,
        sim_seed: int = 0,
        cost_model=None,
        simulator: MCNSimulator | None = None,
        events: Iterable[TimelineEvent] | None = None,
    ) -> SimulationReport:
        """Stream the timeline through a control-plane anchor simulator.

        ``cost_model`` defaults to the population technology's model;
        pass a custom :class:`~repro.mcn.nf.ServiceCostModel` to study a
        slower or faster anchor implementation.  ``events`` substitutes
        a pre-built timeline (e.g. one ``list(engine.events())`` shared
        with :meth:`autoscale` to pay generation once at small scale);
        without it the simulator ingests columnar :class:`MergedChunk`
        batches directly.
        """
        if simulator is None:
            simulator = MCNSimulator(
                workers=workers,
                cost_model=(
                    self.population.cost_model if cost_model is None else cost_model
                ),
                queue_limit=queue_limit,
                seed=sim_seed,
                topology=(
                    None if self.topology is None else self.topology.topology
                ),
                chaos=self.chaos,
            )
        return simulator.run(self.chunks() if events is None else events)

    def autoscale(
        self,
        policy: AutoscalePolicy | None = None,
        *,
        window_seconds: float = 300.0,
        initial_workers: int = 2,
        cost_model=None,
        events: Iterable[TimelineEvent] | None = None,
    ) -> AutoscaleTrace:
        """Stream the timeline through the autoscaling evaluation."""
        return simulate_autoscaling(
            self.chunks() if events is None else events,
            policy if policy is not None else AutoscalePolicy(),
            window_seconds=window_seconds,
            cost_model=(
                self.population.cost_model if cost_model is None else cost_model
            ),
            initial_workers=initial_workers,
            topology=(
                None if self.topology is None else self.topology.topology
            ),
        )

    # ------------------------------------------------------------------
    # Parity / small-scale escape hatch
    # ------------------------------------------------------------------
    def materialize(self) -> TraceDataset:
        """The same workload as a materialized :class:`TraceDataset`.

        UE ids are prefixed ``"{cohort}/{ue_id}"``; replaying this
        dataset through :class:`MCNSimulator` visits events in exactly
        the merged-timeline order (the parity contract the test suite
        pins down).  Only sensible at small scale — the streaming path
        exists so this never has to happen at population scale.
        """
        streams = []
        for entry in self._shard_plan():
            for ue_id, device, times, names, _ in self._shard_streams(*entry):
                cohort = entry[1]
                streams.append(
                    Stream(
                        ue_id=f"{cohort.name}/{ue_id}",
                        device_type=device,
                        events=[
                            ControlEvent(float(t), name)
                            for t, name in zip(times, names)
                        ],
                    )
                )
        return TraceDataset(streams=streams, vocabulary=self.population.vocabulary)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Workload {self.population.name!r} "
            f"{self.population.total_ues} UEs seed={self.seed} "
            f"workers={self.num_workers}>"
        )


def decode_buffer(
    buffer, cohort: str, cell_names: "tuple[str, ...] | None" = None
) -> Iterator[TimelineEvent]:
    """Decode a columnar shard buffer into events, one per pull.

    Shared by the batch merge and the service-layer chunk merge (a
    :class:`TimelineChunk`'s :meth:`~TimelineChunk.buffer` has the same
    column layout), so both paths decode byte-identically.
    """
    times, ues, codes, ue_ids, event_names = buffer[:5]
    cells = buffer[5] if len(buffer) > 5 else None
    if cells is not None and cell_names is None:
        raise ValueError(
            "buffer carries cell annotations but no cell_names table was "
            "given; pass the topology's cell names so cell tags are not "
            "silently dropped"
        )
    if cells is not None:
        for i in range(times.size):
            yield CellTimelineEvent(
                float(times[i]),
                cohort,
                ue_ids[ues[i]],
                event_names[codes[i]],
                cell_names[cells[i]],
            )
        return
    for i in range(times.size):
        yield TimelineEvent(
            float(times[i]), cohort, ue_ids[ues[i]], event_names[codes[i]]
        )
