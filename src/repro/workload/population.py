"""Population models: weighted UE cohorts composed into workloads.

A :class:`Cohort` is one homogeneous slice of a device population — a
:class:`~repro.api.scenario.ScenarioSpec` (who/when/which network), a UE
count, a generator backend to synthesize its streams with, and a
:class:`~repro.workload.shapes.LoadShape` modulating its event-time
intensity.  A :class:`UEPopulation` composes weighted cohorts into one
workload ("city-day": phones + tablets + connected cars, each with its
own diurnal swing) that the streaming timeline
(:mod:`repro.workload.timeline`) fans out through the sharded generator
and merges into a single event-time ordered feed for the MCN consumers.

Cohort names double as deterministic tie-break keys in the merged
timeline and as UE-id prefixes in materialized traces, so they are
restricted to slug characters and no name may be a prefix of another
(which keeps string order of ``"{cohort}/{ue_id}"`` identical to tuple
order of ``(cohort, ue_id)``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace

from ..api.scenario import ScenarioSpec, get_scenario
from ..mcn.nf import LTE_COSTS, NR_COSTS, ServiceCostModel
from ..statemachine.events import EventVocabulary
from .shapes import FLAT, LoadShape

__all__ = ["Cohort", "UEPopulation"]

_NAME_PATTERN = re.compile(r"^[A-Za-z0-9_.\-]+$")

#: Shape application mechanisms (see :mod:`repro.workload.shapes`).
_SHAPE_MODES = ("warp", "thin")


def _apportion(total: int, shares: list[float]) -> list[int]:
    """Split ``total`` into integer parts proportional to ``shares``.

    Largest-remainder apportionment: floor every exact share, then hand
    the leftover units to the largest fractional remainders (ties to the
    earliest share — sorting is stable).  The result always sums to
    exactly ``total``; all-zero shares split as evenly as possible.
    """
    if total < 0:
        raise ValueError("total must be non-negative")
    if not shares:
        return []
    scale = sum(shares)
    if scale <= 0:
        shares = [1.0] * len(shares)
        scale = float(len(shares))
    exact = [total * share / scale for share in shares]
    counts = [int(e) for e in exact]
    by_remainder = sorted(
        range(len(counts)), key=lambda i: exact[i] - counts[i], reverse=True
    )
    for i in by_remainder[: total - sum(counts)]:
        counts[i] += 1
    return counts


@dataclass(frozen=True)
class Cohort:
    """One weighted slice of the UE population.

    Attributes
    ----------
    name:
        Slug identifying the cohort; used for tie-breaking in the merged
        timeline and as the UE-id prefix in materialized traces.
    scenario:
        A :class:`ScenarioSpec` or a registered scenario name describing
        the cohort's device type / technology / hour.
    num_ues:
        UE count of this cohort (``None`` = the scenario's own count).
    shape:
        Event-time intensity modulator (default: flat — no modulation).
    shape_mode:
        ``"warp"`` rescales interarrivals through the integrated
        intensity (all events survive); ``"thin"`` drops events
        probabilistically, keeping timestamps untouched.
    backend:
        Registered generator backend used to synthesize this cohort's
        streams.  The default is ``smm-1`` — the cheapest backend, the
        right tool for population-scale fan-out; use ``cpt-gpt`` where
        per-stream fidelity matters more than volume.
    weight:
        Relative share used when a population is resized as a whole
        (:meth:`UEPopulation.with_total_ues`).
    cells:
        Home-cell candidate names when the workload runs on a topology
        (empty = the topology scenario's placement, falling back to all
        cells).  Ignored without a topology.
    mobility:
        Mobility model for topology runs: a builtin name
        (``"stationary"``, ``"random-waypoint"``, ``"commuter"``) or a
        :class:`~repro.topology.mobility.MobilityModel` instance
        (``None`` = the topology scenario's assignment).  Ignored
        without a topology.
    """

    name: str
    scenario: ScenarioSpec | str
    num_ues: int | None = None
    shape: LoadShape = FLAT
    shape_mode: str = "warp"
    backend: str = "smm-1"
    weight: float = 1.0
    cells: tuple[str, ...] = ()
    mobility: object | None = None

    def __post_init__(self) -> None:
        if not _NAME_PATTERN.match(self.name):
            raise ValueError(
                f"cohort name {self.name!r} must match {_NAME_PATTERN.pattern}"
            )
        object.__setattr__(self, "scenario", get_scenario(self.scenario))
        if self.num_ues is None:
            object.__setattr__(self, "num_ues", self.scenario.num_ues)
        if self.num_ues < 0:
            raise ValueError("num_ues must be non-negative")
        if self.shape_mode not in _SHAPE_MODES:
            raise ValueError(
                f"shape_mode must be one of {_SHAPE_MODES}; got {self.shape_mode!r}"
            )
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        if not isinstance(self.shape, LoadShape):
            raise TypeError(f"shape must be a LoadShape; got {type(self.shape).__name__}")
        object.__setattr__(self, "cells", tuple(self.cells))

    @property
    def technology(self) -> str:
        return self.scenario.technology

    def scaled(self, factor: float) -> "Cohort":
        """This cohort with its UE count scaled by ``factor`` (rounded)."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return replace(self, num_ues=int(round(self.num_ues * factor)))


@dataclass(frozen=True)
class UEPopulation:
    """A composite workload: weighted cohorts sharing one technology.

    Cohorts must share a technology — their merged timeline feeds one
    control-plane anchor whose cost model covers a single event
    vocabulary.  ``topology`` names the registered topology scenario the
    workload runs on by default (``None`` = no topology: the
    pre-topology flat behavior).
    """

    name: str
    cohorts: tuple[Cohort, ...]
    description: str = ""
    topology: str | None = None

    def __post_init__(self) -> None:
        if not self.cohorts:
            raise ValueError("a population needs at least one cohort")
        object.__setattr__(self, "cohorts", tuple(self.cohorts))
        names = [cohort.name for cohort in self.cohorts]
        if len(set(names)) != len(names):
            raise ValueError(f"cohort names must be unique; got {names}")
        # No name may be a prefix of another: the merged timeline breaks
        # timestamp ties by (cohort, ue_id) while materialized traces
        # carry "{cohort}/{ue_id}" UE ids, and the prefix-free property
        # is what makes both orders identical.
        for first, second in zip(sorted(names), sorted(names)[1:]):
            if second.startswith(first):
                raise ValueError(
                    f"cohort name {first!r} is a prefix of {second!r}; "
                    "prefix-free names are required for deterministic merging"
                )
        technologies = {cohort.technology for cohort in self.cohorts}
        if len(technologies) > 1:
            raise ValueError(
                f"cohorts must share one technology; got {sorted(technologies)}"
            )

    # ------------------------------------------------------------------
    @property
    def technology(self) -> str:
        return self.cohorts[0].technology

    @property
    def vocabulary(self) -> EventVocabulary:
        return self.cohorts[0].scenario.vocabulary

    @property
    def cost_model(self) -> ServiceCostModel:
        """The MCN cost model matching this population's technology."""
        return LTE_COSTS if self.technology == "4G" else NR_COSTS

    @property
    def total_ues(self) -> int:
        return sum(cohort.num_ues for cohort in self.cohorts)

    # ------------------------------------------------------------------
    def scaled(self, factor: float) -> "UEPopulation":
        """Scale the population to ``round(total_ues * factor)`` UEs.

        The scaled total is apportioned across cohorts proportionally to
        their current counts (largest-remainder), so the result sums to
        exactly the rounded scaled total — per-cohort independent
        rounding could drift by up to one UE per cohort.
        """
        if factor < 0:
            raise ValueError("factor must be non-negative")
        counts = _apportion(
            int(round(self.total_ues * factor)),
            [float(cohort.num_ues) for cohort in self.cohorts],
        )
        return replace(
            self,
            cohorts=tuple(
                replace(cohort, num_ues=count)
                for cohort, count in zip(self.cohorts, counts)
            ),
        )

    def with_total_ues(self, total: int) -> "UEPopulation":
        """Resize to ``total`` UEs, splitting by cohort weight.

        Largest-remainder apportionment: the counts always sum to
        exactly ``total``.
        """
        counts = _apportion(
            total, [cohort.weight for cohort in self.cohorts]
        )
        return replace(
            self,
            cohorts=tuple(
                replace(cohort, num_ues=count)
                for cohort, count in zip(self.cohorts, counts)
            ),
        )

    def cohort(self, name: str) -> Cohort:
        """Look up one cohort by name."""
        for cohort in self.cohorts:
            if cohort.name == name:
                return cohort
        raise KeyError(
            f"no cohort {name!r} in population {self.name!r}; "
            f"have {[c.name for c in self.cohorts]}"
        )

    def summary(self) -> str:
        """One line per cohort — the CLI ``registry`` listing format."""
        lines = [
            f"{self.name}: {self.total_ues} UEs / {len(self.cohorts)} cohorts "
            f"({self.technology})"
        ]
        for cohort in self.cohorts:
            shape = type(cohort.shape).__name__
            lines.append(
                f"  {cohort.name}: {cohort.num_ues} x "
                f"{cohort.scenario.device_type} via {cohort.backend}, "
                f"shape {shape}/{cohort.shape_mode}"
            )
        return "\n".join(lines)
