"""Built-in composite workloads, registered in :data:`WORKLOADS`.

Each preset is a :class:`UEPopulation` that an MCN design study can pick
up by name (``Session.workload("stadium-flash-crowd")``, ``python -m
repro workload city-day``) and rescale freely — the registered sizes are
deliberately modest defaults; ``scaled()`` / ``with_total_ues()`` take
them to population scale.

* ``city-day`` — the §4.1 device mix (phones, tablets, connected cars)
  over an evening span, each cohort warped by its device profile's own
  diurnal curve;
* ``stadium-flash-crowd`` — a diurnal background city plus a stadium
  cohort whose events compress into a trapezoidal ingress → match →
  egress surge;
* ``iot-firmware-storm`` — a connected-device fleet rebooting after a
  firmware push: near-silence, then a registration storm with
  exponential relaxation, over a phone background;
* ``handover-storm`` — a mobility burst driven by the ``motorway``
  topology: a connected-car convoy sweeps an 8-cell corridor around
  08:40, so the handover storm emerges from actual cell crossings
  (HO + TAU injections) instead of a canned event-mix surge.
"""

from __future__ import annotations

from ..api.registry import register_workload
from ..api.scenario import ScenarioSpec
from ..trace.device import get_profile
from ..trace.schema import DeviceType
from .population import Cohort, UEPopulation
from .shapes import DiurnalShape, FlashCrowdShape, RecoveryStormShape

__all__ = ["CITY_DAY", "STADIUM_FLASH_CROWD", "IOT_FIRMWARE_STORM", "HANDOVER_STORM"]

_HOUR = 3600.0


def _scenario(name: str, device_type: str, hour: int, num_ues: int,
              duration: float = _HOUR) -> ScenarioSpec:
    return ScenarioSpec(
        name=name, device_type=device_type, hour=hour, num_ues=num_ues,
        duration=duration, seed=7,
    )


def _diurnal(device_type: str, exponent: float = 1.0) -> DiurnalShape:
    return DiurnalShape(profile=get_profile(device_type).diurnal, exponent=exponent)


CITY_DAY = UEPopulation(
    name="city-day",
    description="evening device mix, each cohort on its own diurnal curve",
    cohorts=(
        Cohort(
            name="phones",
            scenario=_scenario("city-phones", DeviceType.PHONE, 17, 1200, 4 * _HOUR),
            shape=_diurnal(DeviceType.PHONE),
            weight=6.0,
        ),
        Cohort(
            name="tablets",
            scenario=_scenario("city-tablets", DeviceType.TABLET, 17, 400, 4 * _HOUR),
            shape=_diurnal(DeviceType.TABLET),
            weight=2.0,
        ),
        Cohort(
            name="cars",
            scenario=_scenario(
                "city-cars", DeviceType.CONNECTED_CAR, 17, 400, 4 * _HOUR
            ),
            shape=_diurnal(DeviceType.CONNECTED_CAR),
            weight=2.0,
        ),
    ),
)

STADIUM_FLASH_CROWD = UEPopulation(
    name="stadium-flash-crowd",
    description="city background + stadium cohort surging through a match window",
    cohorts=(
        Cohort(
            name="background",
            scenario=_scenario("stadium-bg", DeviceType.PHONE, 18, 800, 4 * _HOUR),
            shape=_diurnal(DeviceType.PHONE),
            weight=2.0,
        ),
        Cohort(
            name="crowd",
            scenario=_scenario("stadium-crowd", DeviceType.PHONE, 18, 1600, 4 * _HOUR),
            # Gates open 30 min after the window, 30 min ingress ramp,
            # 2 h match hold, 30 min egress.
            shape=FlashCrowdShape(
                start=18 * _HOUR + 1800.0,
                ramp_seconds=1800.0,
                hold_seconds=2 * _HOUR,
                peak=8.0,
            ),
            weight=4.0,
        ),
    ),
)

IOT_FIRMWARE_STORM = UEPopulation(
    name="iot-firmware-storm",
    description="IoT fleet re-registering after a firmware push, over phone background",
    cohorts=(
        Cohort(
            name="city",
            scenario=_scenario("iot-bg", DeviceType.PHONE, 3, 300, 2 * _HOUR),
            weight=1.0,
        ),
        Cohort(
            name="fleet",
            scenario=_scenario(
                "iot-fleet", DeviceType.CONNECTED_CAR, 3, 1500, 2 * _HOUR
            ),
            # Maintenance-window push at 03:20: the fleet is near-silent
            # until the reboot, then storms back with a 10-min tail.
            shape=RecoveryStormShape(
                recovery=3 * _HOUR + 1200.0, peak=25.0, decay_seconds=600.0
            ),
            weight=5.0,
        ),
    ),
)

HANDOVER_STORM = UEPopulation(
    name="handover-storm",
    description=(
        "mobility burst: a car convoy sweeps the motorway corridor, "
        "raining topology-driven handovers over background"
    ),
    # The storm is topology-driven: the convoy cohort's commuter
    # mobility walks the 8-cell motorway corridor around 08:40, and the
    # TopologyRuntime injects the HO/TAU wave at the actual crossings —
    # no canned event-mix surge.
    topology="motorway",
    cohorts=(
        Cohort(
            name="ambient",
            scenario=_scenario("ho-bg", DeviceType.PHONE, 8, 500, 2 * _HOUR),
            weight=1.0,
        ),
        Cohort(
            name="convoy",
            scenario=_scenario(
                "ho-convoy", DeviceType.CONNECTED_CAR, 8, 900, 2 * _HOUR
            ),
            weight=2.0,
        ),
    ),
)

register_workload("city-day", aliases=("city",))(CITY_DAY)
register_workload("stadium-flash-crowd", aliases=("stadium",))(STADIUM_FLASH_CROWD)
register_workload("iot-firmware-storm", aliases=("iot-storm",))(IOT_FIRMWARE_STORM)
register_workload("handover-storm", aliases=("ho-storm",))(HANDOVER_STORM)
