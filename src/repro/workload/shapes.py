"""Composable time-varying load shapes.

A :class:`LoadShape` is a strictly positive intensity multiplier over
absolute event time: ``intensity(t) == 2.0`` means the shaped workload
fires control events at twice its baseline rate around ``t``.  Shapes
compose multiplicatively (``diurnal * flash_crowd``), mirroring the
log-link composition of :class:`~repro.trace.diurnal.DiurnalProfile`.

Two application mechanisms are provided, both deterministic:

* **compression** (:meth:`LoadShape.warp`) — a time warp through the
  inverse integrated intensity: every event survives, but interarrivals
  shrink where the intensity is above one and stretch where it is below
  (the classic inhomogeneous-process time change ``t = Λ⁻¹(u)``);
* **thinning** (:meth:`LoadShape.thin`) — Lewis–Shedler thinning: event
  times are kept as generated and each event survives with probability
  ``intensity(t) / max_intensity``, carving the shape out of a
  homogeneous baseline without moving any timestamp.

The concrete shapes cover the MCN design-study repertoire: diurnal
drift, stadium flash crowds (ingress/egress), outage-recovery
registration storms, handover storms, and ramp/step profiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..trace.diurnal import DiurnalProfile

__all__ = [
    "LoadShape",
    "FlatShape",
    "DiurnalShape",
    "FlashCrowdShape",
    "RecoveryStormShape",
    "RampShape",
    "StepShape",
    "ComposedShape",
    "FLAT",
]

_SECONDS_PER_HOUR = 3600.0

#: Intensities are floored here so the warp integral stays invertible
#: (a zero-intensity stretch would make Λ flat and the inverse ambiguous).
_MIN_INTENSITY = 1e-9


class LoadShape:
    """Base class: a positive intensity multiplier over absolute time."""

    #: Grid step (seconds) used to integrate the intensity for the warp.
    warp_resolution: float = 30.0

    def intensity(self, t: float) -> float:
        """Rate multiplier at absolute time ``t`` (seconds)."""
        raise NotImplementedError

    def intensity_series(self, times: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`intensity`, floored to stay positive."""
        values = np.array(
            [self.intensity(float(t)) for t in np.asarray(times, dtype=np.float64)]
        )
        return np.maximum(values, _MIN_INTENSITY)

    # ------------------------------------------------------------------
    # Application mechanisms
    # ------------------------------------------------------------------
    def warp(self, times: np.ndarray, origin: float) -> np.ndarray:
        """Map baseline event times to shaped times (compression).

        ``times`` are event timestamps generated under flat unit
        intensity, all ``>= origin``.  The warped time ``t`` of a
        baseline time ``u`` solves ``∫_origin^t intensity(s) ds =
        u - origin``, so the local event rate at ``t`` is multiplied by
        ``intensity(t)``.  The map is monotone, hence per-stream event
        order is preserved.
        """
        times = np.asarray(times, dtype=np.float64)
        if times.size == 0:
            return times.copy()
        if np.any(times < origin - 1e-9):
            raise ValueError("warp: event times must not precede the origin")
        target = float(times.max()) - origin
        step = float(self.warp_resolution)
        if step <= 0:
            raise ValueError("warp_resolution must be positive")
        # Grow the grid until the integrated intensity covers the last
        # (unit-rate) event time; low intensities stretch the window.
        # Spans are quantized to power-of-two multiples of the step so
        # the cached table is shared across every stream of a cohort.
        span = step
        while span < target:
            span *= 2.0
        while True:
            grid, cumulative = _warp_table(self, origin, span)
            if cumulative[-1] >= target or span > 1e12:
                break
            span *= 2.0
        return np.interp(times - origin, cumulative, grid)

    def thin(
        self, times: np.ndarray, rng: np.random.Generator, *, peak: float | None = None
    ) -> np.ndarray:
        """Boolean keep-mask over ``times`` (Lewis–Shedler thinning).

        Each event at time ``t`` is kept with probability
        ``intensity(t) / peak`` where ``peak`` defaults to the maximum
        intensity over the event times, so the busiest instant keeps the
        full baseline rate.
        """
        times = np.asarray(times, dtype=np.float64)
        if times.size == 0:
            return np.zeros(0, dtype=bool)
        rates = self.intensity_series(times)
        ceiling = float(rates.max()) if peak is None else float(peak)
        if ceiling <= 0:
            raise ValueError("thinning peak must be positive")
        return rng.random(times.size) < np.minimum(rates / ceiling, 1.0)

    # ------------------------------------------------------------------
    def __mul__(self, other: "LoadShape") -> "ComposedShape":
        if not isinstance(other, LoadShape):
            return NotImplemented
        return ComposedShape(shapes=(self, other))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


@lru_cache(maxsize=128)
def _warp_table(
    shape: LoadShape, origin: float, span: float
) -> tuple[np.ndarray, np.ndarray]:
    """Cached ``(grid, cumulative ∫intensity)`` over ``[origin, origin+span]``.

    Concrete shapes are frozen dataclasses (hashable), so every stream
    of a cohort shares one table instead of re-integrating per stream.
    The returned arrays are shared — callers must treat them read-only.
    """
    step = float(shape.warp_resolution)
    grid = np.arange(origin, origin + span + step, step)
    rates = shape.intensity_series(grid)
    # Trapezoid cumulative integral of the intensity over the grid.
    cumulative = np.concatenate(
        ([0.0], np.cumsum(0.5 * (rates[1:] + rates[:-1]) * np.diff(grid)))
    )
    return grid, cumulative


@dataclass(frozen=True)
class FlatShape(LoadShape):
    """Constant multiplier (the identity shape at ``level=1``)."""

    level: float = 1.0

    def __post_init__(self) -> None:
        if self.level <= 0:
            raise ValueError("level must be positive")

    def intensity(self, t: float) -> float:
        return self.level


#: The identity shape shared by unshaped cohorts.
FLAT = FlatShape()


@dataclass(frozen=True)
class DiurnalShape(LoadShape):
    """Hour-of-day drift, reusing a :class:`DiurnalProfile`.

    ``intensity(t) = profile.activity(t / 3600 mod 24) ** exponent`` —
    the exponent lets a cohort exaggerate or soften its device profile's
    diurnal swing without redefining the harmonics.
    """

    profile: DiurnalProfile
    exponent: float = 1.0

    def intensity(self, t: float) -> float:
        hour = (t / _SECONDS_PER_HOUR) % 24.0
        return float(self.profile.activity(hour)) ** self.exponent


@dataclass(frozen=True)
class FlashCrowdShape(LoadShape):
    """Stadium ingress/hold/egress: a trapezoidal surge over baseline.

    Intensity ramps linearly from ``baseline`` to ``peak`` over
    ``ramp_seconds`` starting at ``start``, holds at ``peak`` for
    ``hold_seconds`` (the event itself), then ramps back down — the
    load profile a venue cell sees around a match.
    """

    start: float
    ramp_seconds: float = 1800.0
    hold_seconds: float = 3600.0
    peak: float = 8.0
    baseline: float = 1.0

    def __post_init__(self) -> None:
        if self.ramp_seconds < 0 or self.hold_seconds < 0:
            raise ValueError("ramp/hold durations must be non-negative")
        if self.peak <= 0 or self.baseline <= 0:
            raise ValueError("peak and baseline must be positive")

    def intensity(self, t: float) -> float:
        rise_end = self.start + self.ramp_seconds
        fall_start = rise_end + self.hold_seconds
        fall_end = fall_start + self.ramp_seconds
        if t <= self.start or t >= fall_end:
            return self.baseline
        if t < rise_end:
            frac = (t - self.start) / max(self.ramp_seconds, 1e-12)
        elif t <= fall_start:
            frac = 1.0
        else:
            frac = (fall_end - t) / max(self.ramp_seconds, 1e-12)
        return self.baseline + (self.peak - self.baseline) * frac


@dataclass(frozen=True)
class RecoveryStormShape(LoadShape):
    """Outage-recovery storm: a spike at ``recovery`` with exponential decay.

    When coverage returns (or a firmware push reboots an IoT fleet),
    every affected UE re-registers nearly at once: intensity jumps to
    ``peak`` at ``recovery`` and relaxes back to ``baseline`` with time
    constant ``decay_seconds``.  Before the recovery instant the cohort
    sits at ``quiet`` (the outage itself).
    """

    recovery: float
    peak: float = 20.0
    decay_seconds: float = 600.0
    baseline: float = 1.0
    quiet: float = 0.05

    def __post_init__(self) -> None:
        if self.peak <= 0 or self.baseline <= 0 or self.quiet <= 0:
            raise ValueError("peak, baseline and quiet must be positive")
        if self.decay_seconds <= 0:
            raise ValueError("decay_seconds must be positive")

    def intensity(self, t: float) -> float:
        if t < self.recovery:
            return self.quiet
        relax = float(np.exp(-(t - self.recovery) / self.decay_seconds))
        return self.baseline + (self.peak - self.baseline) * relax


@dataclass(frozen=True)
class RampShape(LoadShape):
    """Linear ramp from ``start_level`` to ``end_level`` over [t0, t1]."""

    t0: float
    t1: float
    start_level: float = 1.0
    end_level: float = 2.0

    def __post_init__(self) -> None:
        if self.t1 <= self.t0:
            raise ValueError("t1 must be greater than t0")
        if self.start_level <= 0 or self.end_level <= 0:
            raise ValueError("levels must be positive")

    def intensity(self, t: float) -> float:
        if t <= self.t0:
            return self.start_level
        if t >= self.t1:
            return self.end_level
        frac = (t - self.t0) / (self.t1 - self.t0)
        return self.start_level + (self.end_level - self.start_level) * frac


@dataclass(frozen=True)
class StepShape(LoadShape):
    """Instantaneous level change at ``at`` (before → after)."""

    at: float
    before: float = 1.0
    after: float = 2.0

    def __post_init__(self) -> None:
        if self.before <= 0 or self.after <= 0:
            raise ValueError("levels must be positive")

    def intensity(self, t: float) -> float:
        return self.before if t < self.at else self.after


@dataclass(frozen=True)
class ComposedShape(LoadShape):
    """Product of component intensities (built by ``shape_a * shape_b``)."""

    shapes: tuple[LoadShape, ...]

    def __post_init__(self) -> None:
        if not self.shapes:
            raise ValueError("ComposedShape needs at least one component")

    def intensity(self, t: float) -> float:
        value = 1.0
        for shape in self.shapes:
            value *= shape.intensity(t)
        return value
