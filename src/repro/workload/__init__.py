"""``repro.workload`` — population-scale workload engine.

The layer between generation and the MCN consumers: composable UE
cohorts (:class:`Cohort` / :class:`UEPopulation`), time-varying load
shapes (:mod:`repro.workload.shapes`), and a bounded-memory streaming
merge of per-shard, per-cohort event streams into one event-time
ordered timeline (:class:`Workload` / :func:`merge_timelines`) that
feeds :class:`~repro.mcn.simulator.MCNSimulator` and
:func:`~repro.mcn.autoscale.simulate_autoscaling` without materializing
a trace::

    from repro.workload import Workload, get_workload

    report = Workload("stadium-flash-crowd", seed=3, num_workers=4).simulate(workers=8)

Importing this package registers the built-in composite workloads
(``city-day``, ``stadium-flash-crowd``, ``iot-firmware-storm``,
``handover-storm``) in :data:`repro.api.registry.WORKLOADS`.
"""

from .population import Cohort, UEPopulation
from .presets import (
    CITY_DAY,
    HANDOVER_STORM,
    IOT_FIRMWARE_STORM,
    STADIUM_FLASH_CROWD,
)
from .shapes import (
    FLAT,
    ComposedShape,
    DiurnalShape,
    FlashCrowdShape,
    FlatShape,
    LoadShape,
    RampShape,
    RecoveryStormShape,
    StepShape,
)
from .timeline import (
    CellTimelineEvent,
    MergedChunk,
    TimelineEvent,
    Workload,
    WorkloadRunResult,
    get_workload,
    merge_buffers,
    merge_timelines,
    pace,
)

__all__ = [
    "Cohort",
    "UEPopulation",
    "LoadShape",
    "FlatShape",
    "FLAT",
    "DiurnalShape",
    "FlashCrowdShape",
    "RecoveryStormShape",
    "RampShape",
    "StepShape",
    "ComposedShape",
    "TimelineEvent",
    "CellTimelineEvent",
    "MergedChunk",
    "merge_buffers",
    "merge_timelines",
    "pace",
    "Workload",
    "WorkloadRunResult",
    "get_workload",
    "CITY_DAY",
    "STADIUM_FLASH_CROWD",
    "IOT_FIRMWARE_STORM",
    "HANDOVER_STORM",
]
