"""``repro.tokenization`` — multi-modal token encoding (Design 1 of the paper)."""

from .scaler import LogMinMaxScaler
from .tokenizer import StreamTokenizer, TokenizedStream

__all__ = ["LogMinMaxScaler", "StreamTokenizer", "TokenizedStream"]
