"""Interarrival-time scaling: ``log(x + 1)`` then min-max to [0, 1].

Design 1 of the paper: interarrival times span several orders of
magnitude with mass concentrated at small values (Figure 7), so CPT-GPT
log-scales them and then linearly maps the result to [0, 1], where 0 and
1 correspond to the dataset-wide minimum and maximum.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LogMinMaxScaler"]


@dataclass
class LogMinMaxScaler:
    """Fitted ``log1p`` + min-max transform.

    Use :meth:`fit` (or :meth:`from_bounds` for known bounds) before
    calling :meth:`transform` / :meth:`inverse`.
    """

    log_min: float | None = None
    log_max: float | None = None

    @property
    def fitted(self) -> bool:
        return self.log_min is not None and self.log_max is not None

    def fit(self, values: np.ndarray) -> "LogMinMaxScaler":
        """Fit bounds from raw interarrival times (seconds, >= 0)."""
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            raise ValueError("cannot fit scaler on empty data")
        if np.any(values < 0):
            raise ValueError("interarrival times must be non-negative")
        logged = np.log1p(values)
        self.log_min = float(logged.min())
        self.log_max = float(logged.max())
        return self

    @classmethod
    def from_bounds(cls, min_seconds: float, max_seconds: float) -> "LogMinMaxScaler":
        """Construct directly from raw-seconds bounds."""
        if min_seconds < 0 or max_seconds < min_seconds:
            raise ValueError(
                f"invalid bounds: min={min_seconds}, max={max_seconds}"
            )
        return cls(log_min=float(np.log1p(min_seconds)), log_max=float(np.log1p(max_seconds)))

    def _span(self) -> float:
        if not self.fitted:
            raise RuntimeError("scaler is not fitted")
        span = self.log_max - self.log_min
        # Degenerate (constant) data: avoid division by zero; transform
        # maps everything to 0 and inverse returns the constant.
        return span if span > 0 else 1.0

    def transform(self, values: np.ndarray) -> np.ndarray:
        """Seconds -> [0, 1] (values outside the fitted range are clipped)."""
        span = self._span()  # raises if unfitted
        values = np.asarray(values, dtype=np.float64)
        scaled = (np.log1p(values) - self.log_min) / span
        return np.clip(scaled, 0.0, 1.0)

    def inverse(self, scaled: np.ndarray) -> np.ndarray:
        """[0, 1] -> seconds (input clipped into [0, 1] first)."""
        scaled = np.clip(np.asarray(scaled, dtype=np.float64), 0.0, 1.0)
        logged = scaled * self._span() + self.log_min
        return np.expm1(logged)

    # ------------------------------------------------------------------
    # Persistence (travels inside model checkpoints)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        if not self.fitted:
            raise RuntimeError("cannot serialize an unfitted scaler")
        return {"log_min": self.log_min, "log_max": self.log_max}

    @classmethod
    def from_dict(cls, payload: dict) -> "LogMinMaxScaler":
        return cls(log_min=float(payload["log_min"]), log_max=float(payload["log_max"]))
