"""Multi-modal tokenization for control-plane streams (Design 1, Fig. 3).

Each sample becomes one token: the concatenation of three sub-tokens —

* event type: one-hot over the vocabulary (6 classes in 4G),
* interarrival time: one scalar, log-scaled then min-max'd to [0, 1],
* stop flag: one-hot over {continue, stop} (2 classes).

For the 4G vocabulary this gives the paper's ``d_token = 6 + 1 + 2 = 9``.
The first token of every stream carries interarrival 0 and stop 0; the
last token carries stop 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..statemachine.events import EventVocabulary, LTE_EVENTS, NR_EVENTS
from ..trace.dataset import TraceDataset
from ..trace.schema import Stream
from .scaler import LogMinMaxScaler

__all__ = ["TokenizedStream", "StreamTokenizer"]

_VOCABULARY_TAGS = {"4G": LTE_EVENTS, "5G": NR_EVENTS}


@dataclass(frozen=True)
class TokenizedStream:
    """Decoded view of a token matrix."""

    event_indices: np.ndarray  # (T,) int
    interarrivals_scaled: np.ndarray  # (T,) float in [0, 1]
    stop_flags: np.ndarray  # (T,) int in {0, 1}


class StreamTokenizer:
    """Encode/decode streams to/from ``(T, d_token)`` matrices.

    Parameters
    ----------
    vocabulary:
        The event vocabulary (fixes the one-hot width).
    scaler:
        A fitted :class:`LogMinMaxScaler`; use :meth:`fit` to derive one
        from a training dataset.
    """

    def __init__(
        self, vocabulary: EventVocabulary, scaler: LogMinMaxScaler | None = None
    ) -> None:
        self.vocabulary = vocabulary
        self.scaler = scaler if scaler is not None else LogMinMaxScaler()

    # Layout: [event one-hot | interarrival | stop one-hot]
    @property
    def num_events(self) -> int:
        return len(self.vocabulary)

    @property
    def d_token(self) -> int:
        return self.num_events + 1 + 2

    @property
    def iat_column(self) -> int:
        return self.num_events

    @property
    def stop_columns(self) -> slice:
        return slice(self.num_events + 1, self.num_events + 3)

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, dataset: TraceDataset) -> "StreamTokenizer":
        """Fit the interarrival scaler on every delta in ``dataset``."""
        deltas = [s.interarrivals() for s in dataset if len(s) > 0]
        if not deltas:
            raise ValueError("cannot fit tokenizer on an empty dataset")
        self.scaler.fit(np.concatenate(deltas))
        return self

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode(self, stream: Stream) -> np.ndarray:
        """Encode one stream into a ``(T, d_token)`` float matrix."""
        if len(stream) == 0:
            raise ValueError(f"stream {stream.ue_id} is empty")
        indices = np.array(
            [self.vocabulary.index(e) for e in stream.event_names()], dtype=np.int64
        )
        scaled = self.scaler.transform(stream.interarrivals())
        scaled[0] = 0.0  # the first token always carries interarrival zero
        stops = np.zeros(len(stream), dtype=np.int64)
        stops[-1] = 1
        return self.assemble(indices, scaled, stops)

    def assemble(
        self,
        event_indices: np.ndarray,
        interarrivals_scaled: np.ndarray,
        stop_flags: np.ndarray,
    ) -> np.ndarray:
        """Build a token matrix from decoded fields (generation path)."""
        event_indices = np.asarray(event_indices, dtype=np.int64)
        interarrivals_scaled = np.asarray(interarrivals_scaled, dtype=np.float64)
        stop_flags = np.asarray(stop_flags, dtype=np.int64)
        length = event_indices.shape[0]
        if interarrivals_scaled.shape[0] != length or stop_flags.shape[0] != length:
            raise ValueError("field arrays must have equal length")
        tokens = np.zeros((length, self.d_token), dtype=np.float64)
        tokens[np.arange(length), event_indices] = 1.0
        tokens[:, self.iat_column] = np.clip(interarrivals_scaled, 0.0, 1.0)
        tokens[np.arange(length), self.num_events + 1 + stop_flags] = 1.0
        return tokens

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def decode_fields(self, tokens: np.ndarray) -> TokenizedStream:
        """Split a token matrix back into its three fields."""
        tokens = np.asarray(tokens)
        if tokens.ndim != 2 or tokens.shape[1] != self.d_token:
            raise ValueError(
                f"expected (T, {self.d_token}) token matrix; got {tokens.shape}"
            )
        events = tokens[:, : self.num_events].argmax(axis=1)
        iat = tokens[:, self.iat_column]
        stops = tokens[:, self.stop_columns].argmax(axis=1)
        return TokenizedStream(events, iat.copy(), stops)

    def decode(
        self,
        tokens: np.ndarray,
        ue_id: str,
        device_type: str,
        start_time: float = 0.0,
    ) -> Stream:
        """Reconstruct a :class:`Stream` from a token matrix.

        Interarrivals are inverse-transformed to seconds and accumulated
        into absolute timestamps starting at ``start_time``.
        """
        fields = self.decode_fields(tokens)
        seconds = self.scaler.inverse(fields.interarrivals_scaled)
        seconds[0] = 0.0
        timestamps = start_time + np.cumsum(seconds)
        names = [self.vocabulary.name(int(i)) for i in fields.event_indices]
        return Stream.from_arrays(ue_id, device_type, timestamps, names)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        tag = None
        for name, vocab in _VOCABULARY_TAGS.items():
            if vocab.names == self.vocabulary.names:
                tag = name
        payload = {"scaler": self.scaler.to_dict()}
        if tag is not None:
            payload["vocabulary"] = tag
        else:
            payload["event_names"] = list(self.vocabulary.names)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "StreamTokenizer":
        if "vocabulary" in payload:
            vocabulary = _VOCABULARY_TAGS[payload["vocabulary"]]
        else:
            vocabulary = EventVocabulary(tuple(payload["event_names"]))
        return cls(vocabulary, LogMinMaxScaler.from_dict(payload["scaler"]))
