"""Line-rate conformance oracle: vectorized 3GPP state-machine replay.

:class:`~repro.statemachine.replay.DatasetReplay` steps one Python
``StateMachine`` per stream — exact, but far too slow to validate the
population-scale timelines :mod:`repro.workload` streams out.  This
module compiles a :class:`~repro.statemachine.base.MachineSpec` into a
dense integer transition-lookup table and replays whole batches of
streams as numpy index operations, position by position across every
active stream at once: total work is ``sum(len(stream))`` table lookups
regardless of batch size.

Semantics are *byte-identical* to the legacy replay path (pinned by the
parity tests in ``tests/validate``):

* the machine starts undetermined and bootstraps on the first event
  with a deterministic destination; pre-bootstrap events are excluded
  from violation accounting,
* a violating event leaves the state unchanged and is tallied under the
  paper's ``(state label, event)`` convention (release sub-states
  collapse to their family label),
* an unknown event raises ``KeyError`` once the machine has started and
  is silently skipped before bootstrap — exactly the legacy behavior.

Two consumption modes share the compiled table:

* **batch** — :meth:`TransitionOracle.validate_buffer` validates the
  compact columnar shard buffers of
  :class:`~repro.workload.timeline.Workload` (and
  :meth:`TransitionOracle.replay_dataset` a materialized
  :class:`~repro.trace.dataset.TraceDataset`) fully vectorized;
* **streaming** — :meth:`OracleValidator.observe_event` steps one event
  at a time with O(#live UEs) state, the tee mode
  :class:`~repro.mcn.simulator.MCNSimulator` accepts.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

import numpy as np

from ..statemachine.base import MachineSpec
from ..statemachine.replay import SUB_STATE_FAMILIES
from ..trace.dataset import TraceDataset

__all__ = ["TransitionOracle", "ConformanceTally", "ConformanceReport", "OracleValidator"]

#: Table sentinel: the (state, event) pair is not a legal transition.
_VIOLATION = -1
#: Table sentinel: the event is outside the machine's vocabulary while
#: the machine is live (legacy ``StateMachine.step`` raises KeyError).
_UNKNOWN = -2

#: Compiled oracles keyed by spec identity (MachineSpec holds dicts and
#: is unhashable; each cached oracle keeps its spec alive, so ids stay
#: valid).  FIFO-bounded so dynamically built specs cannot pin an
#: unbounded number of compiled tables.
_CACHE: dict[int, "TransitionOracle"] = {}
_CACHE_MAX = 16


@dataclass
class ConformanceTally:
    """Mergeable violation counters for a batch of replayed streams.

    ``pattern_counts`` is a dense ``(num_states, num_events)`` int64
    matrix of per-(state, event) violation tallies in the owning
    oracle's encoding; :meth:`TransitionOracle.top_patterns` folds it to
    the paper's label convention.
    """

    counted_events: int = 0
    violating_events: int = 0
    total_events: int = 0
    streams: int = 0
    violating_streams: int = 0
    bootstrapped_streams: int = 0
    pattern_counts: np.ndarray = field(default_factory=lambda: np.zeros((0, 0), np.int64))

    @property
    def event_violation_rate(self) -> float:
        """Fraction of counted (post-bootstrap) events that violate."""
        if self.counted_events == 0:
            return 0.0
        return self.violating_events / self.counted_events

    @property
    def stream_violation_rate(self) -> float:
        """Fraction of streams with at least one violating event."""
        if self.streams == 0:
            return 0.0
        return self.violating_streams / self.streams

    def merge(self, other: "ConformanceTally") -> "ConformanceTally":
        """This tally plus ``other`` (new object; inputs untouched)."""
        patterns = self.pattern_counts
        if patterns.size == 0:
            patterns = other.pattern_counts
        elif other.pattern_counts.size:
            patterns = patterns + other.pattern_counts
        return ConformanceTally(
            counted_events=self.counted_events + other.counted_events,
            violating_events=self.violating_events + other.violating_events,
            total_events=self.total_events + other.total_events,
            streams=self.streams + other.streams,
            violating_streams=self.violating_streams + other.violating_streams,
            bootstrapped_streams=self.bootstrapped_streams + other.bootstrapped_streams,
            pattern_counts=patterns,
        )


class TransitionOracle:
    """A :class:`MachineSpec` compiled to a dense transition-lookup table.

    States are all ``(top, sub)`` pairs plus one pseudo-state for the
    undetermined (pre-bootstrap) machine; events are vocabulary indices
    plus one sentinel column for out-of-vocabulary names.  ``table[s, e]``
    is the landing state code, :data:`_VIOLATION` or :data:`_UNKNOWN`.
    """

    def __init__(self, spec: MachineSpec) -> None:
        spec.validate()
        self.spec = spec
        states = [
            (top, sub) for top in spec.top_states for sub in spec.sub_states[top]
        ]
        self.states: tuple[tuple[str, str], ...] = tuple(states)
        self.num_states = len(states)
        self.unboot = self.num_states
        self._state_of = {state: code for code, state in enumerate(states)}
        vocabulary = spec.vocabulary
        self.num_events = len(vocabulary)
        self.event_names = tuple(vocabulary)
        self._code_of = {name: code for code, name in enumerate(vocabulary)}
        #: Reporting label per state code (sub-state family or top state).
        self.state_labels = tuple(
            SUB_STATE_FAMILIES.get(sub, top) for top, sub in states
        )

        table = np.full((self.num_states + 1, self.num_events + 1), _VIOLATION, np.int32)
        table[:, self.num_events] = _UNKNOWN
        for code, (top, sub) in enumerate(states):
            for event_code, event in enumerate(vocabulary):
                target = spec.transitions.get((top, event))
                if target is None:
                    continue
                new_top, new_sub = target
                landing = new_sub.get(sub) if isinstance(new_sub, dict) else new_sub
                if landing is None:
                    continue
                table[code, event_code] = self._state_of[(new_top, landing)]
        # Undetermined machine: bootstrap events enter their destination,
        # everything else (unknown names included) is skipped uncounted.
        table[self.unboot, :] = self.unboot
        for event, destination in spec.bootstrap_events.items():
            table[self.unboot, self._code_of[event]] = self._state_of[destination]
        self.table = table

    @classmethod
    def for_spec(cls, spec: MachineSpec) -> "TransitionOracle":
        """The compiled oracle for ``spec`` (cached per spec object)."""
        oracle = _CACHE.get(id(spec))
        if oracle is None or oracle.spec is not spec:
            oracle = cls(spec)
            if len(_CACHE) >= _CACHE_MAX:
                _CACHE.pop(next(iter(_CACHE)))
            _CACHE[id(spec)] = oracle
        return oracle

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode_events(self, names: Iterable[str]) -> np.ndarray:
        """Vocabulary codes for ``names`` (unknown → the sentinel code)."""
        code_of = self._code_of
        unknown = self.num_events
        names = list(names)
        return np.fromiter(
            (code_of.get(name, unknown) for name in names),
            dtype=np.int32,
            count=len(names),
        )

    def empty_tally(self) -> ConformanceTally:
        return ConformanceTally(
            pattern_counts=np.zeros((self.num_states, self.num_events), np.int64)
        )

    # ------------------------------------------------------------------
    # Batch validation
    # ------------------------------------------------------------------
    def _validate_padded(
        self, padded: np.ndarray, lengths_desc: np.ndarray, total_events: int
    ) -> ConformanceTally:
        """Replay a padded code matrix whose rows are sorted longest-first.

        At position ``p`` only the first ``k`` rows (streams longer than
        ``p``) are touched, so the work is exactly ``total_events`` table
        lookups spread over ``max_len`` vectorized steps.
        """
        tally = self.empty_tally()
        num_streams = padded.shape[0]
        tally.streams = num_streams
        tally.total_events = total_events
        if num_streams == 0 or padded.shape[1] == 0:
            return tally
        ascending = lengths_desc[::-1]
        state = np.full(num_streams, self.unboot, dtype=np.int32)
        violated = np.zeros(num_streams, dtype=bool)
        counted = 0
        violating = 0
        table = self.table
        # Per-*position* wavefront: each iteration advances every
        # active stream with whole-column ops, so the loop count is
        # max stream length, not event count.
        # repro-lint: allow[hot-path-purity]
        for position in range(padded.shape[1]):
            active = num_streams - int(
                np.searchsorted(ascending, position, side="right")
            )
            if active == 0:
                break
            events = padded[:active, position]
            current = state[:active]
            landing = table[current, events]
            live = current != self.unboot
            if landing.min() == _UNKNOWN:
                # Only live rows can land on _UNKNOWN (the undetermined
                # row maps the sentinel column to itself), so this is
                # always the legacy step()-after-bootstrap KeyError.
                # Callers holding the name table re-raise with names.
                raise KeyError(
                    f"out-of-vocabulary event for machine {self.spec.name}"
                )
            counted += int(np.count_nonzero(live))
            violations = landing == _VIOLATION
            if violations.any():
                violating += int(np.count_nonzero(violations))
                np.add.at(
                    tally.pattern_counts,
                    (current[violations], events[violations]),
                    1,
                )
                violated[:active] |= violations
                landing = np.where(violations, current, landing)
            state[:active] = landing
        tally.counted_events = counted
        tally.violating_events = violating
        tally.violating_streams = int(np.count_nonzero(violated))
        tally.bootstrapped_streams = int(np.count_nonzero(state != self.unboot))
        return tally

    def _validate_grouped(
        self, codes: np.ndarray, lengths: np.ndarray
    ) -> ConformanceTally:
        """Replay flat event codes grouped contiguously per stream.

        ``codes`` holds every stream's events back to back (stream ``i``
        occupies ``lengths[:i].sum() : lengths[:i+1].sum()``); the pad
        into the longest-first matrix is a single vectorized scatter.
        """
        num_streams = int(lengths.size)
        if num_streams == 0:
            return self.empty_tally()
        total = int(codes.size)
        max_len = int(lengths.max()) if total else 0
        if max_len == 0:
            tally = self.empty_tally()
            tally.streams = num_streams
            return tally
        starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
        stream_of = np.repeat(np.arange(num_streams), lengths)
        positions = np.arange(total) - starts[stream_of]
        desc = np.argsort(-lengths, kind="stable")
        rank = np.empty(num_streams, dtype=np.int64)
        rank[desc] = np.arange(num_streams)
        padded = np.zeros((num_streams, max_len), dtype=np.int32)
        padded[rank[stream_of], positions] = codes
        return self._validate_padded(padded, lengths[desc], total_events=total)

    def step_grouped(
        self,
        codes: np.ndarray,
        lengths: np.ndarray,
        states: np.ndarray,
        pattern_counts: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, int, int]:
        """Step per-stream machines over grouped codes from explicit states.

        The resumable core of the streaming tee: like
        :meth:`_validate_grouped` but starting each stream at
        ``states[i]`` (its saved tee state) instead of undetermined, so a
        chunk's worth of events advances every touched stream in one
        vectorized pass.  ``pattern_counts`` is updated in place; returns
        ``(final states, violated mask, counted, violating)`` with the
        exact :meth:`OracleValidator.observe_event` semantics (violations
        keep the state, pre-bootstrap unknown events are skipped, a live
        out-of-vocabulary event raises ``KeyError``).
        """
        num_streams = int(lengths.size)
        finals = np.asarray(states, dtype=np.int32).copy()
        violated = np.zeros(num_streams, dtype=bool)
        total = int(codes.size)
        if num_streams == 0 or total == 0:
            return finals, violated, 0, 0
        max_len = int(lengths.max())
        starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
        stream_of = np.repeat(np.arange(num_streams), lengths)
        positions = np.arange(total) - starts[stream_of]
        desc = np.argsort(-lengths, kind="stable")
        rank = np.empty(num_streams, dtype=np.int64)
        rank[desc] = np.arange(num_streams)
        padded = np.zeros((num_streams, max_len), dtype=np.int32)
        padded[rank[stream_of], positions] = codes
        ascending = lengths[desc][::-1]
        state = finals[desc].copy()
        vio = np.zeros(num_streams, dtype=bool)
        counted = 0
        violating = 0
        table = self.table
        # Per-position wavefront (see _validate_padded).
        # repro-lint: allow[hot-path-purity]
        for position in range(max_len):
            active = num_streams - int(
                np.searchsorted(ascending, position, side="right")
            )
            if active == 0:
                break
            events = padded[:active, position]
            current = state[:active]
            landing = table[current, events]
            live = current != self.unboot
            if landing.min() == _UNKNOWN:
                raise KeyError(
                    f"out-of-vocabulary event for machine {self.spec.name}"
                )
            counted += int(np.count_nonzero(live))
            violations = landing == _VIOLATION
            if violations.any():
                violating += int(np.count_nonzero(violations))
                np.add.at(
                    pattern_counts,
                    (current[violations], events[violations]),
                    1,
                )
                vio[:active] |= violations
                landing = np.where(violations, current, landing)
            state[:active] = landing
        finals[desc] = state
        violated[desc] = vio
        return finals, violated, counted, violating

    def validate_codes(self, sequences: Sequence[np.ndarray]) -> ConformanceTally:
        """Replay per-stream event-code arrays (see :meth:`encode_events`)."""
        if not len(sequences):
            return self.empty_tally()
        lengths = np.fromiter(
            (len(seq) for seq in sequences), dtype=np.int64, count=len(sequences)
        )
        codes = (
            np.concatenate([np.asarray(seq, dtype=np.int32) for seq in sequences])
            if lengths.sum()
            else np.empty(0, dtype=np.int32)
        )
        return self._validate_grouped(codes, lengths)

    def validate_buffer(
        self,
        times: np.ndarray,
        ue_codes: np.ndarray,
        event_codes: np.ndarray,
        event_names: Sequence[str],
        num_ues: int | None = None,
    ) -> ConformanceTally:
        """Validate one columnar shard buffer, fully vectorized.

        ``event_codes`` index the shard-local ``event_names`` table and
        ``ue_codes`` the shard's UE table; rows may be interleaved across
        UEs but must be time-ordered within each UE (the shard buffers of
        :class:`~repro.workload.timeline.Workload` are, by construction —
        timestamps are not re-checked here).  No per-event Python runs:
        the only string work is the tiny shard-local event-name table.
        """
        ues = np.asarray(ue_codes, dtype=np.int64)
        if num_ues is None:
            num_ues = int(ues.max()) + 1 if ues.size else 0
        if num_ues == 0:
            return self.empty_tally()
        lookup = self.encode_events(event_names)
        events = lookup[np.asarray(event_codes, dtype=np.int64)]
        lengths = np.bincount(ues, minlength=num_ues)
        order = np.argsort(ues, kind="stable")  # groups by UE, keeps time order
        try:
            return self._validate_grouped(events[order], lengths)
        except KeyError:
            raise self._unknown_event_error(event_names) from None

    def replay_dataset(
        self, dataset: TraceDataset, *, check_times: bool = True
    ) -> ConformanceTally:
        """Replay a materialized dataset (the :func:`violation_stats` path).

        ``check_times`` preserves the legacy contract that out-of-order
        timestamps are a data bug (``ValueError``), not a violation.
        The per-stream object model is flattened once (one list
        comprehension per stream) and everything after that is
        vectorized.
        """
        lengths = np.fromiter(
            (len(stream) for stream in dataset), dtype=np.int64, count=len(dataset)
        )
        names: list[str] = []
        for stream in dataset:
            names.extend([event.event for event in stream.events])
        codes = self.encode_events(names)
        if check_times and codes.size:
            flat_times = np.fromiter(
                (
                    event.timestamp
                    for stream in dataset
                    for event in stream.events
                ),
                dtype=np.float64,
                count=codes.size,
            )
            decreasing = np.nonzero(np.diff(flat_times) < 0)[0] + 1
            if decreasing.size:
                is_start = np.zeros(codes.size, dtype=bool)
                starts = np.cumsum(lengths[:-1])
                is_start[starts[starts < codes.size]] = True
                if not np.all(is_start[decreasing]):
                    offender = int(decreasing[~is_start[decreasing]][0])
                    stream_index = int(
                        np.searchsorted(np.cumsum(lengths), offender, side="right")
                    )
                    raise ValueError(
                        f"timestamps must be non-decreasing in stream "
                        f"{dataset[stream_index].ue_id}"
                    )
        try:
            return self._validate_grouped(codes, lengths)
        except KeyError:
            raise self._unknown_event_error(names) from None

    def _unknown_event_error(self, names: Iterable[str]) -> KeyError:
        """The legacy-style KeyError naming the out-of-vocabulary events."""
        unknown = sorted({name for name in names if name not in self._code_of})
        return KeyError(
            f"unknown event(s) {unknown} for machine {self.spec.name}"
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def top_patterns(
        self, tally: ConformanceTally, k: int = 3
    ) -> list[tuple[tuple[str, str], float]]:
        """The ``k`` most frequent (state label, event) violation pairs.

        Shares are relative to counted events (Table 3's percentages);
        ties order deterministically by (count desc, label, event) —
        matching the legacy path's normalization.
        """
        if tally.counted_events == 0 or tally.pattern_counts.size == 0:
            return []
        folded: dict[tuple[str, str], int] = {}
        rows, cols = np.nonzero(tally.pattern_counts)
        for row, col in zip(rows, cols):
            pattern = (self.state_labels[row], self.event_names[col])
            folded[pattern] = folded.get(pattern, 0) + int(
                tally.pattern_counts[row, col]
            )
        ordered = sorted(folded.items(), key=lambda item: (-item[1], item[0]))
        return [
            (pattern, count / tally.counted_events)
            for pattern, count in ordered[:k]
        ]


@dataclass(frozen=True)
class ConformanceReport:
    """Aggregated conformance outcome of a validated run.

    ``per_cohort`` maps cohort names to their own
    :class:`ConformanceTally`; the scalar fields summarize the overall
    tally in :class:`~repro.metrics.violations.ViolationStats` terms.
    """

    machine: str
    event_rate: float
    stream_rate: float
    counted_events: int
    violating_events: int
    total_events: int
    streams: int
    violating_streams: int
    bootstrapped_streams: int
    top_patterns: tuple[tuple[tuple[str, str], float], ...]
    per_cohort: dict[str, ConformanceTally]

    def as_dict(self) -> dict:
        """JSON-serializable view (the scorecard's ``violations`` block)."""
        return {
            "machine": self.machine,
            "event_rate": self.event_rate,
            "stream_rate": self.stream_rate,
            "counted_events": self.counted_events,
            "violating_events": self.violating_events,
            "total_events": self.total_events,
            "streams": self.streams,
            "violating_streams": self.violating_streams,
            "bootstrapped_streams": self.bootstrapped_streams,
            "top_patterns": [
                [list(pattern), share] for pattern, share in self.top_patterns
            ],
            "per_cohort": {
                name: {
                    "event_rate": tally.event_violation_rate,
                    "stream_rate": tally.stream_violation_rate,
                    "counted_events": tally.counted_events,
                    "violating_events": tally.violating_events,
                    "streams": tally.streams,
                }
                for name, tally in sorted(self.per_cohort.items())
            },
        }


class OracleValidator:
    """Constant-memory streaming conformance checker.

    Plugs into :meth:`repro.workload.timeline.Workload.run` (vectorized
    shard-buffer mode via :meth:`observe_buffer`) and into
    :meth:`repro.mcn.simulator.MCNSimulator.run` as an event tee
    (:meth:`observe_event`, O(#live UEs) state).  Both modes accumulate
    into the same tallies; :meth:`report` summarizes.
    """

    name = "conformance"

    def __init__(self, spec: MachineSpec) -> None:
        self.oracle = TransitionOracle.for_spec(spec)
        self._total = self.oracle.empty_tally()
        self._per_cohort: dict[str, ConformanceTally] = {}
        # Per-event tee state.
        self._tee_states: dict = {}
        self._tee_violated: set = set()
        self._tee_counted = 0
        self._tee_violating = 0
        self._tee_total = 0
        self._tee_patterns = np.zeros(
            (self.oracle.num_states, self.oracle.num_events), np.int64
        )
        self._table_rows = self.oracle.table.tolist()
        # Cached event-name encoding for the columnar chunk tee,
        # invalidated when the chunk's (append-only) tables grow.
        self._chunk_tables = None
        self._chunk_names = 0
        self._chunk_codes: np.ndarray | None = None

    # ------------------------------------------------------------------
    def observe_buffer(
        self, times, ue_codes, event_codes, ue_ids, event_names, *, cohort: str
    ) -> None:
        """Validate one columnar shard buffer (the :class:`Workload` tee)."""
        tally = self.oracle.validate_buffer(
            times, ue_codes, event_codes, event_names, num_ues=len(ue_ids)
        )
        self._total = self._total.merge(tally)
        previous = self._per_cohort.get(cohort)
        self._per_cohort[cohort] = (
            tally if previous is None else previous.merge(tally)
        )

    def observe_dataset(self, dataset: TraceDataset, *, cohort: str = "") -> None:
        """Validate a materialized dataset into this validator's tallies."""
        tally = self.oracle.replay_dataset(dataset)
        self._total = self._total.merge(tally)
        if cohort:
            previous = self._per_cohort.get(cohort)
            self._per_cohort[cohort] = (
                tally if previous is None else previous.merge(tally)
            )

    def observe_event(self, timestamp: float, ue_key, event: str) -> None:
        """Step one event for ``ue_key`` (the :class:`MCNSimulator` tee).

        Every distinct ``ue_key`` counts as one stream; state is one int
        per live UE.
        """
        code = self.oracle._code_of.get(event)
        state = self._tee_states.get(ue_key, self.oracle.unboot)
        self._tee_total += 1
        if code is None:
            if state == self.oracle.unboot:
                # Pre-bootstrap unknown events are skipped, but the UE
                # still counts as a stream (batch-path parity).
                self._tee_states[ue_key] = state
                return
            raise KeyError(
                f"unknown event {event!r} for machine {self.oracle.spec.name}"
            )
        landing = self._table_rows[state][code]
        if state != self.oracle.unboot:
            self._tee_counted += 1
            if landing == _VIOLATION:
                self._tee_violating += 1
                self._tee_patterns[state, code] += 1
                self._tee_violated.add(ue_key)
                landing = state
        self._tee_states[ue_key] = landing

    def __call__(self, timestamp: float, ue_key, event: str) -> None:
        self.observe_event(timestamp, ue_key, event)

    def _chunk_lookup(self, tables) -> np.ndarray:
        names = tables.event_names
        if self._chunk_tables is not tables or self._chunk_names != len(names):
            self._chunk_codes = self.oracle.encode_events(names)
            self._chunk_tables = tables
            self._chunk_names = len(names)
        return self._chunk_codes

    def observe_chunk(self, chunk) -> None:
        """Step one merged columnar chunk through the tee, vectorized.

        Semantics match feeding :meth:`observe_event` every decoded event
        of the chunk in order, with O(#live UEs) state.  Stream keys are
        ``(cycle, global UE index)`` — cheaper than the decoded
        ``(cohort, ue_id)`` tuples and unique per replay cycle; a single
        validator must stick to one tee mode (chunks or events) per run
        so stream counts stay consistent.
        """
        n = chunk.num_events
        if n == 0:
            return
        tables = chunk.tables
        lookup = self._chunk_lookup(tables)
        order = np.argsort(chunk.ues, kind="stable")
        grouped_ues = chunk.ues[order]
        codes = lookup[chunk.events[order]]
        boundaries = np.r_[True, grouped_ues[1:] != grouped_ues[:-1]]
        starts = np.flatnonzero(boundaries)
        uniq = grouped_ues[starts]
        lengths = np.diff(np.append(starts, n))
        cycle = chunk.cycle
        unboot = self.oracle.unboot
        tee_states = self._tee_states
        keys = [(cycle, int(ue)) for ue in uniq]
        states = np.fromiter(
            (tee_states.get(key, unboot) for key in keys),
            dtype=np.int32,
            count=len(keys),
        )
        try:
            finals, violated, counted, violating = self.oracle.step_grouped(
                codes, lengths, states, self._tee_patterns
            )
        except KeyError:
            raise self.oracle._unknown_event_error(tables.event_names) from None
        self._tee_total += n
        self._tee_counted += counted
        self._tee_violating += violating
        for i, key in enumerate(keys):
            tee_states[key] = int(finals[i])
            if violated[i]:
                self._tee_violated.add(key)

    # ------------------------------------------------------------------
    @property
    def tally(self) -> ConformanceTally:
        """The combined tally across both consumption modes."""
        tee = ConformanceTally(
            counted_events=self._tee_counted,
            violating_events=self._tee_violating,
            total_events=self._tee_total,
            streams=len(self._tee_states),
            violating_streams=len(self._tee_violated),
            bootstrapped_streams=sum(
                1 for state in self._tee_states.values()
                if state != self.oracle.unboot
            ),
            pattern_counts=self._tee_patterns,
        )
        return self._total.merge(tee)

    def report(self, top_k: int = 3) -> ConformanceReport:
        tally = self.tally
        return ConformanceReport(
            machine=self.oracle.spec.name,
            event_rate=tally.event_violation_rate,
            stream_rate=tally.stream_violation_rate,
            counted_events=tally.counted_events,
            violating_events=tally.violating_events,
            total_events=tally.total_events,
            streams=tally.streams,
            violating_streams=tally.violating_streams,
            bootstrapped_streams=tally.bootstrapped_streams,
            top_patterns=tuple(self.oracle.top_patterns(tally, top_k)),
            per_cohort={
                name: replace(tally_)
                for name, tally_ in self._per_cohort.items()
            },
        )
