"""``repro.validate`` — streaming fidelity validation and the CI gate.

The acceptance layer between generation and consumption: constant-memory
checkers that tee the workload timeline (or any dataset) through a
line-rate conformance oracle and statistical sketches, aggregate the
outcomes into a threshold-driven :class:`FidelityScorecard`, and expose
the whole flow as ``Session.validate()``, ``Workload.run(validators=)``
and the ``repro fidelity-gate`` CLI command.

Modules
-------
* :mod:`~repro.validate.oracle` — :class:`TransitionOracle` compiles the
  LTE/NR :class:`~repro.statemachine.base.MachineSpec` into dense
  transition-lookup tables and validates event batches vectorized
  (byte-identical rates to the legacy
  :class:`~repro.statemachine.replay.DatasetReplay` path, ≥10x faster —
  see ``BENCH_validate.json``); :class:`OracleValidator` is the
  streaming wrapper.
* :mod:`~repro.validate.stats` — :class:`QuantizedHistogram`,
  :class:`ReservoirSample` and :class:`TrafficSketch`: bounded-memory
  inter-arrival / flow-length sketches with JSD, binned KS, and exact
  reservoir KS with bootstrap CIs (reusing
  :mod:`repro.metrics.bootstrap`).
* :mod:`~repro.validate.scorecard` — :class:`GateThresholds`,
  :class:`CheckResult`, :class:`FidelityScorecard` and
  :func:`build_scorecard`.
* :mod:`~repro.validate.gate` — :func:`run_gate`, the one-call CI entry
  point over registered scenarios and composite workloads.

Scorecard JSON schema (``repro/fidelity-scorecard/v1``)
-------------------------------------------------------
``FidelityScorecard.to_json()`` emits::

    {
      "schema": "repro/fidelity-scorecard/v1",
      "passed": true,                      // AND of every check
      "generated": {"streams": 500, "events": 12345},
      "checks": [                          // one entry per threshold check
        {
          "name": "event_violation_rate", // see below for the check names
          "value": 0.0012,                // observed value (lower = better)
          "threshold": 0.05,              // the GateThresholds ceiling
          "passed": true,
          "detail": "3/2500 events"       // free-form context ("" if none)
        },
        ...
      ],
      "violations": {                      // ConformanceReport.as_dict()
        "machine": "4G",
        "event_rate": 0.0012, "stream_rate": 0.01,
        "counted_events": 2500, "violating_events": 3,
        "total_events": 2600, "streams": 500,
        "violating_streams": 5, "bootstrapped_streams": 498,
        "top_patterns": [[["S1_REL_S", "HO"], 0.0008], ...],
        "per_cohort": {"phones": {"event_rate": ..., "stream_rate": ...,
                                   "counted_events": ..., "violating_events": ...,
                                   "streams": ...}, ...}
      },
      "distances": {                       // per metric, vs the reference
        "interarrival": {"jsd": 0.04, "ks": 0.08,
                          "ks_ci": [0.06, 0.11], "ks_confidence": 0.95},
        "flow_length":  {...}              // ks_ci absent when no bootstrap ran
      },
      "memorization": {                    // null when the check did not run
        "n": 10, "epsilon": 0.2, "max_ngrams": 2000,
        "repeat_fraction": 0.31
      }
    }

Check names: ``event_violation_rate``, ``stream_violation_rate``,
``interarrival_jsd``, ``interarrival_ks``, ``flow_length_jsd``,
``flow_length_ks``, and (when the memorization check runs)
``memorization_repeat_fraction``.  Every check is an upper bound; the
gate passes iff every ``value <= threshold``.
"""

from .gate import RollingGate, run_gate
from .oracle import (
    ConformanceReport,
    ConformanceTally,
    OracleValidator,
    TransitionOracle,
)
from .scorecard import (
    CheckResult,
    FidelityScorecard,
    GateThresholds,
    build_scorecard,
)
from .stats import (
    DistanceResult,
    QuantizedHistogram,
    ReservoirSample,
    StatsValidator,
    TrafficSketch,
)

__all__ = [
    "TransitionOracle",
    "ConformanceTally",
    "ConformanceReport",
    "OracleValidator",
    "QuantizedHistogram",
    "ReservoirSample",
    "DistanceResult",
    "TrafficSketch",
    "StatsValidator",
    "GateThresholds",
    "CheckResult",
    "FidelityScorecard",
    "build_scorecard",
    "run_gate",
    "RollingGate",
]
