"""The fidelity gate: one call from a named source to a pass/fail verdict.

:func:`run_gate` is what CI runs (``repro fidelity-gate``): resolve a
registered scenario or composite workload, synthesize a population with
the chosen backend, stream it through the conformance oracle and the
statistical sketches, compare against a reference capture, and return a
threshold-checked :class:`~repro.validate.scorecard.FidelityScorecard`.

Two source kinds share the surface:

* **scenario** ("phone-evening", ...) — a :class:`~repro.api.Session`
  synthesizes train/held-out captures, fits the backend, generates a
  population and validates it against the held-out capture, including
  the §5.6 memorization check against the *training* capture;
* **workload** ("city-day", "stadium-flash-crowd", ...) — the streaming
  :class:`~repro.workload.Workload` engine runs with validating tees at
  shard granularity (never materializing the timeline); the reference
  pools each cohort scenario's held-out capture.  The memorization
  check is scenario-only (it needs the generator's own training set)
  and is recorded as ``null``.
"""

from __future__ import annotations

import copy
from pathlib import Path

import numpy as np

from ..workload.population import UEPopulation
from .oracle import OracleValidator
from .scorecard import FidelityScorecard, GateThresholds, build_scorecard
from .stats import StatsValidator, TrafficSketch

__all__ = ["run_gate", "RollingGate"]

#: Memorization check configuration (§5.6's mid row, capped for CI);
#: shared with :meth:`repro.api.session.Session.validate`.
MEMO_N = 10
MEMO_EPSILON = 0.2
MEMO_MAX_NGRAMS = 2000


def run_gate(
    source: str | UEPopulation = "phone-evening",
    *,
    backend: str | None = None,
    count: int | None = None,
    scale: float = 1.0,
    seed: int = 0,
    thresholds: GateThresholds | None = None,
    memorization: bool = True,
    num_resamples: int = 200,
    report_path: str | Path | None = None,
    topology: str | None = None,
    chaos: str | None = None,
) -> FidelityScorecard:
    """Run the fidelity gate on a registered scenario or workload.

    Parameters
    ----------
    source:
        A scenario name, a workload name, or a :class:`UEPopulation`.
        Names are tried against the scenario registry first, then the
        workload registry.
    backend:
        Generator backend synthesizing the population.  ``None`` means
        ``smm-1`` in scenario mode and, in workload mode, each cohort's
        own configured backend (matching the ``workload`` CLI command);
        an explicit name overrides every cohort.
    count:
        Streams to generate in scenario mode (default: the scenario's
        UE count).  Ignored in workload mode — use ``scale``.
    scale:
        Workload-mode population scale factor.
    thresholds:
        Pass/fail ceilings (default: :class:`GateThresholds`).
    memorization:
        Run the n-gram memorization check (scenario mode only).
    report_path:
        When given, the scorecard JSON is written there.
    topology:
        Workload-mode topology scenario name overriding the
        population's default — the gate then judges the *annotated*
        timeline, mobility/chaos injections included, so every chaos
        scenario ships fidelity-gated.
    chaos:
        ``"off"``/``"none"`` disables the topology's chaos schedule.
    """
    from ..api.registry import SCENARIOS
    from ..workload import get_workload

    if isinstance(source, UEPopulation) or (
        isinstance(source, str) and source not in SCENARIOS
    ):
        scorecard = _workload_gate(
            get_workload(source),
            backend=backend,
            scale=scale,
            seed=seed,
            thresholds=thresholds,
            num_resamples=num_resamples,
            topology=topology,
            chaos=chaos,
        )
    else:
        if topology is not None or chaos is not None:
            raise ValueError(
                "topology/chaos apply to workload sources only; "
                f"{source!r} is a scenario"
            )
        scorecard = _scenario_gate(
            source,
            backend=backend,
            count=count,
            seed=seed,
            thresholds=thresholds,
            memorization=memorization,
            num_resamples=num_resamples,
        )
    if report_path is not None:
        scorecard.to_json(report_path)
    return scorecard


class RollingGate:
    """A fidelity gate re-evaluated continuously over a live stream.

    The batch :func:`run_gate` validates a finite run once; an always-on
    service needs the same verdict *while the stream is running*.  A
    ``RollingGate`` holds streaming validators (one
    :class:`OracleValidator`, one :class:`StatsValidator`) fed per event
    through :meth:`observe_event`, plus the pooled held-out reference
    every cohort scenario contributes — and can build a scorecard at any
    moment without disturbing the live tee state (the sketch is copied
    before folding open flows, so in-flight UE streams keep
    accumulating).

    ``poll`` is the cheap telemetry form: no bootstrap resampling, and
    each check carries the delta since the previous poll so a status
    display can show fidelity drift, not just the current value.
    """

    def __init__(
        self,
        population: UEPopulation,
        *,
        seed: int = 0,
        thresholds: GateThresholds | None = None,
    ) -> None:
        from ..api.session import _TEST_SEED_OFFSET
        from ..trace.synthetic import generate_trace

        self._seed = seed
        self._thresholds = thresholds
        spec = population.cohorts[0].scenario.machine_spec
        self.conformance = OracleValidator(spec)
        self.stats = StatsValidator(seed=seed)
        self._reference = TrafficSketch(seed=seed + 1)
        for cohort in population.cohorts:
            self._reference.observe_dataset(
                generate_trace(
                    cohort.scenario.trace_config(seed_offset=_TEST_SEED_OFFSET)
                )
            )
        self._previous: dict[str, float] = {}

    @property
    def validators(self) -> tuple[OracleValidator, StatsValidator]:
        """The streaming validators, for buffer-granularity tees."""
        return (self.conformance, self.stats)

    def observe_event(self, timestamp: float, ue_key, event: str) -> None:
        """Feed one merged-timeline event to both validators."""
        self.conformance.observe_event(timestamp, ue_key, event)
        self.stats.observe_event(timestamp, ue_key, event)

    def observe_chunk(self, chunk) -> None:
        """Feed one merged columnar chunk to both validators.

        The chunk-native tee the service hot path uses when no event
        objects exist; don't mix with :meth:`observe_event` in one run
        (the two modes key streams differently).
        """
        self.conformance.observe_chunk(chunk)
        self.stats.observe_chunk(chunk)

    def scorecard(
        self, *, final: bool = False, num_resamples: int = 0
    ) -> FidelityScorecard:
        """Scorecard over everything observed so far.

        With ``final=False`` (the rolling default) the live sketch is
        deep-copied and open flows folded into the *copy*, so calling
        again later still sees every in-flight UE stream.  ``final=True``
        folds the live sketch itself — the end-of-run verdict, after
        which no more events should be observed.  ``num_resamples=0``
        skips bootstrap CIs (the cheap repeated-evaluation mode).
        """
        if final:
            sketch = self.stats.report()
        else:
            sketch = copy.deepcopy(self.stats.sketch)
            sketch.fold_tee()
        rng = (
            np.random.default_rng(self._seed + 2) if num_resamples else None
        )
        return build_scorecard(
            conformance=self.conformance.report(),
            sketch=sketch,
            reference=self._reference,
            thresholds=self._thresholds,
            memorization=None,
            rng=rng,
            num_resamples=num_resamples,
        )

    def poll(self) -> dict:
        """Cheap rolling verdict with per-check deltas since last poll."""
        scorecard = self.scorecard(final=False, num_resamples=0)
        checks = {}
        for check in scorecard.checks:
            previous = self._previous.get(check.name)
            checks[check.name] = {
                "value": check.value,
                "delta": (
                    check.value - previous if previous is not None else None
                ),
                "passed": check.passed,
            }
            self._previous[check.name] = check.value
        return {"passed": scorecard.passed, "checks": checks}


def _scenario_gate(
    scenario: str,
    *,
    backend: str | None,
    count: int | None,
    seed: int,
    thresholds: GateThresholds | None,
    memorization: bool,
    num_resamples: int,
) -> FidelityScorecard:
    from ..api.session import Session

    session = Session(scenario).synthesize().fit(backend or "smm-1")
    session.generate(count, seed=seed + 1)
    return session.validate(
        thresholds=thresholds,
        memorization=memorization,
        seed=seed,
        num_resamples=num_resamples,
    )


def _workload_gate(
    population: UEPopulation,
    *,
    backend: str | None,
    scale: float,
    seed: int,
    thresholds: GateThresholds | None,
    num_resamples: int,
    topology: str | None = None,
    chaos: str | None = None,
) -> FidelityScorecard:
    from ..api.session import _TEST_SEED_OFFSET
    from ..trace.synthetic import generate_trace
    from ..workload import Workload

    if scale != 1.0:
        population = population.scaled(scale)
    spec = population.cohorts[0].scenario.machine_spec
    engine = Workload(
        population, seed=seed, backend=backend, topology=topology, chaos=chaos
    )
    conformance = OracleValidator(spec)
    stats = StatsValidator(seed=seed)
    engine.run(validators=(conformance, stats))

    # Reference: pool every cohort scenario's held-out capture (a
    # different-seed synthesis of the same scenario, the train/test
    # convention of Session).
    reference = TrafficSketch(seed=seed + 1)
    for cohort in population.cohorts:
        reference.observe_dataset(
            generate_trace(
                cohort.scenario.trace_config(seed_offset=_TEST_SEED_OFFSET)
            )
        )
    return build_scorecard(
        conformance=conformance.report(),
        sketch=stats.report(),
        reference=reference,
        thresholds=thresholds,
        memorization=None,
        rng=np.random.default_rng(seed + 2),
        num_resamples=num_resamples,
    )
