"""Threshold-driven fidelity scorecard: the gate's pass/fail artifact.

A :class:`FidelityScorecard` aggregates the three acceptance surfaces
the paper evaluates — semantic violations (Tables 3/5), distributional
distances (Tables 6-10) and the memorization check (§5.6 / Table 11) —
into named threshold checks with one overall verdict and a JSON report
(schema documented in :mod:`repro.validate`).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path

import numpy as np

from ..analysis.schemas import FIDELITY_SCORECARD_V1
from .oracle import ConformanceReport
from .stats import DistanceResult, TrafficSketch

__all__ = ["GateThresholds", "CheckResult", "FidelityScorecard", "build_scorecard"]

#: Scorecard JSON schema identifier (bump on breaking layout changes).
SCHEMA = FIDELITY_SCORECARD_V1


@dataclass(frozen=True)
class GateThresholds:
    """Pass/fail ceilings, all "lower is better" (fractions in [0, 1]).

    The defaults are deliberately loose acceptance bounds — they catch a
    broken generator (wrong machine, collapsed distributions, verbatim
    memorization), not a few points of distributional drift; tighten
    them per deployment via the CLI flags or ``replace()``.
    """

    max_event_violation_rate: float = 0.05
    max_stream_violation_rate: float = 0.60
    max_interarrival_jsd: float = 0.25
    max_flow_length_jsd: float = 0.25
    max_interarrival_ks: float = 0.45
    max_flow_length_ks: float = 0.45
    max_memorization: float = 0.60

    def __post_init__(self) -> None:
        for spec in fields(self):
            value = getattr(self, spec.name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{spec.name} must be in [0, 1]; got {value}")


@dataclass(frozen=True)
class CheckResult:
    """One named threshold check of the scorecard."""

    name: str
    value: float
    threshold: float
    passed: bool
    detail: str = ""


@dataclass(frozen=True)
class FidelityScorecard:
    """Aggregated fidelity verdict of one validated population."""

    checks: tuple[CheckResult, ...]
    violations: dict
    distances: dict
    memorization: dict | None
    generated: dict = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def check(self, name: str) -> CheckResult:
        for check in self.checks:
            if check.name == name:
                return check
        raise KeyError(f"no check {name!r}; have {[c.name for c in self.checks]}")

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "passed": self.passed,
            "generated": dict(self.generated),
            "checks": [asdict(check) for check in self.checks],
            "violations": dict(self.violations),
            "distances": dict(self.distances),
            "memorization": (
                dict(self.memorization) if self.memorization is not None else None
            ),
        }

    def to_json(self, path: str | Path | None = None, *, indent: int = 2) -> str:
        payload = json.dumps(self.to_dict(), indent=indent, sort_keys=True)
        if path is not None:
            Path(path).write_text(payload + "\n")
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "FidelityScorecard":
        if payload.get("schema") != SCHEMA:
            raise ValueError(
                f"unsupported scorecard schema {payload.get('schema')!r}; "
                f"expected {SCHEMA!r}"
            )
        return cls(
            checks=tuple(CheckResult(**check) for check in payload["checks"]),
            violations=payload["violations"],
            distances=payload["distances"],
            memorization=payload.get("memorization"),
            generated=payload.get("generated", {}),
        )

    @classmethod
    def from_json(cls, path: str | Path) -> "FidelityScorecard":
        """Load a scorecard from a JSON report file.

        Raises ``FileNotFoundError`` for missing paths; to parse an
        in-memory JSON string, use ``from_dict(json.loads(text))``.
        """
        return cls.from_dict(json.loads(Path(path).read_text()))

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """Human-readable verdict table (the CLI's output)."""
        verdict = "PASS" if self.passed else "FAIL"
        lines = [f"fidelity gate: {verdict}"]
        if self.generated:
            lines.append(
                f"  population: {self.generated.get('streams', '?')} streams / "
                f"{self.generated.get('events', '?')} events"
            )
        for check in self.checks:
            mark = "ok " if check.passed else "FAIL"
            line = (
                f"  [{mark}] {check.name:28s} {check.value:8.4f} "
                f"<= {check.threshold:.4f}"
            )
            if check.detail:
                line += f"  ({check.detail})"
            lines.append(line)
        return "\n".join(lines)


def build_scorecard(
    *,
    conformance: ConformanceReport,
    sketch: TrafficSketch,
    reference: TrafficSketch,
    thresholds: GateThresholds | None = None,
    memorization: float | None = None,
    memorization_params: dict | None = None,
    rng: np.random.Generator | None = None,
    num_resamples: int = 200,
) -> FidelityScorecard:
    """Assemble the scorecard from a validated run's raw outcomes.

    ``conformance`` comes from an :class:`~repro.validate.oracle.
    OracleValidator`, ``sketch``/``reference`` from
    :class:`~repro.validate.stats.TrafficSketch`; ``memorization`` is an
    n-gram repeat fraction (``None`` = check not run, recorded as null).
    """
    thresholds = thresholds if thresholds is not None else GateThresholds()
    distances = sketch.compare(reference, rng=rng, num_resamples=num_resamples)

    def _bound(name: str, value: float, threshold: float, detail: str = ""):
        return CheckResult(
            name=name,
            value=float(value),
            threshold=float(threshold),
            passed=bool(value <= threshold),
            detail=detail,
        )

    def _ci_detail(result: DistanceResult) -> str:
        if result.ks_ci is None:
            return "binned"
        return f"CI [{result.ks_ci.low:.4f}, {result.ks_ci.high:.4f}]"

    iat = distances["interarrival"]
    flow = distances["flow_length"]
    checks = [
        _bound(
            "event_violation_rate",
            conformance.event_rate,
            thresholds.max_event_violation_rate,
            f"{conformance.violating_events}/{conformance.counted_events} events",
        ),
        _bound(
            "stream_violation_rate",
            conformance.stream_rate,
            thresholds.max_stream_violation_rate,
            f"{conformance.violating_streams}/{conformance.streams} streams",
        ),
        _bound("interarrival_jsd", iat.jsd, thresholds.max_interarrival_jsd),
        _bound(
            "interarrival_ks", iat.ks, thresholds.max_interarrival_ks,
            _ci_detail(iat),
        ),
        _bound("flow_length_jsd", flow.jsd, thresholds.max_flow_length_jsd),
        _bound(
            "flow_length_ks", flow.ks, thresholds.max_flow_length_ks,
            _ci_detail(flow),
        ),
    ]
    memo_block = None
    if memorization is not None:
        checks.append(
            _bound(
                "memorization_repeat_fraction",
                memorization,
                thresholds.max_memorization,
            )
        )
        memo_block = dict(memorization_params or {})
        memo_block["repeat_fraction"] = float(memorization)
    return FidelityScorecard(
        checks=tuple(checks),
        violations=conformance.as_dict(),
        distances={name: result.as_dict() for name, result in distances.items()},
        memorization=memo_block,
        generated={
            "streams": conformance.streams,
            "events": conformance.total_events,
        },
    )
