"""Streaming statistical sketches: constant-memory fidelity distances.

The distributional fidelity metrics (Tables 6-10) compare full empirical
CDFs, which requires materializing every sample.  This module provides
bounded-memory replacements that can ride the streaming workload
timeline at generation speed:

* :class:`QuantizedHistogram` — fixed log-spaced bins with under/overflow
  buckets; supports Jensen-Shannon divergence and a binned KS statistic
  against any histogram sharing the same edges;
* :class:`ReservoirSample` — uniform reservoir (Algorithm R, batched);
  feeds the *exact* :func:`~repro.metrics.distance.max_y_distance` and
  the bootstrap CIs of :mod:`repro.metrics.bootstrap` on a bounded
  subsample;
* :class:`TrafficSketch` — the pair of per-metric sketches the fidelity
  gate tracks (inter-arrival times and per-UE flow lengths), consumable
  from columnar shard buffers, materialized datasets, or one event at a
  time;
* :class:`StatsValidator` — the :class:`TrafficSketch` wrapped in the
  streaming-validator interface of
  :meth:`repro.workload.timeline.Workload.run`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..metrics.bootstrap import BootstrapCI, bootstrap_max_y_distance
from ..trace.dataset import TraceDataset

__all__ = [
    "QuantizedHistogram",
    "ReservoirSample",
    "DistanceResult",
    "TrafficSketch",
    "StatsValidator",
]


class QuantizedHistogram:
    """Fixed-bin histogram with under/overflow buckets (constant memory).

    ``edges`` are the ``B + 1`` interior bin boundaries; values below
    ``edges[0]`` land in the underflow bucket and values above
    ``edges[-1]`` in the overflow bucket, so ``counts`` has ``B + 2``
    entries and no sample is ever dropped.
    """

    def __init__(self, edges: np.ndarray) -> None:
        edges = np.asarray(edges, dtype=np.float64).ravel()
        if edges.size < 2:
            raise ValueError("need at least two bin edges")
        if np.any(np.diff(edges) <= 0):
            raise ValueError("bin edges must be strictly increasing")
        self.edges = edges
        self.counts = np.zeros(edges.size + 1, dtype=np.int64)

    @classmethod
    def log_spaced(
        cls, low: float = 1e-3, high: float = 1e6, bins: int = 128
    ) -> "QuantizedHistogram":
        """Geometric bins covering ``[low, high]`` (plus catch-alls)."""
        if low <= 0 or high <= low:
            raise ValueError("need 0 < low < high")
        return cls(np.geomspace(low, high, bins + 1))

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    def add(self, values) -> None:
        """Bin a batch of values (vectorized)."""
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size == 0:
            return
        indices = np.searchsorted(self.edges, values, side="right")
        self.counts += np.bincount(indices, minlength=self.counts.size)

    def probabilities(self) -> np.ndarray:
        """Normalized bucket masses (zeros when the histogram is empty)."""
        total = self.total
        if total == 0:
            return np.zeros_like(self.counts, dtype=np.float64)
        return self.counts / total

    def cdf(self) -> np.ndarray:
        return np.cumsum(self.probabilities())

    def _check_compatible(self, other: "QuantizedHistogram") -> None:
        if self.edges.shape != other.edges.shape or np.any(
            self.edges != other.edges
        ):
            raise ValueError("histograms must share identical bin edges")

    def jsd(self, other: "QuantizedHistogram") -> float:
        """Jensen-Shannon divergence (base 2, in [0, 1]) between masses."""
        self._check_compatible(other)
        p = self.probabilities()
        q = other.probabilities()
        m = 0.5 * (p + q)

        def _kl(a: np.ndarray, b: np.ndarray) -> float:
            mask = a > 0
            return float(np.sum(a[mask] * np.log2(a[mask] / b[mask])))

        return 0.5 * _kl(p, m) + 0.5 * _kl(q, m)

    def ks(self, other: "QuantizedHistogram") -> float:
        """Binned two-sample KS: max CDF gap at the shared bin edges.

        A quantized approximation of
        :func:`~repro.metrics.distance.max_y_distance` — exact when both
        distributions are supported on the bin edges, otherwise accurate
        to within one bin's mass.
        """
        self._check_compatible(other)
        return float(np.abs(self.cdf() - other.cdf()).max())

    def merge(self, other: "QuantizedHistogram") -> "QuantizedHistogram":
        self._check_compatible(other)
        merged = QuantizedHistogram(self.edges)
        merged.counts = self.counts + other.counts
        return merged


class ReservoirSample:
    """Uniform fixed-size sample of an unbounded stream (Algorithm R).

    Batch insertion is vectorized: for the ``t``-th value overall a slot
    ``j ~ U[0, t)`` is drawn and the value lands in the reservoir iff
    ``j < capacity``.  Later writes to the same slot win, which matches
    processing the batch sequentially, so the reservoir is a true
    uniform sample regardless of batch boundaries.
    """

    def __init__(self, capacity: int = 2048, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.seen = 0
        self._rng = np.random.default_rng(seed)
        self._buffer = np.empty(capacity, dtype=np.float64)

    def add(self, values) -> None:
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size == 0:
            return
        fill = min(self.capacity - self.seen, values.size)
        if fill > 0:
            self._buffer[self.seen : self.seen + fill] = values[:fill]
            self.seen += fill
            values = values[fill:]
            if values.size == 0:
                return
        ticks = np.arange(self.seen + 1, self.seen + 1 + values.size)
        slots = (self._rng.random(values.size) * ticks).astype(np.int64)
        keep = slots < self.capacity
        self._buffer[slots[keep]] = values[keep]
        self.seen += values.size

    def values(self) -> np.ndarray:
        """The current sample (a copy; length ``min(seen, capacity)``)."""
        return self._buffer[: min(self.seen, self.capacity)].copy()


@dataclass(frozen=True)
class DistanceResult:
    """One metric's distances between a sketch and its reference."""

    jsd: float
    ks: float
    ks_ci: BootstrapCI | None

    def as_dict(self) -> dict:
        payload: dict = {"jsd": self.jsd, "ks": self.ks}
        if self.ks_ci is not None:
            payload["ks_ci"] = [self.ks_ci.low, self.ks_ci.high]
            payload["ks_confidence"] = self.ks_ci.confidence
        return payload


#: Histogram layouts shared by every sketch, so any two sketches built
#: with the defaults are directly comparable.
_IAT_EDGES = np.geomspace(1e-3, 1e6, 129)
_FLOW_EDGES = np.geomspace(1.0, 1e4, 65)


class TrafficSketch:
    """Streaming sketches of the gate's distributional fidelity metrics.

    Tracks within-stream inter-arrival times and per-UE flow lengths
    (event counts), each as a :class:`QuantizedHistogram` plus a
    :class:`ReservoirSample`; :meth:`compare` turns two sketches into
    JSD/KS distances with bootstrap CIs
    (:func:`~repro.metrics.bootstrap.bootstrap_max_y_distance`).
    """

    def __init__(self, *, reservoir: int = 2048, seed: int = 0) -> None:
        self.interarrival = QuantizedHistogram(_IAT_EDGES)
        self.flow_length = QuantizedHistogram(_FLOW_EDGES)
        self.iat_sample = ReservoirSample(reservoir, seed)
        self.flow_sample = ReservoirSample(reservoir, seed + 1)
        self.num_streams = 0
        self.num_events = 0
        # Per-event tee state (observe_event / fold_tee).
        self._tee_last: dict = {}
        self._tee_counts: dict = {}

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def observe_arrays(self, interarrivals, flow_lengths) -> None:
        """Fold already-extracted per-metric samples into the sketches."""
        interarrivals = np.asarray(interarrivals, dtype=np.float64).ravel()
        flow_lengths = np.asarray(flow_lengths, dtype=np.float64).ravel()
        self.interarrival.add(interarrivals)
        self.iat_sample.add(interarrivals)
        self.flow_length.add(flow_lengths)
        self.flow_sample.add(flow_lengths)
        self.num_streams += int(flow_lengths.size)
        self.num_events += int(flow_lengths.sum())

    def observe_buffer(
        self, times, ue_codes, event_codes, ue_ids, event_names, *, cohort: str = ""
    ) -> None:
        """Consume one columnar shard buffer (vectorized).

        Inter-arrivals are within-UE deltas in the shard's time-ordered
        layout — identical to ``Stream.interarrivals()[1:]`` on the
        materialized trace; flow length is each UE's event count.
        """
        times = np.asarray(times, dtype=np.float64)
        ues = np.asarray(ue_codes, dtype=np.int64)
        lengths = np.bincount(ues, minlength=len(ue_ids))
        if times.size:
            order = np.argsort(ues, kind="stable")
            grouped_times = times[order]
            grouped_ues = ues[order]
            same_ue = grouped_ues[1:] == grouped_ues[:-1]
            deltas = np.diff(grouped_times)[same_ue]
        else:
            deltas = times
        self.observe_arrays(deltas, lengths)

    def observe_dataset(self, dataset: TraceDataset) -> None:
        """Consume a materialized dataset (reference-building path)."""
        for stream in dataset:
            deltas = (
                stream.interarrivals()[1:] if len(stream) > 1 else np.empty(0)
            )
            self.observe_arrays(deltas, [float(len(stream))])

    def observe_event(self, timestamp: float, ue_key, event: str) -> None:
        """Consume one timeline event (the per-event tee mode)."""
        last = self._tee_last.get(ue_key)
        if last is not None:
            delta = np.asarray([timestamp - last])
            self.interarrival.add(delta)
            self.iat_sample.add(delta)
        self._tee_last[ue_key] = timestamp
        self._tee_counts[ue_key] = self._tee_counts.get(ue_key, 0) + 1
        self.num_events += 1

    def observe_chunk(self, chunk) -> None:
        """Consume one merged columnar chunk (vectorized tee mode).

        Histogram-equivalent to :meth:`observe_event` on every decoded
        event: within-UE inter-arrivals are vectorized per chunk and
        bridged *across* chunks through the same per-UE tee state
        (``fold_tee`` closes the flow counts).  Stream keys are
        ``(cycle, global UE index)``; as with the conformance tee, one
        sketch must stick to a single tee mode per run.
        """
        n = chunk.num_events
        if n == 0:
            return
        order = np.argsort(chunk.ues, kind="stable")
        grouped_times = chunk.times[order]
        grouped_ues = chunk.ues[order]
        boundaries = np.r_[True, grouped_ues[1:] != grouped_ues[:-1]]
        starts = np.flatnonzero(boundaries)
        uniq = grouped_ues[starts]
        counts = np.diff(np.append(starts, n))
        deltas = np.diff(grouped_times)[~boundaries[1:]]
        firsts = grouped_times[starts]
        ends = grouped_times[np.append(starts[1:], n) - 1]
        cycle = chunk.cycle
        tee_last = self._tee_last
        tee_counts = self._tee_counts
        bridged: list[float] = []
        for i in range(uniq.size):
            key = (cycle, int(uniq[i]))
            last = tee_last.get(key)
            if last is not None:
                bridged.append(float(firsts[i]) - last)
            tee_last[key] = float(ends[i])
            tee_counts[key] = tee_counts.get(key, 0) + int(counts[i])
        if bridged:
            bridged_arr = np.asarray(bridged, dtype=np.float64)
            self.interarrival.add(bridged_arr)
            self.iat_sample.add(bridged_arr)
        if deltas.size:
            self.interarrival.add(deltas)
            self.iat_sample.add(deltas)
        self.num_events += n

    def fold_tee(self) -> None:
        """Fold per-event tee state (flow lengths) into the sketches."""
        counts = self._tee_counts
        if not counts:
            return
        flows = np.fromiter(counts.values(), dtype=np.float64, count=len(counts))
        self.flow_length.add(flows)
        self.flow_sample.add(flows)
        self.num_streams += flows.size
        self._tee_last = {}
        self._tee_counts = {}

    @classmethod
    def from_dataset(
        cls, dataset: TraceDataset, *, reservoir: int = 2048, seed: int = 0
    ) -> "TrafficSketch":
        sketch = cls(reservoir=reservoir, seed=seed)
        sketch.observe_dataset(dataset)
        return sketch

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def compare(
        self,
        reference: "TrafficSketch",
        *,
        rng: np.random.Generator | None = None,
        num_resamples: int = 200,
        confidence: float = 0.95,
    ) -> dict[str, DistanceResult]:
        """Distances of this sketch to ``reference``, per metric.

        JSD and the binned KS come from the histograms; when both
        reservoirs hold data the exact-sample KS with a percentile
        bootstrap CI (reusing :mod:`repro.metrics.bootstrap`) is
        attached.  ``rng=None`` skips the bootstrap.
        """
        results: dict[str, DistanceResult] = {}
        pairs = {
            "interarrival": (
                self.interarrival, reference.interarrival,
                self.iat_sample, reference.iat_sample,
            ),
            "flow_length": (
                self.flow_length, reference.flow_length,
                self.flow_sample, reference.flow_sample,
            ),
        }
        for metric, (hist, ref_hist, sample, ref_sample) in pairs.items():
            ci = None
            if (
                rng is not None
                and sample.seen > 0
                and ref_sample.seen > 0
            ):
                ci = bootstrap_max_y_distance(
                    ref_sample.values(),
                    sample.values(),
                    rng,
                    num_resamples=num_resamples,
                    confidence=confidence,
                )
            results[metric] = DistanceResult(
                jsd=hist.jsd(ref_hist),
                ks=ci.estimate if ci is not None else hist.ks(ref_hist),
                ks_ci=ci,
            )
        return results


class StatsValidator:
    """A :class:`TrafficSketch` in streaming-validator clothing."""

    name = "stats"

    def __init__(self, *, reservoir: int = 2048, seed: int = 0) -> None:
        self.sketch = TrafficSketch(reservoir=reservoir, seed=seed)

    def observe_buffer(
        self, times, ue_codes, event_codes, ue_ids, event_names, *, cohort: str
    ) -> None:
        self.sketch.observe_buffer(
            times, ue_codes, event_codes, ue_ids, event_names, cohort=cohort
        )

    def observe_event(self, timestamp: float, ue_key, event: str) -> None:
        self.sketch.observe_event(timestamp, ue_key, event)

    def observe_chunk(self, chunk) -> None:
        self.sketch.observe_chunk(chunk)

    def report(self) -> TrafficSketch:
        self.sketch.fold_tee()
        return self.sketch
