"""UE clustering for the SMM-20k baseline.

SMM (§3.3) copes with per-UE diversity by clustering UEs on
domain-specific features (flow length, sojourn-time statistics) and
fitting one semi-Markov model per cluster.  This module provides the
feature extraction and a small k-means implementation (numpy only).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..statemachine.base import MachineSpec
from ..statemachine.replay import replay_events
from ..trace.dataset import TraceDataset

__all__ = ["ue_features", "KMeans", "cluster_dataset"]


def ue_features(dataset: TraceDataset, spec: MachineSpec) -> np.ndarray:
    """Per-UE feature matrix for clustering.

    Features (log-scaled where heavy-tailed): flow length, events/hour
    rate, mean CONNECTED sojourn, mean IDLE sojourn.  Missing sojourns
    (UE never completed a visit) fall back to the population mean.
    """
    rows = []
    for stream in dataset:
        replay = replay_events(stream.as_pairs(), spec)
        length = len(stream)
        duration = max(stream.duration(), 1.0)
        rate = length / duration * 3600.0
        conn = replay.mean_sojourn(spec.connected_state)
        idle = replay.mean_sojourn(spec.idle_state)
        rows.append(
            [
                np.log1p(length),
                np.log1p(rate),
                np.log1p(conn) if conn is not None else np.nan,
                np.log1p(idle) if idle is not None else np.nan,
            ]
        )
    features = np.asarray(rows, dtype=np.float64)
    # Impute missing sojourn features with the column mean.
    for col in range(features.shape[1]):
        column = features[:, col]
        missing = np.isnan(column)
        if missing.any():
            fill = column[~missing].mean() if (~missing).any() else 0.0
            column[missing] = fill
    return features


@dataclass
class KMeans:
    """Plain k-means with k-means++ seeding."""

    num_clusters: int
    max_iterations: int = 50
    seed: int = 0

    def fit(self, features: np.ndarray) -> np.ndarray:
        """Cluster rows of ``features``; returns integer labels.

        Features are standardized internally.  When there are fewer rows
        than clusters, each row gets its own cluster.
        """
        features = np.asarray(features, dtype=np.float64)
        n = features.shape[0]
        if n == 0:
            raise ValueError("cannot cluster an empty feature matrix")
        k = min(self.num_clusters, n)
        std = features.std(axis=0)
        std[std == 0] = 1.0
        scaled = (features - features.mean(axis=0)) / std

        rng = np.random.default_rng(self.seed)
        centers = self._seed_centers(scaled, k, rng)
        labels = np.zeros(n, dtype=np.int64)
        for _ in range(self.max_iterations):
            distances = ((scaled[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
            new_labels = distances.argmin(axis=1)
            if np.array_equal(new_labels, labels) and _ > 0:
                break
            labels = new_labels
            for j in range(k):
                members = scaled[labels == j]
                if len(members):
                    centers[j] = members.mean(axis=0)
        self.centers_ = centers
        return labels

    @staticmethod
    def _seed_centers(scaled: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
        """k-means++ initialization."""
        n = scaled.shape[0]
        centers = [scaled[rng.integers(n)]]
        for _ in range(1, k):
            distances = np.min(
                [((scaled - c) ** 2).sum(axis=1) for c in centers], axis=0
            )
            total = distances.sum()
            if total == 0:
                centers.append(scaled[rng.integers(n)])
                continue
            probs = distances / total
            centers.append(scaled[rng.choice(n, p=probs)])
        return np.array(centers)


def cluster_dataset(
    dataset: TraceDataset, spec: MachineSpec, num_clusters: int, seed: int = 0
) -> list[TraceDataset]:
    """Split ``dataset`` into per-cluster datasets (empty clusters dropped)."""
    if len(dataset) == 0:
        raise ValueError("cannot cluster an empty dataset")
    features = ue_features(dataset, spec)
    labels = KMeans(num_clusters=num_clusters, seed=seed).fit(features)
    clusters = []
    for j in sorted(set(labels.tolist())):
        members = [dataset[i] for i in np.flatnonzero(labels == j)]
        clusters.append(TraceDataset(streams=members, vocabulary=dataset.vocabulary))
    return clusters
