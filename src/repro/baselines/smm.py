"""Semi-Markov-model traffic generators: SMM-1 and SMM-k (§3.3).

The prior-art generator (Meng et al., IMC'23) embeds the hand-derived
3GPP state machine and fits, from a real trace:

* transition probabilities (which event fires next in each state), and
* one empirical sojourn-time CDF per (state, event) transition
  (traditional closed-form distributions do not fit; the paper quotes
  283,024 CDFs for the full SMM-20k ensemble).

``SemiMarkovModel`` is one such model.  :class:`SMM1Generator` fits a
single model per device type; :class:`SMMClusteredGenerator` (the
SMM-20k analogue) clusters UEs and fits one model per cluster, sampling
clusters by size at generation time.  Both produce zero semantic
violations by construction — the state machine is built in — which is
exactly the domain-knowledge dependence CPT-GPT removes.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

import numpy as np

from ..core.generate import random_ue_id
from ..statemachine.base import MachineSpec, MachineState, StateMachine
from ..statemachine.lte import LTE_SPEC
from ..trace.dataset import TraceDataset
from ..trace.schema import ControlEvent, Stream

__all__ = ["EmpiricalDistribution", "SemiMarkovModel", "SMM1Generator", "SMMClusteredGenerator"]


@dataclass
class EmpiricalDistribution:
    """Empirical CDF with inverse-transform sampling.

    Samples are stored sorted; draws interpolate between order
    statistics, which matches how SMM models per-transition sojourn-time
    CDFs without assuming a parametric family.
    """

    samples: np.ndarray

    def __post_init__(self) -> None:
        samples = np.asarray(self.samples, dtype=np.float64)
        if samples.size == 0:
            raise ValueError("empirical distribution needs at least one sample")
        self.samples = np.sort(samples)

    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Inverse-CDF draw(s) with linear interpolation."""
        n = 1 if size is None else size
        grid = np.linspace(0.0, 1.0, len(self.samples))
        draws = np.interp(rng.random(n), grid, self.samples)
        if size is None:
            return float(draws[0])
        return draws

    def cdf(self, values: np.ndarray) -> np.ndarray:
        """Empirical CDF evaluated at ``values``."""
        values = np.asarray(values, dtype=np.float64)
        return np.searchsorted(self.samples, values, side="right") / len(self.samples)


@dataclass
class SemiMarkovModel:
    """One fitted semi-Markov model over a :class:`MachineSpec`.

    ``transition_probs[state]`` is the event-choice distribution in
    ``state``; ``dwell[(state, event)]`` is the empirical distribution of
    the time spent in ``state`` before ``event`` fires.
    """

    spec: MachineSpec
    transition_probs: dict[str, dict[str, float]]
    dwell: dict[tuple[str, str], EmpiricalDistribution]
    initial_states: dict[str, float]
    weight: int = 0  # number of UEs this model was fitted on

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    @classmethod
    def fit(cls, dataset: TraceDataset, spec: MachineSpec = LTE_SPEC) -> "SemiMarkovModel":
        """Fit transition probabilities and dwell CDFs from a trace.

        Streams are replayed through the state machine; events that
        violate it (possible when fitting on synthesized data) are
        skipped, mirroring how a practitioner would sanitize input.
        """
        transition_counts: dict[str, Counter] = defaultdict(Counter)
        dwell_samples: dict[tuple[str, str], list[float]] = defaultdict(list)
        initial_counts: Counter = Counter()

        for stream in dataset:
            machine = StateMachine(spec, state=None)
            entered_at: float | None = None
            for timestamp, event in stream.as_pairs():
                if not machine.started:
                    if machine.try_bootstrap(event):
                        initial_counts[machine.state.top] += 1
                        entered_at = timestamp
                    continue
                state = machine.state.top
                if not machine.step(event):
                    continue  # skip violating events when fitting
                transition_counts[state][event] += 1
                if entered_at is not None:
                    dwell_samples[(state, event)].append(timestamp - entered_at)
                entered_at = timestamp

        if not transition_counts:
            raise ValueError("dataset contains no replayable transitions")

        transition_probs: dict[str, dict[str, float]] = {}
        for state, counter in transition_counts.items():
            total = sum(counter.values())
            transition_probs[state] = {
                event: count / total for event, count in sorted(counter.items())
            }
        dwell = {
            key: EmpiricalDistribution(np.asarray(samples))
            for key, samples in dwell_samples.items()
            if samples
        }
        total_initial = sum(initial_counts.values())
        initial_states = {
            state: count / total_initial for state, count in sorted(initial_counts.items())
        }
        return cls(
            spec=spec,
            transition_probs=transition_probs,
            dwell=dwell,
            initial_states=initial_states,
            weight=len(dataset),
        )

    @property
    def num_cdfs(self) -> int:
        """Number of per-transition CDFs (the paper's 283,024-count unit)."""
        return len(self.dwell)

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def generate_stream(
        self,
        rng: np.random.Generator,
        duration: float,
        device_type: str,
        start_time: float = 0.0,
    ) -> Stream:
        """Walk the semi-Markov model for ``duration`` seconds."""
        states = list(self.initial_states)
        probs = np.array([self.initial_states[s] for s in states])
        top = states[rng.choice(len(states), p=probs)]
        machine = StateMachine(self.spec, _state_for_top(self.spec, top))

        events: list[ControlEvent] = []
        t = start_time
        end = start_time + duration
        while True:
            state = machine.state.top
            menu = self.transition_probs.get(state)
            if not menu:
                break  # absorbing state in the fitted data
            names = list(menu)
            event = names[rng.choice(len(names), p=np.array([menu[n] for n in names]))]
            dist = self.dwell.get((state, event))
            if dist is None:
                break
            t += max(dist.sample(rng), 0.0)
            if t >= end:
                break
            legal = machine.step(event)
            if not legal:  # pragma: no cover - transitions fitted from replay
                raise RuntimeError(f"fitted SMM produced illegal event {event} in {state}")
            events.append(ControlEvent(timestamp=t, event=event))
        return Stream(ue_id=random_ue_id(rng), device_type=device_type, events=events)


def _state_for_top(spec: MachineSpec, top: str) -> MachineState:
    """An entry sub-state for ``top`` (first declared sub-state)."""
    subs = spec.sub_states[top]
    # Prefer the service-request sub-state when present: generation
    # mirrors a UE that most recently ran a data session.
    preferred = ("SRV_REQ_S", "S1_REL_S_1", "AN_REL_S", "DEREG_S")
    for name in preferred:
        if name in subs:
            return MachineState(top, name)
    return MachineState(top, subs[0])


@dataclass
class SMM1Generator:
    """SMM-1: a single semi-Markov model per device type."""

    model: SemiMarkovModel
    device_type: str
    duration: float = 3600.0

    @classmethod
    def fit(
        cls,
        dataset: TraceDataset,
        device_type: str,
        spec: MachineSpec = LTE_SPEC,
        duration: float = 3600.0,
    ) -> "SMM1Generator":
        return cls(
            model=SemiMarkovModel.fit(dataset, spec),
            device_type=device_type,
            duration=duration,
        )

    def generate(
        self, count: int, rng: np.random.Generator, start_time: float = 0.0
    ) -> TraceDataset:
        streams = [
            self.model.generate_stream(rng, self.duration, self.device_type, start_time)
            for _ in range(count)
        ]
        return TraceDataset(streams=streams, vocabulary=None)


@dataclass
class SMMClusteredGenerator:
    """SMM-20k analogue: one semi-Markov model per UE cluster.

    Clusters are derived with k-means on replay features (flow length,
    event rate, sojourn means); generation samples a cluster
    proportionally to its UE count, then walks that cluster's model.
    """

    models: list[SemiMarkovModel]
    device_type: str
    duration: float = 3600.0

    @classmethod
    def fit(
        cls,
        dataset: TraceDataset,
        device_type: str,
        num_clusters: int = 16,
        spec: MachineSpec = LTE_SPEC,
        duration: float = 3600.0,
        seed: int = 0,
    ) -> "SMMClusteredGenerator":
        from .clustering import cluster_dataset

        clusters = cluster_dataset(dataset, spec, num_clusters, seed=seed)
        models = []
        for cluster in clusters:
            try:
                models.append(SemiMarkovModel.fit(cluster, spec))
            except ValueError:
                continue  # cluster too small to contain replayable transitions
        if not models:
            raise ValueError("no cluster produced a fittable model")
        return cls(models=models, device_type=device_type, duration=duration)

    @property
    def num_models(self) -> int:
        return len(self.models)

    @property
    def num_cdfs(self) -> int:
        return sum(m.num_cdfs for m in self.models)

    def generate(
        self, count: int, rng: np.random.Generator, start_time: float = 0.0
    ) -> TraceDataset:
        weights = np.array([m.weight for m in self.models], dtype=np.float64)
        weights /= weights.sum()
        choices = rng.choice(len(self.models), size=count, p=weights)
        streams = [
            self.models[c].generate_stream(rng, self.duration, self.device_type, start_time)
            for c in choices
        ]
        return TraceDataset(streams=streams, vocabulary=None)
