"""``repro.baselines`` — the paper's comparison generators.

* SMM-1 / SMM-k (``smm``): the traditional semi-Markov approach with the
  3GPP state machine built in (domain knowledge required).
* NetShare (``netshare``): the state-of-the-art GAN+LSTM data-plane
  generator, adapted per §4.2.1.
"""

from .clustering import KMeans, cluster_dataset, ue_features
from .netshare import (
    GANTrainingResult,
    NetShare,
    NetShareConfig,
    NetShareDiscriminator,
    NetShareGenerator,
)
from .smm import (
    EmpiricalDistribution,
    SMM1Generator,
    SMMClusteredGenerator,
    SemiMarkovModel,
)

__all__ = [
    "SemiMarkovModel",
    "EmpiricalDistribution",
    "SMM1Generator",
    "SMMClusteredGenerator",
    "KMeans",
    "ue_features",
    "cluster_dataset",
    "NetShare",
    "NetShareConfig",
    "NetShareGenerator",
    "NetShareDiscriminator",
    "GANTrainingResult",
]
