"""NetShare-style GAN baseline, adapted to control-plane traffic.

Follows §4.2.1 of the paper: the original NetShare pairs an MLP metadata
generator with an LSTM time-series generator inside a GAN.  For cellular
control traffic the metadata (UE ID) is a semantics-free hashed string,
so the metadata generator is dropped (UE IDs come from a random string
generator) and only the LSTM generator remains, producing per sample
three fields — event type, interarrival time and a stop flag.

Faithful-to-the-original details that the paper calls out as weaknesses:

* **Batch generation** (L4): the LSTM emits ``batch_generation`` samples
  per step to curb state forgetting, sacrificing intra-batch
  dependencies between consecutive control events.
* **GAN training** (L5): adversarial BCE objective; no mode-collapse
  countermeasures beyond what the adaptation keeps.
* Categorical fields leave the generator as softmax simplices and the
  discriminator sees those soft encodings; at sampling time NetShare
  takes the argmax (§ Design 2 discussion).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.generate import random_ue_id
from ..nn import (
    LSTM,
    Adam,
    Linear,
    Module,
    Sequential,
    Tensor,
    bce_with_logits,
    clip_grad_norm,
    no_grad,
    softmax,
)
from ..nn.layers import MLP
from ..tokenization import StreamTokenizer
from ..trace.dataset import TraceDataset

__all__ = ["NetShareConfig", "NetShareGenerator", "NetShareDiscriminator", "NetShare"]


@dataclass(frozen=True)
class NetShareConfig:
    """Hyperparameters of the adapted NetShare."""

    num_event_types: int = 6
    latent_dim: int = 16
    hidden_size: int = 64
    #: Samples emitted per LSTM step (DoppelGANger/NetShare batch
    #: generation; the paper's L4).
    batch_generation: int = 5
    max_len: int = 130
    disc_hidden: int = 128
    generator_lr: float = 1e-3
    discriminator_lr: float = 1e-3
    grad_clip: float = 5.0

    def __post_init__(self) -> None:
        if self.max_len % self.batch_generation != 0:
            raise ValueError(
                f"max_len ({self.max_len}) must be a multiple of "
                f"batch_generation ({self.batch_generation})"
            )

    @property
    def d_field(self) -> int:
        """Per-sample feature width: events + interarrival + stop pair."""
        return self.num_event_types + 1 + 2

    @property
    def lstm_steps(self) -> int:
        return self.max_len // self.batch_generation


class NetShareGenerator(Module):
    """LSTM generator: noise sequence -> soft token sequence."""

    def __init__(self, config: NetShareConfig, rng: np.random.Generator) -> None:
        super().__init__()
        self.config = config
        self.lstm = LSTM(config.latent_dim, config.hidden_size, rng)
        self.output = Linear(
            config.hidden_size, config.batch_generation * config.d_field, rng
        )

    def forward(self, noise: Tensor) -> Tensor:
        """Map ``(B, lstm_steps, latent)`` noise to ``(B, max_len, d_field)``.

        Event and stop blocks are softmax simplices; the interarrival
        column is squashed to (0, 1) with a sigmoid.
        """
        cfg = self.config
        hidden, _ = self.lstm(noise)  # (B, steps, H)
        flat = self.output(hidden)  # (B, steps, S * d_field)
        batch = flat.shape[0]
        samples = flat.reshape((batch, cfg.max_len, cfg.d_field))
        events = softmax(samples[:, :, : cfg.num_event_types], axis=-1)
        iat = samples[:, :, cfg.num_event_types : cfg.num_event_types + 1].sigmoid()
        stops = softmax(samples[:, :, cfg.num_event_types + 1 :], axis=-1)
        from ..nn import concatenate

        return concatenate([events, iat, stops], axis=-1)


class NetShareDiscriminator(Module):
    """MLP discriminator over the flattened (padded) soft sequence."""

    def __init__(self, config: NetShareConfig, rng: np.random.Generator) -> None:
        super().__init__()
        self.config = config
        self.mlp = MLP(
            config.max_len * config.d_field, config.disc_hidden, 1, rng, activation="relu"
        )

    def forward(self, sequences: Tensor) -> Tensor:
        batch = sequences.shape[0]
        flat = sequences.reshape((batch, self.config.max_len * self.config.d_field))
        return self.mlp(flat)[:, 0]


@dataclass
class GANTrainingResult:
    """Per-epoch adversarial losses and the wall-clock cost."""

    generator_losses: list[float] = field(default_factory=list)
    discriminator_losses: list[float] = field(default_factory=list)
    wall_time_seconds: float = 0.0
    steps: int = 0


class NetShare:
    """Adapted NetShare: training, fine-tuning and sampling.

    Parameters
    ----------
    config:
        Model hyperparameters.
    tokenizer:
        Shared :class:`StreamTokenizer`; NetShare consumes the same
        multi-modal encoding as CPT-GPT so comparisons are apples-to-
        apples (the original's per-field encodings are subsumed by the
        log/min-max interarrival scaling).
    """

    def __init__(
        self,
        config: NetShareConfig,
        tokenizer: StreamTokenizer,
        rng: np.random.Generator,
    ) -> None:
        if config.num_event_types != tokenizer.num_events:
            raise ValueError(
                f"config has {config.num_event_types} event types but tokenizer "
                f"has {tokenizer.num_events}"
            )
        self.config = config
        self.tokenizer = tokenizer
        self._rng = rng
        self.generator = NetShareGenerator(config, rng)
        self.discriminator = NetShareDiscriminator(config, rng)
        self._gen_opt = Adam(self.generator.parameters(), lr=config.generator_lr)
        self._disc_opt = Adam(self.discriminator.parameters(), lr=config.discriminator_lr)

    # ------------------------------------------------------------------
    # Data preparation
    # ------------------------------------------------------------------
    def _encode_padded(self, dataset: TraceDataset) -> np.ndarray:
        """Encode streams to fixed-length padded matrices.

        Streams longer than ``max_len`` are dropped (§5.1); shorter ones
        are zero-padded after their stop token.
        """
        usable = dataset.drop_singletons().truncate_streams(self.config.max_len)
        if len(usable) == 0:
            raise ValueError("no trainable streams after length filtering")
        out = np.zeros((len(usable), self.config.max_len, self.config.d_field))
        for i, stream in enumerate(usable):
            matrix = self.tokenizer.encode(stream)
            out[i, : matrix.shape[0]] = matrix
        return out

    # ------------------------------------------------------------------
    # Adversarial training
    # ------------------------------------------------------------------
    def train(
        self,
        dataset: TraceDataset,
        epochs: int,
        batch_size: int = 32,
        seed: int = 0,
    ) -> GANTrainingResult:
        """Alternate discriminator/generator updates over ``epochs``."""
        rng = np.random.default_rng(seed)
        real = self._encode_padded(dataset)
        result = GANTrainingResult()
        self.generator.train()
        self.discriminator.train()
        start = time.perf_counter()
        for _ in range(epochs):
            order = rng.permutation(len(real))
            gen_losses: list[float] = []
            disc_losses: list[float] = []
            for begin in range(0, len(order), batch_size):
                chunk = order[begin : begin + batch_size]
                batch_real = real[chunk]
                disc_l, gen_l = self._adversarial_step(batch_real, rng)
                disc_losses.append(disc_l)
                gen_losses.append(gen_l)
                result.steps += 1
            result.generator_losses.append(float(np.mean(gen_losses)))
            result.discriminator_losses.append(float(np.mean(disc_losses)))
        result.wall_time_seconds = time.perf_counter() - start
        self.generator.eval()
        self.discriminator.eval()
        return result

    def fine_tune(
        self,
        dataset: TraceDataset,
        epochs: int,
        batch_size: int = 32,
        seed: int = 0,
    ) -> GANTrainingResult:
        """Continue adversarial training on a new hour's trace (§5.5)."""
        return self.train(dataset, epochs, batch_size, seed)

    def _noise(self, batch: int, rng: np.random.Generator) -> Tensor:
        cfg = self.config
        return Tensor(rng.standard_normal((batch, cfg.lstm_steps, cfg.latent_dim)))

    def _adversarial_step(
        self, batch_real: np.ndarray, rng: np.random.Generator
    ) -> tuple[float, float]:
        batch = batch_real.shape[0]

        # Discriminator update.
        self._disc_opt.zero_grad()
        with no_grad():
            fake = self.generator(self._noise(batch, rng))
        real_logits = self.discriminator(Tensor(batch_real))
        fake_logits = self.discriminator(Tensor(fake.data))
        disc_loss = bce_with_logits(real_logits, np.ones(batch)) + bce_with_logits(
            fake_logits, np.zeros(batch)
        )
        disc_loss.backward()
        clip_grad_norm(self.discriminator.parameters(), self.config.grad_clip)
        self._disc_opt.step()

        # Generator update (through the discriminator).
        self._gen_opt.zero_grad()
        fake = self.generator(self._noise(batch, rng))
        gen_logits = self.discriminator(fake)
        gen_loss = bce_with_logits(gen_logits, np.ones(batch))
        gen_loss.backward()
        # Only generator parameters are stepped; discriminator grads from
        # this pass are discarded on its next zero_grad.
        clip_grad_norm(self.generator.parameters(), self.config.grad_clip)
        self._gen_opt.step()

        return float(disc_loss.item()), float(gen_loss.item())

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def generate(
        self,
        count: int,
        rng: np.random.Generator,
        device_type: str,
        start_time: float = 0.0,
        batch_size: int = 128,
    ) -> TraceDataset:
        """Sample ``count`` streams.

        Categorical fields take the argmax of the generator's softmax
        (NetShare's convention); each stream is truncated at its first
        stop flag, or kept at full length when none fires.
        """
        cfg = self.config
        streams = []
        remaining = count
        with no_grad():
            while remaining > 0:
                size = min(batch_size, remaining)
                soft = self.generator(self._noise(size, rng)).data
                events = soft[:, :, : cfg.num_event_types].argmax(axis=2)
                iats = soft[:, :, cfg.num_event_types]
                stops = soft[:, :, cfg.num_event_types + 1 :].argmax(axis=2)
                for i in range(size):
                    stop_positions = np.flatnonzero(stops[i])
                    length = int(stop_positions[0]) + 1 if stop_positions.size else cfg.max_len
                    iat_row = iats[i, :length].copy()
                    iat_row[0] = 0.0
                    tokens = self.tokenizer.assemble(
                        events[i, :length], iat_row, stops[i, :length]
                    )
                    streams.append(
                        self.tokenizer.decode(
                            tokens,
                            ue_id=random_ue_id(rng),
                            device_type=device_type,
                            start_time=start_time,
                        )
                    )
                remaining -= size
        return TraceDataset(streams=streams, vocabulary=self.tokenizer.vocabulary)
