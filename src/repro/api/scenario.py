"""Scenario specifications: what traffic to model, in one value object.

A :class:`ScenarioSpec` pins down everything the pipeline needs to know
about a workload — device type, cellular technology, hour of day, UE
population and seed — and derives the technology-dependent artifacts
(event vocabulary, 3GPP machine spec, dominant events) that previously
had to be threaded by hand through every call site.

Common workloads are pre-registered in :data:`~repro.api.registry.SCENARIOS`
and can be looked up by name (``get_scenario("phone-evening")``).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace

from ..statemachine.base import MachineSpec
from ..statemachine.events import LTE_EVENTS, NR_EVENTS, EventVocabulary
from ..statemachine.lte import LTE_SPEC
from ..statemachine.nr import NR_SPEC
from ..trace.schema import DeviceType
from ..trace.synthetic import SyntheticTraceConfig
from .registry import SCENARIOS, register_scenario

__all__ = ["ScenarioSpec", "get_scenario"]

_SECONDS_PER_HOUR = 3600.0

#: Technology tag -> (vocabulary, machine spec, dominant events for the
#: sojourn-by-dominant-event fidelity metrics).
_TECHNOLOGIES = {
    "4G": (LTE_EVENTS, LTE_SPEC, ("SRV_REQ", "S1_CONN_REL")),
    "5G": (NR_EVENTS, NR_SPEC, ("SRV_REQ", "AN_REL")),
}


@dataclass(frozen=True)
class ScenarioSpec:
    """One workload: who generates traffic, when, and on which network.

    Attributes
    ----------
    name:
        Identifier used for registry lookup and cache keys.
    device_type:
        One of :class:`repro.trace.schema.DeviceType`.
    technology:
        ``"4G"`` or ``"5G"``; selects vocabulary and state machine.
    hour:
        Hour-of-day of the capture window (diurnal modulation, and the
        default ``start_time`` of generated traces).
    num_ues:
        UE population of the synthesized training capture.
    duration:
        Window length in seconds.
    seed:
        Base RNG seed for the synthetic substrate.
    """

    name: str = "custom"
    device_type: str = DeviceType.PHONE
    technology: str = "4G"
    hour: int = 20
    num_ues: int = 300
    duration: float = _SECONDS_PER_HOUR
    seed: int = 0

    def __post_init__(self) -> None:
        DeviceType.validate(self.device_type)
        if self.technology not in _TECHNOLOGIES:
            raise ValueError(
                f"technology must be one of {sorted(_TECHNOLOGIES)}; "
                f"got {self.technology!r}"
            )
        if self.num_ues < 0:
            raise ValueError("num_ues must be non-negative")
        if not 0 <= self.hour < 24:
            raise ValueError(f"hour must be in [0, 24); got {self.hour}")

    # ------------------------------------------------------------------
    # Technology-derived artifacts
    # ------------------------------------------------------------------
    @property
    def vocabulary(self) -> EventVocabulary:
        """Event vocabulary of this scenario's technology."""
        return _TECHNOLOGIES[self.technology][0]

    @property
    def machine_spec(self) -> MachineSpec:
        """3GPP state machine used for replay-based evaluation."""
        return _TECHNOLOGIES[self.technology][1]

    @property
    def dominant_events(self) -> tuple[str, str]:
        """The two dominant events the sojourn metrics report."""
        return _TECHNOLOGIES[self.technology][2]

    @property
    def start_time(self) -> float:
        """Timestamp (seconds) at which the capture window opens."""
        return self.hour * _SECONDS_PER_HOUR

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def trace_config(
        self, *, num_ues: int | None = None, seed_offset: int = 0
    ) -> SyntheticTraceConfig:
        """The synthetic-substrate configuration for this scenario."""
        return SyntheticTraceConfig(
            num_ues=self.num_ues if num_ues is None else num_ues,
            device_type=self.device_type,
            hour=self.hour,
            duration=self.duration,
            technology=self.technology,
            seed=self.seed + seed_offset,
        )

    def with_overrides(self, **kwargs) -> "ScenarioSpec":
        return replace(self, **kwargs)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "ScenarioSpec":
        return cls(**payload)


def get_scenario(name: str | ScenarioSpec) -> ScenarioSpec:
    """Resolve a scenario by name (or pass a spec through unchanged)."""
    if isinstance(name, ScenarioSpec):
        return name
    return SCENARIOS.get(name)


# ----------------------------------------------------------------------
# Built-in scenarios (the paper's evaluation grid, §5.1 and §5.6)
# ----------------------------------------------------------------------
register_scenario("phone-evening", aliases=("phone",))(
    ScenarioSpec(name="phone-evening", device_type=DeviceType.PHONE, hour=20, seed=7)
)
register_scenario("phone-morning")(
    ScenarioSpec(name="phone-morning", device_type=DeviceType.PHONE, hour=8, seed=7)
)
register_scenario("connected-car-evening", aliases=("connected-car", "car"))(
    ScenarioSpec(
        name="connected-car-evening",
        device_type=DeviceType.CONNECTED_CAR,
        hour=20,
        seed=7,
    )
)
register_scenario("tablet-evening", aliases=("tablet",))(
    ScenarioSpec(name="tablet-evening", device_type=DeviceType.TABLET, hour=20, seed=7)
)
register_scenario("phone-5g", aliases=("5g",))(
    ScenarioSpec(
        name="phone-5g", device_type=DeviceType.PHONE, technology="5G", hour=20, seed=7
    )
)
