"""The ``Session`` facade: one chainable object for the whole pipeline.

A session binds a scenario to cached pipeline artifacts and exposes the
paper's workflow as chainable steps::

    from repro.api import Session

    report = (
        Session("phone-evening")
        .synthesize()                  # operator-trace substrate
        .fit("cpt-gpt", training=TrainingConfig(epochs=16))
        .generate(500, seed=42)        # cached TraceDataset
        .evaluate()                    # FidelityReport vs held-out capture
    )
    print(report.summary())

Every step is cached: traces are synthesized once, each backend is
fitted once, and generated populations are keyed by (backend, count,
seed).  For constant-memory large-scale generation,
:meth:`Session.iter_streams` yields streams lazily straight off the
backend without materializing the population.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

import numpy as np

from ..metrics.report import FidelityReport, fidelity_report
from ..tokenization import StreamTokenizer
from ..trace.dataset import TraceDataset
from ..trace.schema import Stream
from ..trace.synthetic import generate_trace
from .adapters import load_generator
from .protocol import GeneratorBase, TrafficGenerator
from .registry import GENERATORS
from .scenario import ScenarioSpec, get_scenario

__all__ = ["Session"]

#: Seed offset between the training capture and the held-out test
#: capture (the paper's different-day train/test split).
_TEST_SEED_OFFSET = 104729


class Session:
    """Scenario-bound pipeline with cached artifacts.

    Parameters
    ----------
    scenario:
        A registered scenario name ("phone-evening", ...) or a
        :class:`ScenarioSpec`.
    """

    def __init__(self, scenario: str | ScenarioSpec = "phone-evening") -> None:
        self.scenario = get_scenario(scenario)
        self._dataset: TraceDataset | None = None
        self._test_dataset: TraceDataset | None = None
        self._tokenizer: StreamTokenizer | None = None
        self._generators: dict[str, TrafficGenerator] = {}
        #: (name, count, seed, start_time, num_workers) -> population.
        #: num_workers is part of the key because sharded runs split the
        #: RNG differently and thus produce different (equally valid)
        #: populations.
        self._generated: dict[tuple, TraceDataset] = {}
        self._active: str | None = None
        self._last_generated: tuple | None = None
        self._last_by_name: dict[str, tuple] = {}

    # ------------------------------------------------------------------
    # Data
    # ------------------------------------------------------------------
    def synthesize(self, *, force: bool = False) -> "Session":
        """Simulate the training and held-out captures (cached)."""
        if self._dataset is None or force:
            self._set_datasets(
                generate_trace(self.scenario.trace_config()),
                generate_trace(
                    self.scenario.trace_config(seed_offset=_TEST_SEED_OFFSET)
                ),
            )
        return self

    def use_dataset(
        self, dataset: TraceDataset, test_dataset: TraceDataset | None = None
    ) -> "Session":
        """Supply captures directly instead of synthesizing them."""
        self._set_datasets(dataset, test_dataset)
        return self

    def _set_datasets(
        self, dataset: TraceDataset, test_dataset: TraceDataset | None
    ) -> None:
        """Install captures; on *replacement*, drop derived artifacts.

        The tokenizer, fitted generators and cached populations were
        built from the previous dataset; keeping them would silently
        serve models trained on stale data.  When no dataset existed
        yet nothing can be derived from one — generators present at
        that point were loaded from disk or fitted externally and must
        survive (e.g. ``Session().load(path)`` before lazy synthesis).
        """
        replacing = self._dataset is not None
        self._dataset = dataset
        self._test_dataset = test_dataset
        if replacing:
            self._tokenizer = None
            self._generators = {}
            self._generated = {}
            self._last_generated = None
            self._last_by_name = {}
            self._active = None

    @property
    def dataset(self) -> TraceDataset:
        """The training capture (synthesized on first access)."""
        self.synthesize()
        return self._dataset

    @property
    def test_dataset(self) -> TraceDataset:
        """The held-out capture used by :meth:`evaluate`."""
        self.synthesize()
        if self._test_dataset is None:
            raise RuntimeError(
                "no held-out capture: use_dataset() was called without one"
            )
        return self._test_dataset

    @property
    def tokenizer(self) -> StreamTokenizer:
        """Tokenizer fitted on the training capture (shared by backends)."""
        if self._tokenizer is None:
            self._tokenizer = StreamTokenizer(self.scenario.vocabulary).fit(
                self.dataset
            )
        return self._tokenizer

    # ------------------------------------------------------------------
    # Generators
    # ------------------------------------------------------------------
    def fit(
        self, generator: str | TrafficGenerator = "cpt-gpt", **options
    ) -> "Session":
        """Fit a backend on the training capture (cached by name).

        ``generator`` is a registry name or an already-constructed
        :class:`TrafficGenerator`; ``options`` are forwarded to the
        backend's constructor when a name is given.  Refitting the same
        name without options is a cache hit; passing options for an
        already-fitted name refits with the new options (and drops that
        backend's cached populations), so explicit configuration is
        never silently ignored.

        For ``cpt-gpt``, training scale-out options ride along here:
        ``fit("cpt-gpt", num_workers=4, training=cfg)`` evaluates
        gradient shards in worker processes (set
        ``training.grad_shards``), ``resume=``/``checkpoint=`` continue
        and emit fused-trainer checkpoints, and ``float32_train=True``
        fits in the float32 arena fast mode.
        """
        if isinstance(generator, str):
            name = GENERATORS.canonical(generator)
            if name not in self._generators or options:
                cls = GENERATORS.get(name)
                if getattr(cls, "uses_tokenizer", False):
                    options.setdefault("tokenizer", self.tokenizer)
                self._generators[name] = cls(**options).fit(
                    self.dataset, self.scenario
                )
                self._invalidate_populations(name)
        else:
            name = getattr(generator, "name", None)
            if not name or name == GeneratorBase.name:
                # Unregistered subclasses inherit the base placeholder;
                # key them by class so distinct plugins don't collide.
                name = type(generator).__name__
            if not getattr(generator, "fitted", False):
                generator.fit(self.dataset, self.scenario)
            if self._generators.get(name) is not generator:
                self._invalidate_populations(name)
            self._generators[name] = generator
        self._active = name
        return self

    def _invalidate_populations(self, name: str) -> None:
        """Drop cached populations of ``name`` after its backend changed."""
        self._generated = {
            key: trace for key, trace in self._generated.items() if key[0] != name
        }
        self._last_by_name.pop(name, None)
        if self._last_generated and self._last_generated[0] == name:
            self._last_generated = None

    def generator(self, name: str | None = None) -> TrafficGenerator:
        """A fitted backend by name (default: the most recently fitted)."""
        name = self._resolve(name)
        return self._generators[name]

    def _resolve(self, name: str | None) -> str:
        if name is None:
            if self._active is None:
                raise RuntimeError("no generator fitted yet; call fit() first")
            return self._active
        canonical = GENERATORS.canonical(name) if name in GENERATORS else name
        if canonical not in self._generators:
            raise RuntimeError(
                f"generator {name!r} is not fitted in this session; "
                f"fitted: {sorted(self._generators)}"
            )
        return canonical

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def generate(
        self,
        count: int | None = None,
        *,
        seed: int = 1,
        generator: str | None = None,
        start_time: float | None = None,
        num_workers: int = 1,
    ) -> "Session":
        """Synthesize and cache a population from a fitted backend.

        ``start_time`` defaults to the scenario's hour; pass an
        explicit value to place the population elsewhere in the day
        without building a new session.  ``num_workers > 1`` shards
        generation across worker processes (deterministic given
        ``seed``).
        """
        name = self._resolve(generator)
        count = self.scenario.num_ues if count is None else count
        start = self.scenario.start_time if start_time is None else start_time
        key = (name, count, seed, start, num_workers)
        if key not in self._generated:
            options = {} if num_workers == 1 else {"num_workers": num_workers}
            self._generated[key] = self._generators[name].generate(
                count, np.random.default_rng(seed), start_time=start, **options
            )
        self._last_generated = key
        self._last_by_name[name] = key
        return self

    def generated(
        self,
        count: int | None = None,
        *,
        seed: int = 1,
        generator: str | None = None,
        start_time: float | None = None,
        num_workers: int = 1,
    ) -> TraceDataset:
        """The cached population (generating it on first access)."""
        self.generate(
            count,
            seed=seed,
            generator=generator,
            start_time=start_time,
            num_workers=num_workers,
        )
        return self._generated[self._last_generated]

    def iter_streams(
        self,
        count: int,
        *,
        seed: int = 1,
        generator: str | None = None,
        start_time: float | None = None,
        num_workers: int = 1,
    ) -> Iterator[Stream]:
        """Lazily yield ``count`` streams without materializing a dataset.

        Streams come straight off the backend in generation batches, so
        memory stays constant regardless of ``count``; nothing is
        cached.  With ``num_workers > 1`` generation is sharded across
        worker processes (per-worker results are buffered, so peak
        memory grows to the sharded population).
        """
        name = self._resolve(generator)
        options = {} if num_workers == 1 else {"num_workers": num_workers}
        return self._generators[name].generate(
            count,
            np.random.default_rng(seed),
            start_time=(
                self.scenario.start_time if start_time is None else start_time
            ),
            stream=True,
            **options,
        )

    # ------------------------------------------------------------------
    # Workloads
    # ------------------------------------------------------------------
    def workload(
        self,
        population="city-day",
        *,
        seed: int = 1,
        num_workers: int = 1,
        shard_ues: int = 2048,
        backend: str | None = None,
        topology=None,
        chaos=None,
    ):
        """A population-scale :class:`~repro.workload.Workload` engine.

        ``population`` is a registered workload name ("city-day",
        "stadium-flash-crowd", ...) or a
        :class:`~repro.workload.UEPopulation`.  Cohorts whose scenario
        matches this session's reuse its fitted backend; the rest fit
        their own (``backend=`` overrides every cohort's choice).  The
        returned engine streams the merged event timeline into the MCN
        consumers without materializing a trace::

            report = Session("phone-evening").workload("stadium").simulate(workers=8)

        ``topology`` (a registered topology-scenario name,
        :class:`~repro.topology.TopologyScenario` or
        :class:`~repro.topology.NetworkTopology`) places the population
        on a multi-cell network; ``chaos`` overrides the topology's
        chaos schedule (``"off"`` disables it).
        """
        from ..workload import Workload, get_workload

        population = get_workload(population)
        generators = {}
        if self._active is not None and backend is None:
            fitted = self.generator()
            for cohort in population.cohorts:
                if cohort.scenario == self.scenario:
                    generators[cohort.name] = fitted
        return Workload(
            population,
            seed=seed,
            num_workers=num_workers,
            shard_ues=shard_ues,
            backend=backend,
            generators=generators or None,
            topology=topology,
            chaos=chaos,
        )

    def serve(
        self,
        population="city-day",
        *,
        seed: int = 1,
        num_workers: int = 2,
        shard_ues: int = 2048,
        backend: str | None = None,
        topology=None,
        chaos=None,
        validate: bool = True,
        thresholds=None,
        **service_options,
    ):
        """An always-on :class:`~repro.service.TrafficService` for
        ``population``.

        Builds the same engine as :meth:`workload` (session-fitted
        backends are reused for matching cohorts) and wraps it in the
        supervised streaming service: paced open-loop replay, bounded
        backpressure, deterministic degradation, fault injection, and —
        with ``validate=True`` — a continuously re-evaluated
        :class:`~repro.validate.RollingGate`::

            report = Session().serve("city-day", speed=600).run(duration=60)

        ``service_options`` pass through to
        :class:`~repro.service.TrafficService` (``speed``, ``loop``,
        ``ring_events``, ``degradation``, ``faults``, ``simulator``,
        ``sink``, ...).
        """
        from ..service import TrafficService
        from ..validate import RollingGate
        from ..workload import get_workload

        resolved = get_workload(population)
        engine = self.workload(
            resolved,
            seed=seed,
            num_workers=1,
            shard_ues=shard_ues,
            backend=backend,
            topology=topology,
            chaos=chaos,
        )
        gate = (
            RollingGate(resolved, seed=seed, thresholds=thresholds)
            if validate
            else None
        )
        return TrafficService(
            engine, num_workers=num_workers, gate=gate, **service_options
        )

    def profile(
        self,
        population="city-day",
        *,
        seed: int = 1,
        num_workers: int = 1,
        shard_ues: int = 2048,
        backend: str | None = None,
        topology=None,
        chaos=None,
        simulate: bool = True,
        validate: bool = True,
        sim_workers: int = 4,
    ):
        """Profile a full workload run; returns a
        :class:`~repro.obs.PipelineProfile`.

        Builds the same engine as :meth:`workload`, enables the
        observability layer for the duration of one ``run`` (generation
        → shape → merge → simulate → oracle), and returns the stage
        breakdown::

            profile = Session().profile("city-day", seed=1)
            print(profile.table())

        This is the measurement baseline the columnar hot-path work is
        judged against (ROADMAP item 1).
        """
        from ..obs import profiled
        from ..validate import OracleValidator, StatsValidator
        from ..workload import get_workload

        resolved = get_workload(population)
        engine = self.workload(
            resolved,
            seed=seed,
            num_workers=num_workers,
            shard_ues=shard_ues,
            backend=backend,
            topology=topology,
            chaos=chaos,
        )
        validators = ()
        if validate:
            spec = resolved.cohorts[0].scenario.machine_spec
            validators = (OracleValidator(spec), StatsValidator(seed=seed))
        with profiled() as session:
            engine.run(
                validators=validators,
                simulate=simulate,
                sim_workers=sim_workers,
            )
        return session.profile

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _resolve_synthesized(
        self, synthesized: TraceDataset | None, generator: str | None
    ) -> TraceDataset:
        """The population :meth:`evaluate` / :meth:`validate` score.

        ``synthesized`` passes through when given; otherwise the most
        recently generated population (or the named backend's most
        recent, generating one at the scenario's default size if none
        exists yet).
        """
        if synthesized is not None:
            return synthesized
        if generator is None and self._last_generated is not None:
            key = self._last_generated
        else:
            name = self._resolve(generator)
            key = self._last_by_name.get(name)
            if key is None:
                self.generate(generator=name)
                key = self._last_by_name[name]
        return self._generated[key]

    def evaluate(
        self,
        synthesized: TraceDataset | None = None,
        *,
        generator: str | None = None,
    ) -> FidelityReport:
        """Fidelity of a generated population vs the held-out capture.

        Without arguments, scores the most recently generated
        population; with ``generator=``, the most recent population of
        that backend (generating one at the scenario's default size if
        none exists yet).
        """
        synthesized = self._resolve_synthesized(synthesized, generator)
        return fidelity_report(
            self.test_dataset,
            synthesized,
            self.scenario.machine_spec,
            dominant_events=self.scenario.dominant_events,
        )

    def validate(
        self,
        synthesized: TraceDataset | None = None,
        *,
        generator: str | None = None,
        thresholds=None,
        memorization: bool = True,
        seed: int = 0,
        num_resamples: int = 200,
        report_path: str | Path | None = None,
    ):
        """Fidelity gate on a generated population: a threshold scorecard.

        Resolves ``synthesized`` exactly like :meth:`evaluate`, then
        runs the vectorized conformance oracle, compares inter-arrival
        and flow-length sketches against the held-out capture (JSD +
        bootstrap-CI KS), and — unless ``memorization=False`` — the
        §5.6 n-gram repeat check against the *training* capture.
        Returns a
        :class:`~repro.validate.scorecard.FidelityScorecard`; pass
        ``report_path`` to also write the JSON report.
        """
        from ..metrics.memorization import ngram_repeat_fraction
        from ..validate.oracle import OracleValidator
        from ..validate.scorecard import build_scorecard
        from ..validate.stats import TrafficSketch

        synthesized = self._resolve_synthesized(synthesized, generator)
        conformance = OracleValidator(self.scenario.machine_spec)
        conformance.observe_dataset(synthesized, cohort=self.scenario.name)
        sketch = TrafficSketch.from_dataset(synthesized, seed=seed)
        reference = TrafficSketch.from_dataset(self.test_dataset, seed=seed + 1)
        repeat_fraction = None
        memo_params = None
        if memorization:
            from ..validate.gate import MEMO_EPSILON, MEMO_MAX_NGRAMS, MEMO_N

            memo_params = {
                "n": MEMO_N,
                "epsilon": MEMO_EPSILON,
                "max_ngrams": MEMO_MAX_NGRAMS,
            }
            repeat_fraction = ngram_repeat_fraction(
                self.dataset,
                synthesized,
                n=memo_params["n"],
                epsilon=memo_params["epsilon"],
                max_ngrams=memo_params["max_ngrams"],
                seed=seed,
            )
        scorecard = build_scorecard(
            conformance=conformance.report(),
            sketch=sketch,
            reference=reference,
            thresholds=thresholds,
            memorization=repeat_fraction,
            memorization_params=memo_params,
            rng=np.random.default_rng(seed + 2),
            num_resamples=num_resamples,
        )
        if report_path is not None:
            scorecard.to_json(report_path)
        return scorecard

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path, *, generator: str | None = None) -> "Session":
        """Persist a fitted backend's artifact to ``path``."""
        self.generator(generator).save(path)
        return self

    def load(self, path: str | Path) -> "Session":
        """Load a saved generator artifact into this session."""
        loaded = load_generator(path)
        if not isinstance(loaded, GeneratorBase):  # pragma: no cover - plugins
            raise TypeError(f"loaded object {loaded!r} is not a generator")
        if self._generators.get(loaded.name) is not loaded:
            self._invalidate_populations(loaded.name)
        self._generators[loaded.name] = loaded
        self._active = loaded.name
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Session scenario={self.scenario.name!r} "
            f"fitted={sorted(self._generators)}>"
        )
