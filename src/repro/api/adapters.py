"""Protocol adapters for the four generator backends, plus ``load_generator``.

Each adapter wraps one backend behind the :class:`TrafficGenerator`
protocol and registers it:

==========  ===========================  ===========================
registry    aliases                      backend
==========  ===========================  ===========================
cpt-gpt     CPT-GPT, cptgpt              :class:`GeneratorPackage`
smm-1       SMM-1, smm1                  :class:`SMM1Generator`
smm-k       SMM-20k, smmk                :class:`SMMClusteredGenerator`
netshare    NetShare                     :class:`NetShare`
==========  ===========================  ===========================

Persistence is self-describing: every artifact carries a ``kind`` tag
(``.npz`` metadata or a JSON field), so :func:`load_generator` restores
the right adapter without the caller knowing which backend produced the
file.  Legacy :meth:`GeneratorPackage.save` archives (no ``kind``) load
as ``cpt-gpt``.
"""

from __future__ import annotations

import copy
import json
import time
from dataclasses import asdict, replace
from pathlib import Path

import numpy as np

from ..baselines.netshare import NetShare, NetShareConfig
from ..baselines.smm import (
    EmpiricalDistribution,
    SemiMarkovModel,
    SMM1Generator,
    SMMClusteredGenerator,
)
from ..core.config import CPTGPTConfig, TrainingConfig
from ..core.generate import GeneratorPackage
from ..core.model import CPTGPT
from ..core.train import train
from ..core.transfer import fine_tune
from ..nn.serialization import (
    METADATA_KEY,
    read_metadata,
    save_checkpoint,
    write_npz,
)
from ..statemachine.lte import LTE_SPEC
from ..statemachine.nr import NR_SPEC
from ..tokenization import StreamTokenizer
from ..trace.dataset import TraceDataset
from ..trace.schema import DeviceType, Stream
from .protocol import GeneratorBase
from .registry import GENERATORS, register_generator
from .scenario import ScenarioSpec

__all__ = [
    "CPTGPTGenerator",
    "SMMOneGenerator",
    "SMMKGenerator",
    "NetShareGenerator",
    "load_generator",
]

_SPECS = {"4G": LTE_SPEC, "5G": NR_SPEC}


def _tokenizer_for(
    provided: StreamTokenizer | None, dataset: TraceDataset, scenario: ScenarioSpec
) -> StreamTokenizer:
    """Use the injected tokenizer when compatible, else fit a fresh one."""
    vocabulary = scenario.vocabulary
    if provided is not None and tuple(provided.vocabulary) == tuple(vocabulary):
        return provided
    return StreamTokenizer(vocabulary).fit(dataset)


def _training_to_dict(config: TrainingConfig) -> dict:
    payload = asdict(config)
    payload["loss_weights"] = list(payload["loss_weights"])
    return payload


def _training_from_dict(payload: dict | None) -> TrainingConfig | None:
    """Restore a training schedule (None for pre-schedule artifacts)."""
    if payload is None:
        return None
    payload = dict(payload)
    payload["loss_weights"] = tuple(payload["loss_weights"])
    return TrainingConfig(**payload)


def _legacy_scenario(metadata: dict) -> ScenarioSpec:
    """Scenario for artifacts saved before scenarios existed."""
    payload = metadata.get("scenario")
    if payload is not None:
        return ScenarioSpec.from_dict(payload)
    return ScenarioSpec(
        name="loaded",
        device_type=metadata.get("device_type", DeviceType.PHONE),
    )


# ----------------------------------------------------------------------
# CPT-GPT
# ----------------------------------------------------------------------
@register_generator("cpt-gpt", aliases=("CPT-GPT", "cptgpt"))
class CPTGPTGenerator(GeneratorBase):
    """The paper's generator: decoder-only transformer, supervised ML.

    ``float32=True`` switches generation to the reduced-precision
    throughput mode of :class:`~repro.core.generate.InferenceEngine`;
    ``float32_train=True`` is the training-side analogue (a float32
    parameter arena in the fused trainer).  Streaming chunks are large
    (``generation_batch``) so the continuous-batching engine can keep
    recycling slots within each chunk; the engine's internal step batch
    stays at its own default.

    Training scale-out knobs pass straight through ``Session.fit``:
    ``num_workers`` evaluates gradient shards in worker processes
    (requires ``training.grad_shards > 1``; never changes the result),
    ``resume``/``checkpoint``/``checkpoint_every`` drive the fused
    trainer's checkpointing.
    """

    transfers = True
    uses_tokenizer = True
    generation_batch = 1024

    def __init__(
        self,
        *,
        config: CPTGPTConfig | None = None,
        training: TrainingConfig | None = None,
        transfer: TrainingConfig | None = None,
        tokenizer: StreamTokenizer | None = None,
        init_seed: int = 0,
        float32: bool = False,
        float32_train: bool = False,
        num_workers: int = 1,
        resume=None,
        checkpoint=None,
        checkpoint_every: int | None = None,
    ) -> None:
        super().__init__(tokenizer=tokenizer)
        #: Generate with the float32 fast path (flip any time).
        self.float32 = float32
        #: Train in a float32 parameter arena (fast fit mode).
        self.float32_train = float32_train
        #: Worker processes for sharded gradient evaluation during fit.
        self.num_workers = num_workers
        #: Trainer checkpoint to resume fitting from (path or object).
        self.resume = resume
        #: Where to write trainer checkpoints, and how often (in steps).
        self.checkpoint = checkpoint
        self.checkpoint_every = checkpoint_every
        self.config = config if config is not None else CPTGPTConfig()
        self.training = training if training is not None else TrainingConfig()
        #: Fine-tune schedule for :meth:`adapt`; defaults to the paper's
        #: lower-LR, fewer-epoch recipe derived from ``training``.
        self.transfer_training = (
            transfer
            if transfer is not None
            else self.training.replace(
                epochs=max(1, self.training.epochs // 3),
                learning_rate=self.training.learning_rate / 3.0,
            )
        )
        self.init_seed = init_seed
        self.package: GeneratorPackage | None = None
        self.last_training_result = None

    # ------------------------------------------------------------------
    def _fit(self, dataset: TraceDataset, scenario: ScenarioSpec) -> None:
        tokenizer = _tokenizer_for(self._tokenizer, dataset, scenario)
        config = self.config
        if config.num_event_types != tokenizer.num_events:
            config = replace(config, num_event_types=tokenizer.num_events)
        model = CPTGPT(config, np.random.default_rng(self.init_seed))
        self.last_training_result = train(
            model,
            dataset,
            tokenizer,
            self.training,
            num_workers=self.num_workers,
            resume=self.resume,
            checkpoint_path=self.checkpoint,
            checkpoint_every=self.checkpoint_every,
            float32=self.float32_train,
        )
        self.package = GeneratorPackage(
            model, tokenizer, dataset.initial_event_distribution(), scenario.device_type
        )

    def adapt(self, dataset: TraceDataset, scenario: ScenarioSpec) -> "CPTGPTGenerator":
        """Fine-tune a copy of the fitted model on a new scenario (§5.5)."""
        self._require_fitted()
        clone = copy.copy(self)
        start = time.perf_counter()
        adapted, result = fine_tune(
            self.package.model, dataset, self.package.tokenizer, self.transfer_training
        )
        clone.package = GeneratorPackage(
            adapted,
            self.package.tokenizer,
            dataset.initial_event_distribution(),
            scenario.device_type,
        )
        clone.last_training_result = result
        clone.fit_seconds = time.perf_counter() - start
        clone.scenario = scenario
        return clone

    def _generate_batch(
        self, count: int, rng: np.random.Generator, start_time: float
    ) -> list[Stream]:
        return self.package.generate(
            count, rng, start_time=start_time, float32=self.float32
        ).streams

    @property
    def vocabulary(self):
        if self.package is not None:
            return self.package.tokenizer.vocabulary
        return super().vocabulary

    def unwrap(self) -> GeneratorPackage:
        self._require_fitted()
        return self.package

    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        self._require_fitted()
        metadata = {
            "kind": self.name,
            "scenario": self.scenario.to_dict(),
            "config": self.package.model.config.to_dict(),
            "tokenizer": self.package.tokenizer.to_dict(),
            "initial_event_distribution": self.package.initial_event_distribution,
            "device_type": self.package.device_type,
            "training": _training_to_dict(self.training),
            "transfer": _training_to_dict(self.transfer_training),
        }
        save_checkpoint(self.package.model, path, metadata)

    @classmethod
    def load(cls, path: str | Path) -> "CPTGPTGenerator":
        metadata = read_metadata(path)
        package = GeneratorPackage.load(path)
        generator = cls(
            config=package.model.config,
            training=_training_from_dict(metadata.get("training")),
            transfer=_training_from_dict(metadata.get("transfer")),
            tokenizer=package.tokenizer,
        )
        generator.package = package
        generator.scenario = _legacy_scenario(metadata)
        return generator


# ----------------------------------------------------------------------
# Semi-Markov baselines
# ----------------------------------------------------------------------
def _smm_to_dict(model: SemiMarkovModel) -> dict:
    return {
        "spec": model.spec.name,
        "transition_probs": model.transition_probs,
        "initial_states": model.initial_states,
        "weight": model.weight,
        "dwell": [
            [state, event, [float(x) for x in dist.samples]]
            for (state, event), dist in model.dwell.items()
        ],
    }


def _smm_from_dict(payload: dict) -> SemiMarkovModel:
    spec = _SPECS[payload["spec"]]
    dwell = {
        (state, event): EmpiricalDistribution(np.asarray(samples, dtype=np.float64))
        for state, event, samples in payload["dwell"]
    }
    return SemiMarkovModel(
        spec=spec,
        transition_probs=payload["transition_probs"],
        dwell=dwell,
        initial_states=payload["initial_states"],
        weight=int(payload["weight"]),
    )


def _write_json_artifact(path: str | Path, payload: dict) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"format": "repro-generator-v1", **payload}
    path.write_text(json.dumps(payload), encoding="utf-8")


def _read_json_artifact(path: str | Path, expected_kind: str) -> dict:
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("kind") != expected_kind:
        raise ValueError(
            f"{path}: artifact kind {payload.get('kind')!r}, "
            f"expected {expected_kind!r}"
        )
    return payload


@register_generator("smm-1", aliases=("SMM-1", "smm1"))
class SMMOneGenerator(GeneratorBase):
    """SMM-1 baseline: one semi-Markov model per device type."""

    def __init__(self, *, duration: float | None = None, tokenizer=None) -> None:
        super().__init__(tokenizer=tokenizer)
        #: Generation window in seconds; None = the scenario's duration.
        self.duration = duration
        self.model: SMM1Generator | None = None

    def _fit(self, dataset: TraceDataset, scenario: ScenarioSpec) -> None:
        self.model = SMM1Generator.fit(
            dataset,
            scenario.device_type,
            spec=scenario.machine_spec,
            duration=self.duration if self.duration is not None else scenario.duration,
        )

    def _generate_batch(
        self, count: int, rng: np.random.Generator, start_time: float
    ) -> list[Stream]:
        return self.model.generate(count, rng, start_time).streams

    def unwrap(self) -> SMM1Generator:
        self._require_fitted()
        return self.model

    def save(self, path: str | Path) -> None:
        self._require_fitted()
        _write_json_artifact(
            path,
            {
                "kind": self.name,
                "scenario": self.scenario.to_dict(),
                "duration": self.model.duration,
                "device_type": self.model.device_type,
                "model": _smm_to_dict(self.model.model),
            },
        )

    @classmethod
    def load(cls, path: str | Path) -> "SMMOneGenerator":
        payload = _read_json_artifact(path, "smm-1")
        generator = cls(duration=payload["duration"])
        generator.model = SMM1Generator(
            model=_smm_from_dict(payload["model"]),
            device_type=payload["device_type"],
            duration=payload["duration"],
        )
        generator.scenario = _legacy_scenario(payload)
        return generator


@register_generator("smm-k", aliases=("SMM-20k", "smmk", "smm-20k"))
class SMMKGenerator(GeneratorBase):
    """SMM-20k analogue: one semi-Markov model per UE cluster."""

    def __init__(
        self,
        *,
        num_clusters: int = 16,
        duration: float | None = None,
        seed: int = 0,
        tokenizer=None,
    ) -> None:
        super().__init__(tokenizer=tokenizer)
        self.num_clusters = num_clusters
        #: Generation window in seconds; None = the scenario's duration.
        self.duration = duration
        self.seed = seed
        self.model: SMMClusteredGenerator | None = None

    def _fit(self, dataset: TraceDataset, scenario: ScenarioSpec) -> None:
        self.model = SMMClusteredGenerator.fit(
            dataset,
            scenario.device_type,
            num_clusters=self.num_clusters,
            spec=scenario.machine_spec,
            duration=(
                self.duration if self.duration is not None else scenario.duration
            ),
            seed=self.seed,
        )

    def _generate_batch(
        self, count: int, rng: np.random.Generator, start_time: float
    ) -> list[Stream]:
        return self.model.generate(count, rng, start_time).streams

    def unwrap(self) -> SMMClusteredGenerator:
        self._require_fitted()
        return self.model

    def save(self, path: str | Path) -> None:
        self._require_fitted()
        _write_json_artifact(
            path,
            {
                "kind": self.name,
                "scenario": self.scenario.to_dict(),
                "duration": self.model.duration,
                "device_type": self.model.device_type,
                "num_clusters": self.num_clusters,
                "seed": self.seed,
                "models": [_smm_to_dict(m) for m in self.model.models],
            },
        )

    @classmethod
    def load(cls, path: str | Path) -> "SMMKGenerator":
        payload = _read_json_artifact(path, "smm-k")
        generator = cls(
            num_clusters=payload["num_clusters"],
            duration=payload["duration"],
            seed=payload["seed"],
        )
        generator.model = SMMClusteredGenerator(
            models=[_smm_from_dict(m) for m in payload["models"]],
            device_type=payload["device_type"],
            duration=payload["duration"],
        )
        generator.scenario = _legacy_scenario(payload)
        return generator


# ----------------------------------------------------------------------
# NetShare
# ----------------------------------------------------------------------
@register_generator("netshare", aliases=("NetShare", "net-share"))
class NetShareGenerator(GeneratorBase):
    """Adapted NetShare baseline: LSTM generator trained adversarially."""

    transfers = True
    uses_tokenizer = True

    def __init__(
        self,
        *,
        config: NetShareConfig | None = None,
        epochs: int = 15,
        transfer_epochs: int = 8,
        batch_size: int = 32,
        seed: int = 0,
        init_seed: int = 1,
        tokenizer: StreamTokenizer | None = None,
    ) -> None:
        super().__init__(tokenizer=tokenizer)
        self.config = config if config is not None else NetShareConfig()
        self.epochs = epochs
        self.transfer_epochs = transfer_epochs
        self.batch_size = batch_size
        self.seed = seed
        self.init_seed = init_seed
        self.model: NetShare | None = None
        self.last_training_result = None

    def _fit(self, dataset: TraceDataset, scenario: ScenarioSpec) -> None:
        tokenizer = _tokenizer_for(self._tokenizer, dataset, scenario)
        config = self.config
        if config.num_event_types != tokenizer.num_events:
            config = replace(config, num_event_types=tokenizer.num_events)
        self.model = NetShare(config, tokenizer, np.random.default_rng(self.init_seed))
        self.last_training_result = self.model.train(
            dataset, epochs=self.epochs, batch_size=self.batch_size, seed=self.seed
        )

    def adapt(self, dataset: TraceDataset, scenario: ScenarioSpec) -> "NetShareGenerator":
        """Continue adversarial training on the new scenario's trace."""
        self._require_fitted()
        clone = copy.copy(self)
        start = time.perf_counter()
        clone.model = copy.deepcopy(self.model)
        clone.last_training_result = clone.model.fine_tune(
            dataset,
            epochs=self.transfer_epochs,
            batch_size=self.batch_size,
            seed=self.seed,
        )
        clone.fit_seconds = time.perf_counter() - start
        clone.scenario = scenario
        return clone

    def _generate_batch(
        self, count: int, rng: np.random.Generator, start_time: float
    ) -> list[Stream]:
        return self.model.generate(
            count, rng, self.scenario.device_type, start_time
        ).streams

    @property
    def vocabulary(self):
        if self.model is not None:
            return self.model.tokenizer.vocabulary
        return super().vocabulary

    def unwrap(self) -> NetShare:
        self._require_fitted()
        return self.model

    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        self._require_fitted()
        arrays = {
            f"generator.{name}": value
            for name, value in self.model.generator.state_dict().items()
        }
        arrays.update(
            {
                f"discriminator.{name}": value
                for name, value in self.model.discriminator.state_dict().items()
            }
        )
        metadata = {
            "kind": self.name,
            "scenario": self.scenario.to_dict(),
            "config": asdict(self.model.config),
            "tokenizer": self.model.tokenizer.to_dict(),
            "epochs": self.epochs,
            "transfer_epochs": self.transfer_epochs,
            "batch_size": self.batch_size,
            "seed": self.seed,
            "init_seed": self.init_seed,
        }
        write_npz(path, arrays, metadata)

    @classmethod
    def load(cls, path: str | Path) -> "NetShareGenerator":
        metadata = read_metadata(path)
        with np.load(Path(path)) as archive:
            arrays = {
                name: archive[name]
                for name in archive.files
                if name != METADATA_KEY
            }
        config = NetShareConfig(**metadata["config"])
        tokenizer = StreamTokenizer.from_dict(metadata["tokenizer"])
        generator = cls(
            config=config,
            epochs=metadata["epochs"],
            transfer_epochs=metadata["transfer_epochs"],
            batch_size=metadata["batch_size"],
            seed=metadata["seed"],
            init_seed=metadata["init_seed"],
            tokenizer=tokenizer,
        )
        model = NetShare(config, tokenizer, np.random.default_rng(metadata["init_seed"]))
        model.generator.load_state_dict(
            {
                name[len("generator."):]: value
                for name, value in arrays.items()
                if name.startswith("generator.")
            }
        )
        model.discriminator.load_state_dict(
            {
                name[len("discriminator."):]: value
                for name, value in arrays.items()
                if name.startswith("discriminator.")
            }
        )
        generator.model = model
        generator.scenario = _legacy_scenario(metadata)
        return generator


# ----------------------------------------------------------------------
# Self-describing load
# ----------------------------------------------------------------------
def load_generator(path: str | Path) -> GeneratorBase:
    """Restore any saved generator, dispatching on the artifact's kind.

    ``.npz`` archives carry the kind in their JSON metadata (legacy
    CPT-GPT packages without one load as ``cpt-gpt``); JSON artifacts
    carry a top-level ``kind`` field.
    """
    path = Path(path)
    with open(path, "rb") as handle:
        magic = handle.read(2)
    if magic == b"PK":  # npz archives are zip files
        kind = read_metadata(path).get("kind", "cpt-gpt")
    else:
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise ValueError(
                f"{path}: not a generator artifact (neither npz nor JSON): {error}"
            ) from error
        kind = payload.get("kind")
        if kind is None:
            raise ValueError(f"{path}: JSON artifact has no 'kind' field")
    return GENERATORS.get(kind).load(path)
