"""``repro.api`` — the public entry point: protocol, registry, session.

This package is the single stable API surface of the reproduction:

* :class:`TrafficGenerator` — the protocol every backend implements
  (``fit`` / ``generate`` / ``save`` / ``load``), with
  :class:`GeneratorBase` as the adapter base class;
* :class:`ScenarioSpec` and the scenario registry — declarative
  workload descriptions (device type, technology, hour, UE count);
* ``@register_generator`` / ``@register_scenario`` — plug in new
  backends and workloads without touching core code;
* :class:`Session` — the chainable facade
  (``synthesize → fit → generate → evaluate``) with artifact caching
  and constant-memory streaming via :meth:`Session.iter_streams`.

Importing this package registers the four built-in backends (CPT-GPT,
SMM-1, SMM-k, NetShare) and the built-in scenarios.
"""

from .adapters import (
    CPTGPTGenerator,
    NetShareGenerator,
    SMMKGenerator,
    SMMOneGenerator,
    load_generator,
)
from .protocol import GeneratorBase, TrafficGenerator
from .registry import (
    GENERATORS,
    SCENARIOS,
    TOPOLOGIES,
    WORKLOADS,
    Registry,
    available_generators,
    available_scenarios,
    available_topologies,
    available_workloads,
    register_generator,
    register_scenario,
    register_topology,
    register_workload,
)
from .scenario import ScenarioSpec, get_scenario
from .session import Session

__all__ = [
    "TrafficGenerator",
    "GeneratorBase",
    "ScenarioSpec",
    "get_scenario",
    "Session",
    "Registry",
    "GENERATORS",
    "SCENARIOS",
    "WORKLOADS",
    "TOPOLOGIES",
    "register_generator",
    "register_scenario",
    "register_workload",
    "register_topology",
    "available_generators",
    "available_scenarios",
    "available_workloads",
    "available_topologies",
    "CPTGPTGenerator",
    "SMMOneGenerator",
    "SMMKGenerator",
    "NetShareGenerator",
    "load_generator",
]
