"""The unified ``TrafficGenerator`` protocol and its adapter base class.

Every generator backend — CPT-GPT, the SMM baselines, NetShare, and any
user-registered plugin — speaks the same four-verb API:

* ``fit(dataset, scenario)``    learn from a trace (returns ``self``),
* ``generate(n, rng, *, start_time, stream=False)``  synthesize ``n``
  streams, either materialized as a :class:`TraceDataset` or, with
  ``stream=True``, as a lazy iterator of :class:`Stream` objects
  (constant memory for arbitrarily large populations),
* ``save(path)`` / ``load(path)``  persist and restore the fitted state.

:class:`TrafficGenerator` is the structural type (``isinstance`` works
via ``runtime_checkable``); :class:`GeneratorBase` is the convenience
base class adapters derive from — subclasses implement ``_fit`` and
``_generate_batch`` and inherit batching, streaming, timing and the
transfer-learning hook (``adapt``).
"""

from __future__ import annotations

import abc
import copy
import time
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Protocol, runtime_checkable

import numpy as np

from ..core.sharding import run_sharded, shard_counts, shard_rngs
from ..statemachine.events import EventVocabulary
from ..trace.dataset import TraceDataset
from ..trace.schema import Stream

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .scenario import ScenarioSpec

__all__ = ["TrafficGenerator", "GeneratorBase"]


@runtime_checkable
class TrafficGenerator(Protocol):
    """Structural type every generator backend satisfies."""

    name: str

    def fit(self, dataset: TraceDataset, scenario: "ScenarioSpec") -> "TrafficGenerator":
        """Learn from ``dataset`` under ``scenario``; returns ``self``."""
        ...

    def generate(
        self,
        count: int,
        rng: np.random.Generator,
        *,
        start_time: float = 0.0,
        stream: bool = False,
        num_workers: int = 1,
    ):
        """Synthesize ``count`` streams (dataset, or iterator if ``stream``)."""
        ...

    def save(self, path) -> None:
        """Persist the fitted state to ``path``."""
        ...


class GeneratorBase(abc.ABC):
    """Adapter base class: batching, streaming, timing, transfer hook.

    Subclasses set :attr:`name` (via ``@register_generator``), implement
    :meth:`_fit` and :meth:`_generate_batch`, and optionally override
    :meth:`adapt` (transfer learning) and the persistence pair
    :meth:`save` / :meth:`load`.
    """

    #: Canonical registry name; set by ``@register_generator``.
    name: str = "abstract"
    #: Whether :meth:`adapt` reuses fitted state (transfer learning)
    #: rather than refitting from scratch.  Drives the workbench's
    #: phone-scratch / other-devices-transferred policy (§5.1).
    transfers: bool = False
    #: Whether the backend consumes a :class:`StreamTokenizer`.  Callers
    #: that share a tokenizer (Session, Workbench) only materialize it
    #: for backends that declare this — fitting one is a full pass over
    #: the training capture.
    uses_tokenizer: bool = False
    #: Streams synthesized per internal batch when streaming.
    generation_batch: int = 128

    def __init__(self, *, tokenizer=None) -> None:
        self._tokenizer = tokenizer
        self.scenario: "ScenarioSpec | None" = None
        self.fit_seconds: float = 0.0

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _fit(self, dataset: TraceDataset, scenario: "ScenarioSpec") -> None:
        """Backend-specific fitting; stores fitted state on ``self``."""

    def fit(self, dataset: TraceDataset, scenario: "ScenarioSpec") -> "GeneratorBase":
        start = time.perf_counter()
        self._fit(dataset, scenario)
        self.fit_seconds = time.perf_counter() - start
        self.scenario = scenario
        return self

    def adapt(self, dataset: TraceDataset, scenario: "ScenarioSpec") -> "GeneratorBase":
        """A new generator for ``scenario``, derived from this one.

        The default refits from scratch (correct for the SMM baselines,
        which have no transferable state); backends with
        ``transfers = True`` override this to fine-tune.  The shallow
        copy relies on the ``_fit`` contract: fitted state is
        *assigned*, never mutated in place, so refitting the clone
        cannot leak into the original.
        """
        clone = copy.copy(self)
        return clone.fit(dataset, scenario)

    @property
    def fitted(self) -> bool:
        return self.scenario is not None

    def _require_fitted(self) -> None:
        if not self.fitted:
            raise RuntimeError(
                f"{type(self).__name__} must be fit() or load()ed before use"
            )

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _generate_batch(
        self, count: int, rng: np.random.Generator, start_time: float
    ) -> list[Stream]:
        """Synthesize one batch of ``count`` streams."""

    @property
    def vocabulary(self) -> EventVocabulary | None:
        """Vocabulary of generated traces (the scenario's, by default)."""
        return self.scenario.vocabulary if self.scenario is not None else None

    def generate(
        self,
        count: int,
        rng: np.random.Generator,
        *,
        start_time: float = 0.0,
        stream: bool = False,
        num_workers: int = 1,
    ):
        """Synthesize ``count`` streams.

        With ``stream=False`` (default) the full population is
        materialized as a :class:`TraceDataset`.  With ``stream=True``
        a lazy iterator of :class:`Stream` objects is returned instead:
        batches are synthesized on demand, so memory stays constant no
        matter how large ``count`` is.

        ``num_workers > 1`` shards generation across forked worker
        processes with independent ``SeedSequence``-derived RNGs (see
        :mod:`repro.core.sharding`): output is deterministic given
        ``rng`` and identical to running the same shards inline.  Note
        that sharded results are collected per worker, so with
        ``stream=True`` peak memory is the sharded population rather
        than one generation batch.
        """
        self._require_fitted()
        if count < 0:
            raise ValueError("count must be non-negative")
        if num_workers > 1:
            iterator = self._sharded_iterator(count, rng, start_time, num_workers)
        else:
            iterator = self._stream_iterator(count, rng, start_time)
        if stream:
            return iterator
        return TraceDataset(streams=list(iterator), vocabulary=self.vocabulary)

    def iter_streams(
        self,
        count: int,
        rng: np.random.Generator,
        *,
        start_time: float = 0.0,
        num_workers: int = 1,
    ) -> Iterator[Stream]:
        """Alias for ``generate(..., stream=True)``."""
        return self.generate(
            count, rng, start_time=start_time, stream=True, num_workers=num_workers
        )

    def _stream_iterator(
        self, count: int, rng: np.random.Generator, start_time: float
    ) -> Iterator[Stream]:
        remaining = count
        while remaining > 0:
            size = min(self.generation_batch, remaining)
            yield from self._generate_batch(size, rng, start_time)
            remaining -= size

    def _sharded_iterator(
        self, count: int, rng: np.random.Generator, start_time: float, num_workers: int
    ) -> Iterator[Stream]:
        counts = shard_counts(count, num_workers)
        rngs = shard_rngs(rng, num_workers)

        def shard(i: int) -> list[Stream]:
            return list(self._stream_iterator(counts[i], rngs[i], start_time))

        for part in run_sharded(shard, num_workers, num_workers):
            yield from part

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def save(self, path: str | Path) -> None:
        """Persist the fitted state to ``path``."""

    @classmethod
    @abc.abstractmethod
    def load(cls, path: str | Path) -> "GeneratorBase":
        """Restore a generator saved by :meth:`save`."""

    # ------------------------------------------------------------------
    def unwrap(self):
        """The backend-native object behind this adapter (for legacy code)."""
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fitted" if self.fitted else "unfitted"
        return f"<{type(self).__name__} name={self.name!r} {state}>"
