"""Name-based registries for generator backends and scenarios.

The public API is registry-driven: backends and workloads are looked up
by name, so new ones plug in without touching core code.  Two global
registries exist —

* :data:`GENERATORS` maps names ("cpt-gpt", "smm-1", ...) to
  :class:`~repro.api.protocol.TrafficGenerator` classes,
* :data:`SCENARIOS` maps names ("phone-evening", ...) to
  :class:`~repro.api.scenario.ScenarioSpec` instances, and
* :data:`WORKLOADS` maps names ("city-day", "stadium-flash-crowd", ...)
  to :class:`~repro.workload.population.UEPopulation` composites —
  multi-cohort workloads built on top of scenarios (registered when
  :mod:`repro.workload` is imported), and
* :data:`TOPOLOGIES` maps names ("metro-commute", "stadium-cell-kill",
  ...) to :class:`~repro.topology.scenario.TopologyScenario` setups —
  cell graphs with mobility assignments and chaos schedules (registered
  when :mod:`repro.topology.presets` is imported).

Lookup is case-insensitive and alias-aware, so the paper's display
names ("CPT-GPT", "SMM-20k") resolve to the same entries as the
canonical slugs.  Register a custom backend with::

    from repro.api import register_generator

    @register_generator("my-gen", aliases=("MyGen",))
    class MyGenerator(GeneratorBase):
        ...
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

__all__ = [
    "Registry",
    "GENERATORS",
    "SCENARIOS",
    "WORKLOADS",
    "TOPOLOGIES",
    "register_generator",
    "register_scenario",
    "register_workload",
    "register_topology",
    "available_generators",
    "available_scenarios",
    "available_workloads",
    "available_topologies",
]


def _normalize(name: str) -> str:
    return name.strip().lower()


class Registry:
    """A case-insensitive, alias-aware mapping of names to objects."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._items: dict[str, Any] = {}
        self._aliases: dict[str, str] = {}

    # ------------------------------------------------------------------
    def register(self, name: str, obj: Any, *, aliases: tuple[str, ...] = ()) -> Any:
        """Register ``obj`` under ``name`` (plus optional aliases)."""
        if not name or not name.strip():
            raise ValueError(f"{self.kind} name must be non-empty")
        key = _normalize(name)
        if key in self._aliases:
            raise ValueError(
                f"{self.kind} {name!r} is already registered "
                f"(canonical: {self._aliases[key]!r})"
            )
        self._items[name] = obj
        self._aliases[key] = name
        for alias in aliases:
            akey = _normalize(alias)
            if akey in self._aliases and self._aliases[akey] != name:
                raise ValueError(
                    f"alias {alias!r} already taken by "
                    f"{self.kind} {self._aliases[akey]!r}"
                )
            self._aliases[akey] = name
        return obj

    def unregister(self, name: str) -> None:
        """Remove an entry and all of its aliases (test/plugin teardown)."""
        canonical = self.canonical(name)
        del self._items[canonical]
        self._aliases = {
            alias: target
            for alias, target in self._aliases.items()
            if target != canonical
        }

    # ------------------------------------------------------------------
    def canonical(self, name: str) -> str:
        """Resolve ``name`` (canonical or alias) to the canonical name."""
        key = _normalize(name)
        if key not in self._aliases:
            raise ValueError(
                f"unknown {self.kind} {name!r}; "
                f"registered: {sorted(self._items)}"
            )
        return self._aliases[key]

    def get(self, name: str) -> Any:
        return self._items[self.canonical(name)]

    def names(self) -> tuple[str, ...]:
        """Canonical names, in registration order."""
        return tuple(self._items)

    def items(self) -> Iterator[tuple[str, Any]]:
        return iter(self._items.items())

    def __contains__(self, name: str) -> bool:
        return _normalize(name) in self._aliases

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, {sorted(self._items)})"


GENERATORS = Registry("generator")
SCENARIOS = Registry("scenario")
WORKLOADS = Registry("workload")
TOPOLOGIES = Registry("topology")


def register_generator(name: str, *, aliases: tuple[str, ...] = ()) -> Callable:
    """Class decorator registering a :class:`TrafficGenerator` backend."""

    def decorator(cls):
        cls.name = name
        GENERATORS.register(name, cls, aliases=aliases)
        return cls

    return decorator


def register_scenario(name: str, *, aliases: tuple[str, ...] = ()) -> Callable:
    """Register a scenario: decorate a zero-arg factory or pass a spec.

    Both forms are supported::

        @register_scenario("rush-hour")
        def _rush_hour():
            return ScenarioSpec(name="rush-hour", hour=8, ...)

        register_scenario("late-night")(ScenarioSpec(name="late-night", ...))
    """

    def decorator(obj):
        spec = obj() if callable(obj) else obj
        SCENARIOS.register(name, spec, aliases=aliases)
        return obj

    return decorator


def register_workload(name: str, *, aliases: tuple[str, ...] = ()) -> Callable:
    """Register a composite workload: a factory or a ``UEPopulation``.

    Mirrors :func:`register_scenario` — decorate a zero-arg factory or
    pass an already-built population::

        @register_workload("metro-rush", aliases=("rush",))
        def _metro_rush():
            return UEPopulation(name="metro-rush", cohorts=(...))
    """

    def decorator(obj):
        population = obj() if callable(obj) else obj
        WORKLOADS.register(name, population, aliases=aliases)
        return obj

    return decorator


def register_topology(name: str, *, aliases: tuple[str, ...] = ()) -> Callable:
    """Register a topology scenario: a factory or a ``TopologyScenario``.

    Mirrors :func:`register_workload` — decorate a zero-arg factory or
    pass an already-built scenario::

        @register_topology("campus", aliases=("uni",))
        def _campus():
            return TopologyScenario(name="campus", topology=grid_topology(...))
    """

    def decorator(obj):
        scenario = obj() if callable(obj) else obj
        TOPOLOGIES.register(name, scenario, aliases=aliases)
        return obj

    return decorator


def available_generators() -> tuple[str, ...]:
    """Canonical names of every registered generator backend."""
    return GENERATORS.names()


def available_scenarios() -> tuple[str, ...]:
    """Canonical names of every registered scenario."""
    return SCENARIOS.names()


def available_workloads() -> tuple[str, ...]:
    """Canonical names of every registered composite workload.

    Built-in workloads register on ``import repro.workload`` (which
    ``import repro`` performs); until then only plugins appear here.
    """
    return WORKLOADS.names()


def available_topologies() -> tuple[str, ...]:
    """Canonical names of every registered topology scenario.

    Built-in topologies register on ``import repro.topology.presets``;
    :func:`repro.topology.get_topology` performs that import lazily.
    """
    import repro.topology.presets  # noqa: F401  (registers the built-ins)

    return TOPOLOGIES.names()
