"""Control-plane event vocabularies for 4G (LTE) and 5G (NR).

Table 1 of the paper lists the primary control-plane events.  Models in
this repository never see these names — they operate on categorical
indices — but the evaluation harness needs the vocabulary to replay
streams against the 3GPP state machines and to report per-event-type
breakdowns.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "EventVocabulary",
    "LTE_EVENTS",
    "NR_EVENTS",
    "ATCH",
    "DTCH",
    "SRV_REQ",
    "S1_CONN_REL",
    "HO",
    "TAU",
    "REGISTER",
    "DEREGISTER",
    "AN_REL",
]

# 4G event names (Table 1, left column).
ATCH = "ATCH"
DTCH = "DTCH"
SRV_REQ = "SRV_REQ"
S1_CONN_REL = "S1_CONN_REL"
HO = "HO"
TAU = "TAU"

# 5G replacements (Table 1, right column); SRV_REQ and HO are shared.
REGISTER = "REGISTER"
DEREGISTER = "DEREGISTER"
AN_REL = "AN_REL"


@dataclass(frozen=True)
class EventVocabulary:
    """Bidirectional mapping between event names and categorical indices.

    The index order is fixed at construction; tokenizers one-hot encode
    against ``len(vocabulary)`` classes.
    """

    names: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(set(self.names)) != len(self.names):
            raise ValueError(f"duplicate event names: {self.names}")

    def __len__(self) -> int:
        return len(self.names)

    def __contains__(self, name: str) -> bool:
        return name in self.names

    def __iter__(self):
        return iter(self.names)

    def index(self, name: str) -> int:
        """Index of ``name``; raises ``KeyError`` for unknown events."""
        try:
            return self.names.index(name)
        except ValueError:
            raise KeyError(f"unknown event {name!r}; vocabulary: {self.names}")

    def name(self, index: int) -> str:
        """Name at ``index``; raises ``IndexError`` when out of range."""
        if not 0 <= index < len(self.names):
            raise IndexError(f"event index {index} outside [0, {len(self.names)})")
        return self.names[index]


#: 4G vocabulary — six event types, giving CPT-GPT's d_token = 6 + 1 + 2 = 9.
LTE_EVENTS = EventVocabulary((ATCH, DTCH, SRV_REQ, S1_CONN_REL, HO, TAU))

#: 5G vocabulary — TAU does not exist in 5G (Figure 1b).
NR_EVENTS = EventVocabulary((REGISTER, DEREGISTER, SRV_REQ, AN_REL, HO))
