"""The 5G (NR) two-level hierarchical UE state machine of Figure 1b.

Compared with 4G: ``TAU`` (and its states/transitions) disappears, and
``ATCH``/``DTCH``/``S1_CONN_REL`` are renamed ``REGISTER``/``DEREGISTER``
/``AN_REL``.  The machine is otherwise the same shape — which is exactly
the paper's argument about domain knowledge: every generation requires a
hand-re-derived machine for SMM, while CPT-GPT consumes either trace
unchanged.
"""

from __future__ import annotations

from .base import MachineSpec, MachineState, StateMachine
from .events import AN_REL, DEREGISTER, HO, NR_EVENTS, REGISTER, SRV_REQ

__all__ = [
    "RM_DEREGISTERED",
    "CM_CONNECTED",
    "CM_IDLE",
    "NR_SPEC",
    "make_nr_machine",
]

RM_DEREGISTERED = "RM-DEREGISTERED"
CM_CONNECTED = "CM-CONNECTED"
CM_IDLE = "CM-IDLE"

_DEREG_S = "DEREG_S"
_REG_S = "REG_S"
_SRV_REQ_S = "SRV_REQ_S"
_HO_S = "HO_S"
_AN_REL_S = "AN_REL_S"

NR_SPEC = MachineSpec(
    name="5G",
    vocabulary=NR_EVENTS,
    top_states=(RM_DEREGISTERED, CM_CONNECTED, CM_IDLE),
    sub_states={
        RM_DEREGISTERED: (_DEREG_S,),
        CM_CONNECTED: (_REG_S, _SRV_REQ_S, _HO_S),
        CM_IDLE: (_AN_REL_S,),
    },
    transitions={
        (RM_DEREGISTERED, REGISTER): (CM_CONNECTED, _REG_S),
        (CM_CONNECTED, DEREGISTER): (RM_DEREGISTERED, _DEREG_S),
        (CM_IDLE, DEREGISTER): (RM_DEREGISTERED, _DEREG_S),
        (CM_CONNECTED, AN_REL): (CM_IDLE, _AN_REL_S),
        (CM_CONNECTED, HO): (CM_CONNECTED, _HO_S),
        (CM_IDLE, SRV_REQ): (CM_CONNECTED, _SRV_REQ_S),
    },
    bootstrap_events={
        REGISTER: (CM_CONNECTED, _REG_S),
        DEREGISTER: (RM_DEREGISTERED, _DEREG_S),
        SRV_REQ: (CM_CONNECTED, _SRV_REQ_S),
        HO: (CM_CONNECTED, _HO_S),
    },
    connected_state=CM_CONNECTED,
    idle_state=CM_IDLE,
    initial=MachineState(RM_DEREGISTERED, _DEREG_S),
)


def make_nr_machine(bootstrapped: bool = False) -> StateMachine:
    """Create a fresh 5G machine (see :func:`make_lte_machine`)."""
    state = NR_SPEC.initial if bootstrapped else None
    return StateMachine(NR_SPEC, state)
