"""Declarative two-level hierarchical state machines.

The paper (Figure 1) uses two-level machines: a top level with three UE
states and a bottom level of sub-states that record *how* the UE entered
the top-level state.  Legality of an event depends only on the current
top-level state; the sub-state disambiguates transition targets (e.g.
which release sub-state an ``S1_CONN_REL`` lands in) and gives the
violation reports their paper-style labels (``S1_REL_S, HO``).

Machines are pure data (:class:`MachineSpec`), so the 4G and 5G variants
in :mod:`repro.statemachine.lte` / :mod:`repro.statemachine.nr` are just
transition tables — mirroring the paper's point that this domain
knowledge is exactly the part SMM needs and CPT-GPT does not.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .events import EventVocabulary

__all__ = ["MachineSpec", "StateMachine", "MachineState"]


@dataclass(frozen=True)
class MachineState:
    """A (top-level state, sub-state) pair."""

    top: str
    sub: str

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return f"{self.top}/{self.sub}"


@dataclass(frozen=True)
class MachineSpec:
    """Declarative description of a two-level hierarchical machine.

    Attributes
    ----------
    name:
        Human-readable identifier ("4G" / "5G").
    vocabulary:
        The event vocabulary this machine understands.
    top_states:
        Top-level state names.
    sub_states:
        Mapping of top-level state to its sub-state names.
    transitions:
        Mapping ``(top_state, event) -> (new_top, new_sub)``.  ``new_sub``
        may be a plain name or a callable-free mapping from the *current*
        sub-state to the landing sub-state (to express Figure 1a's two
        release sub-states).
    bootstrap_events:
        Events with a deterministic destination regardless of source
        state (§5.2.1's bootstrap heuristic), mapped to that destination.
    connected_state / idle_state:
        Names of the top-level states whose sojourn times the fidelity
        metrics report (CONNECTED / IDLE in 4G 3GPP terms).
    """

    name: str
    vocabulary: EventVocabulary
    top_states: tuple[str, ...]
    sub_states: dict[str, tuple[str, ...]]
    transitions: dict[tuple[str, str], tuple[str, str | dict[str, str]]]
    bootstrap_events: dict[str, tuple[str, str]]
    connected_state: str
    idle_state: str
    initial: MachineState | None = field(default=None)

    def validate(self) -> None:
        """Check internal consistency; raises ``ValueError`` on problems."""
        for top, subs in self.sub_states.items():
            if top not in self.top_states:
                raise ValueError(f"sub-states declared for unknown state {top!r}")
            if not subs:
                raise ValueError(f"state {top!r} has no sub-states")
        for (top, event), (new_top, new_sub) in self.transitions.items():
            if top not in self.top_states:
                raise ValueError(f"transition from unknown state {top!r}")
            if event not in self.vocabulary:
                raise ValueError(f"transition on unknown event {event!r}")
            if new_top not in self.top_states:
                raise ValueError(f"transition to unknown state {new_top!r}")
            if isinstance(new_sub, str):
                landings = (new_sub,)
            else:
                landings = tuple(new_sub.values())
            for sub in landings:
                if sub not in self.sub_states[new_top]:
                    raise ValueError(
                        f"transition lands in unknown sub-state {new_top}/{sub}"
                    )
        for event, (top, sub) in self.bootstrap_events.items():
            if event not in self.vocabulary:
                raise ValueError(f"bootstrap on unknown event {event!r}")
            if sub not in self.sub_states[top]:
                raise ValueError(f"bootstrap lands in unknown sub-state {top}/{sub}")
        for state in (self.connected_state, self.idle_state):
            if state not in self.top_states:
                raise ValueError(f"sojourn state {state!r} not a top-level state")


class StateMachine:
    """Executable instance of a :class:`MachineSpec`.

    The machine is a small pure object: :meth:`step` consumes one event
    and reports whether it was legal.  Violating events leave the state
    unchanged (the replay rule in §5.2.1 of the paper).
    """

    def __init__(self, spec: MachineSpec, state: MachineState | None = None) -> None:
        """Create a machine in ``state``.

        ``state=None`` means *undetermined*: the replay engine starts
        machines this way and determines the state via
        :meth:`try_bootstrap`.  Generators that know the UE's starting
        condition pass an explicit state (e.g. ``spec.initial``).
        """
        spec.validate()
        self.spec = spec
        self.state = state

    @property
    def started(self) -> bool:
        """Whether the machine has a determined state (post-bootstrap)."""
        return self.state is not None

    def legal_events(self) -> tuple[str, ...]:
        """Events that would be accepted in the current state."""
        if self.state is None:
            return tuple(self.spec.bootstrap_events)
        top = self.state.top
        return tuple(
            event for (state, event) in self.spec.transitions if state == top
        )

    def try_bootstrap(self, event: str) -> bool:
        """Attempt to determine the initial state from ``event``.

        Returns True when ``event`` is one of the deterministic-destination
        bootstrap events; the machine then enters the mapped state.
        """
        if self.started:
            raise RuntimeError("machine already bootstrapped")
        dest = self.spec.bootstrap_events.get(event)
        if dest is None:
            return False
        self.state = MachineState(*dest)
        return True

    def step(self, event: str) -> bool:
        """Consume one event.

        Returns
        -------
        bool
            True when the event is a legal transition.  On violation the
            state is left unchanged and False is returned.
        """
        if self.state is None:
            raise RuntimeError("machine must be bootstrapped before stepping")
        if event not in self.spec.vocabulary:
            raise KeyError(f"unknown event {event!r} for machine {self.spec.name}")
        target = self.spec.transitions.get((self.state.top, event))
        if target is None:
            return False
        new_top, new_sub = target
        if isinstance(new_sub, dict):
            sub = new_sub.get(self.state.sub)
            if sub is None:
                return False
        else:
            sub = new_sub
        self.state = MachineState(new_top, sub)
        return True
