"""``repro.statemachine`` — 3GPP UE state machines and the replay engine.

The two-level hierarchical machines of Figure 1 (4G and 5G), expressed
as declarative transition tables, plus the replay procedure (§5.2.1)
that the fidelity metrics use to count semantic violations and extract
sojourn times.  The *generators* in this repository that rely on this
domain knowledge are the ground-truth trace simulator and the SMM
baselines; CPT-GPT itself never imports these rules.
"""

from .base import MachineSpec, MachineState, StateMachine
from .events import (
    AN_REL,
    ATCH,
    DEREGISTER,
    DTCH,
    HO,
    LTE_EVENTS,
    NR_EVENTS,
    REGISTER,
    S1_CONN_REL,
    SRV_REQ,
    TAU,
    EventVocabulary,
)
from .lte import CONNECTED, DEREGISTERED, IDLE, LTE_SPEC, make_lte_machine
from .nr import CM_CONNECTED, CM_IDLE, NR_SPEC, RM_DEREGISTERED, make_nr_machine
from .replay import (
    DatasetReplay,
    StreamReplay,
    ViolationRecord,
    replay_dataset,
    replay_events,
)

__all__ = [
    "EventVocabulary",
    "LTE_EVENTS",
    "NR_EVENTS",
    "ATCH",
    "DTCH",
    "SRV_REQ",
    "S1_CONN_REL",
    "HO",
    "TAU",
    "REGISTER",
    "DEREGISTER",
    "AN_REL",
    "MachineSpec",
    "MachineState",
    "StateMachine",
    "LTE_SPEC",
    "NR_SPEC",
    "DEREGISTERED",
    "CONNECTED",
    "IDLE",
    "RM_DEREGISTERED",
    "CM_CONNECTED",
    "CM_IDLE",
    "make_lte_machine",
    "make_nr_machine",
    "ViolationRecord",
    "StreamReplay",
    "DatasetReplay",
    "replay_events",
    "replay_dataset",
]
